//! Criterion bench for the SEC-DED codec: encode/decode throughput per
//! 64-bit lane, clean and with injected errors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hbm_ecc::Hamming7264;

fn bench_codec(c: &mut Criterion) {
    let payloads: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let encoded: Vec<(u64, u8)> = payloads
        .iter()
        .map(|&d| (d, Hamming7264::encode(d)))
        .collect();

    let mut group = c.benchmark_group("ecc_codec");
    group.throughput(Throughput::Elements(payloads.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for &d in &payloads {
                acc ^= Hamming7264::encode(d);
            }
            acc
        });
    });
    group.bench_function("decode_clean", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(d, check) in &encoded {
                acc ^= Hamming7264::decode(d, check).data();
            }
            acc
        });
    });
    group.bench_function("decode_single_error", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (i, &(d, check)) in encoded.iter().enumerate() {
                acc ^= Hamming7264::decode(d ^ (1u64 << (i % 64)), check).data();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
