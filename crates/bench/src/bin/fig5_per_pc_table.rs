//! Regenerates Fig. 5: percentage of faulty memory cells per AXI port
//! (pseudo channel) at different supply voltages, for both data patterns.
//! Values below 1 % print as 0; "NF" means no fault expected.

fn main() {
    let seed = seed_from_args();
    let (_, rendered) = hbm_bench::fig5(seed).expect("fig5 pipeline");
    println!("Fig. 5 — faulty cells per AXI port / PC (seed {seed})\n");
    print!("{rendered}");
}

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED)
}
