//! Closed-loop undervolting: a canary-guided governor finds the operating
//! voltage automatically, with and without power-delivery droop.
//!
//! Run with: `cargo run --release --example undervolt_governor [seed]`

use hbm_undervolt_suite::undervolt::{outcome_saving, Platform, UndervoltGovernor};
use hbm_units::{Ohms, Ratio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let governor = UndervoltGovernor::default();

    println!("canary-guided undervolting governor (seed {seed})\n");
    for (label, load_line) in [("ideal regulation", 0.0), ("4 mΩ load line", 0.004)] {
        let mut platform = Platform::builder().seed(seed).build();
        platform.set_load_line(Ohms(load_line));
        platform.measure_power(Ratio::ONE)?; // apply the full load

        let outcome = governor.run(&mut platform)?;
        println!("{label}:");
        println!("  lowest clean voltage  {}", outcome.lowest_clean);
        match outcome.tripped_at {
            Some(v) => println!(
                "  canary tripped at     {} ({} flips)",
                v, outcome.canary_flips
            ),
            None => println!("  canary never tripped (stopped at the floor)"),
        }
        println!("  settled at            {}", outcome.settled);
        println!(
            "  estimated saving      {:.2}x vs nominal\n",
            outcome_saving(&platform, &outcome)
        );
    }
    println!("the governor discovers the specimen's usable margin at run time —");
    println!("no fault map needed — and backs off automatically under droop.");
    Ok(())
}
