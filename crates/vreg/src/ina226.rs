//! Register-level model of the Texas Instruments INA226 power monitor the
//! study reads its HBM power numbers from.
//!
//! The model reproduces the properties that matter for measurement quality:
//! the fixed LSBs of the shunt-voltage (2.5 µV) and bus-voltage (1.25 mV)
//! ADCs, the calibration register that fixes the current LSB, the
//! power register's `25 × current_LSB` scaling, and sample averaging that
//! suppresses the (deterministic, seeded) measurement noise.

use hbm_units::{Amperes, Ohms, Volts, Watts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::PmbusError;

/// Shunt-voltage register LSB: 2.5 µV.
pub const SHUNT_LSB_VOLTS: f64 = 2.5e-6;
/// Bus-voltage register LSB: 1.25 mV.
pub const BUS_LSB_VOLTS: f64 = 1.25e-3;
/// The INA226 calibration equation's fixed scale: `CAL = 0.00512 /
/// (current_LSB × R_shunt)`.
pub const CAL_SCALE: f64 = 0.00512;
/// Power LSB is 25× the current LSB.
pub const POWER_LSB_FACTOR: f64 = 25.0;

/// The INA226 register map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Ina226Register {
    /// 0x00 — configuration (averaging, conversion times, mode).
    Configuration,
    /// 0x01 — measured shunt voltage (signed, 2.5 µV LSB).
    ShuntVoltage,
    /// 0x02 — measured bus voltage (1.25 mV LSB).
    BusVoltage,
    /// 0x03 — computed power (`25 × current_LSB` per count).
    Power,
    /// 0x04 — computed current (calibrated LSB).
    Current,
    /// 0x05 — calibration value.
    Calibration,
    /// 0x06 — mask/enable (alert source selection and flags).
    MaskEnable,
    /// 0x07 — alert limit.
    AlertLimit,
    /// 0xFE — manufacturer id (reads 0x5449, "TI").
    ManufacturerId,
    /// 0xFF — die id (reads 0x2260).
    DieId,
}

/// `MASK_ENABLE` bit: alert on power over limit (POL).
pub const MASK_POWER_OVER_LIMIT: u16 = 1 << 11;
/// `MASK_ENABLE` bit: alert on bus under-voltage (BUL).
pub const MASK_BUS_UNDER_VOLTAGE: u16 = 1 << 12;
/// `MASK_ENABLE` flag: the alert function has triggered (AFF).
pub const ALERT_FUNCTION_FLAG: u16 = 1 << 4;
/// `MASK_ENABLE` flag: conversion ready (CVRF).
pub const CONVERSION_READY_FLAG: u16 = 1 << 3;

/// Hardware sample averaging selected in the configuration register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AveragingMode {
    /// 1 sample (no averaging).
    X1,
    /// 4 samples.
    X4,
    /// 16 samples.
    X16,
    /// 64 samples.
    X64,
    /// 128 samples.
    X128,
    /// 256 samples.
    X256,
    /// 512 samples.
    X512,
    /// 1024 samples.
    X1024,
}

impl AveragingMode {
    /// Number of samples averaged per conversion.
    #[must_use]
    pub fn samples(self) -> u32 {
        match self {
            AveragingMode::X1 => 1,
            AveragingMode::X4 => 4,
            AveragingMode::X16 => 16,
            AveragingMode::X64 => 64,
            AveragingMode::X128 => 128,
            AveragingMode::X256 => 256,
            AveragingMode::X512 => 512,
            AveragingMode::X1024 => 1024,
        }
    }

    /// The configuration-register bit pattern (bits 11:9).
    #[must_use]
    pub fn bits(self) -> u16 {
        match self {
            AveragingMode::X1 => 0b000,
            AveragingMode::X4 => 0b001,
            AveragingMode::X16 => 0b010,
            AveragingMode::X64 => 0b011,
            AveragingMode::X128 => 0b100,
            AveragingMode::X256 => 0b101,
            AveragingMode::X512 => 0b110,
            AveragingMode::X1024 => 0b111,
        }
    }

    /// Decodes configuration-register bits 11:9.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        match bits & 0b111 {
            0b000 => AveragingMode::X1,
            0b001 => AveragingMode::X4,
            0b010 => AveragingMode::X16,
            0b011 => AveragingMode::X64,
            0b100 => AveragingMode::X128,
            0b101 => AveragingMode::X256,
            0b110 => AveragingMode::X512,
            _ => AveragingMode::X1024,
        }
    }
}

/// Monitor configuration: shunt value, current LSB and averaging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ina226Config {
    /// Shunt resistor on the measured rail.
    pub shunt: Ohms,
    /// Current LSB chosen by the host (fixes the calibration register).
    pub current_lsb: Amperes,
    /// Hardware averaging.
    pub averaging: AveragingMode,
    /// 1-σ conversion noise on the shunt ADC, in volts, before averaging.
    pub shunt_noise_sigma: f64,
}

impl Ina226Config {
    /// Configuration used for the `VCC_HBM` rail: 2 mΩ shunt, 0.5 mA current
    /// LSB (12.5 mW power LSB), 64-sample averaging, 5 µV shunt noise.
    #[must_use]
    pub fn vcc_hbm() -> Self {
        Ina226Config {
            shunt: Ohms(0.002),
            current_lsb: Amperes(0.5e-3),
            averaging: AveragingMode::X64,
            shunt_noise_sigma: 5.0e-6,
        }
    }

    /// The calibration-register value implied by this configuration.
    #[must_use]
    pub fn calibration(&self) -> u16 {
        (CAL_SCALE / (self.current_lsb.as_f64() * self.shunt.as_f64())).round() as u16
    }

    /// The power-register LSB in watts.
    #[must_use]
    pub fn power_lsb(&self) -> Watts {
        Watts(self.current_lsb.as_f64() * POWER_LSB_FACTOR)
    }
}

impl Default for Ina226Config {
    fn default() -> Self {
        Ina226Config::vcc_hbm()
    }
}

/// The power monitor model.
///
/// Call [`Ina226::set_input`] with the true electrical state of the rail,
/// then [`Ina226::convert`] to run one (averaged, noisy, quantized)
/// conversion, then read back registers or the decoded convenience getters.
///
/// # Examples
///
/// ```
/// use hbm_units::{Amperes, Volts};
/// use hbm_vreg::Ina226;
///
/// let mut monitor = Ina226::vcc_hbm(42);
/// monitor.set_input(Volts(1.2), Amperes(5.0));
/// monitor.convert();
/// let power = monitor.power();
/// assert!((power.0 - 6.0).abs() < 0.05, "measured {power}");
/// ```
#[derive(Debug, Clone)]
pub struct Ina226 {
    config: Ina226Config,
    bus_input: Volts,
    current_input: Amperes,
    shunt_reg: i16,
    bus_reg: u16,
    mask_enable: u16,
    alert_limit: u16,
    alert_latched: bool,
    conversion_ready: bool,
    rng: ChaCha8Rng,
}

impl Ina226 {
    /// A monitor configured for the `VCC_HBM` rail with a deterministic
    /// noise seed.
    #[must_use]
    pub fn vcc_hbm(seed: u64) -> Self {
        Ina226::new(Ina226Config::vcc_hbm(), seed)
    }

    /// Creates a monitor with an explicit configuration and noise seed.
    #[must_use]
    pub fn new(config: Ina226Config, seed: u64) -> Self {
        Ina226 {
            config,
            bus_input: Volts::ZERO,
            current_input: Amperes::ZERO,
            shunt_reg: 0,
            bus_reg: 0,
            mask_enable: 0,
            alert_limit: 0,
            alert_latched: false,
            conversion_ready: false,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Arms the alert pin for power-over-limit at `limit` (written through
    /// the `MASK_ENABLE`/`ALERT_LIMIT` registers, as a host driver would).
    pub fn arm_power_alert(&mut self, limit: Watts) {
        self.mask_enable = MASK_POWER_OVER_LIMIT;
        self.alert_limit = (limit.as_f64() / self.config.power_lsb().as_f64()).round() as u16;
        self.alert_latched = false;
    }

    /// Arms the alert pin for bus under-voltage at `limit`.
    pub fn arm_bus_undervoltage_alert(&mut self, limit: Volts) {
        self.mask_enable = MASK_BUS_UNDER_VOLTAGE;
        self.alert_limit = (limit.as_f64() / BUS_LSB_VOLTS).round() as u16;
        self.alert_latched = false;
    }

    /// `true` if the alert function has triggered since last armed/cleared.
    #[must_use]
    pub fn alert_asserted(&self) -> bool {
        self.alert_latched
    }

    fn evaluate_alert(&mut self) {
        if self.mask_enable & MASK_POWER_OVER_LIMIT != 0 {
            let power_counts =
                (self.power().as_f64() / self.config.power_lsb().as_f64()).round() as u16;
            if power_counts > self.alert_limit {
                self.alert_latched = true;
            }
        }
        if self.mask_enable & MASK_BUS_UNDER_VOLTAGE != 0 && self.bus_reg < self.alert_limit {
            self.alert_latched = true;
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> Ina226Config {
        self.config
    }

    /// Replaces the averaging mode (host reconfiguration).
    pub fn set_averaging(&mut self, averaging: AveragingMode) {
        self.config.averaging = averaging;
    }

    /// Presents the true electrical state of the rail to the ADC inputs.
    pub fn set_input(&mut self, bus: Volts, current: Amperes) {
        self.bus_input = bus;
        self.current_input = current;
    }

    /// Runs one conversion: averages noisy samples of the inputs and
    /// quantizes them into the shunt/bus registers.
    pub fn convert(&mut self) {
        let n = self.config.averaging.samples();
        let shunt_true = (self.current_input * self.config.shunt).as_f64();
        let mut shunt_acc = 0.0;
        for _ in 0..n {
            shunt_acc += shunt_true + self.gaussian() * self.config.shunt_noise_sigma;
        }
        let shunt_avg = shunt_acc / f64::from(n);
        self.shunt_reg = (shunt_avg / SHUNT_LSB_VOLTS)
            .round()
            .clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16;
        // The bus ADC is modelled noise-free: its 1.25 mV LSB dominates.
        self.bus_reg = (self.bus_input.as_f64() / BUS_LSB_VOLTS)
            .round()
            .clamp(0.0, f64::from(i16::MAX)) as u16;
        self.conversion_ready = true;
        self.evaluate_alert();
    }

    /// Box–Muller standard normal from the deterministic stream.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Reads a register.
    #[must_use]
    pub fn read_register(&self, register: Ina226Register) -> u16 {
        match register {
            Ina226Register::Configuration => {
                // reset=0, avg bits, default conversion times (0b100), mode 0b111.
                (self.config.averaging.bits() << 9) | (0b100 << 6) | (0b100 << 3) | 0b111
            }
            Ina226Register::ShuntVoltage => self.shunt_reg as u16,
            Ina226Register::BusVoltage => self.bus_reg,
            Ina226Register::Power => {
                let counts = (self.power().as_f64() / self.config.power_lsb().as_f64()).round();
                counts.clamp(0.0, f64::from(u16::MAX)) as u16
            }
            Ina226Register::Current => {
                let counts = (self.current().as_f64() / self.config.current_lsb.as_f64()).round();
                counts.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16 as u16
            }
            Ina226Register::Calibration => self.config.calibration(),
            Ina226Register::MaskEnable => {
                let mut value = self.mask_enable;
                if self.alert_latched {
                    value |= ALERT_FUNCTION_FLAG;
                }
                if self.conversion_ready {
                    value |= CONVERSION_READY_FLAG;
                }
                value
            }
            Ina226Register::AlertLimit => self.alert_limit,
            Ina226Register::ManufacturerId => 0x5449,
            Ina226Register::DieId => 0x2260,
        }
    }

    /// Writes a writable register.
    ///
    /// # Errors
    ///
    /// Returns [`PmbusError::InvalidData`] for read-only registers.
    pub fn write_register(
        &mut self,
        register: Ina226Register,
        value: u16,
    ) -> Result<(), PmbusError> {
        match register {
            Ina226Register::Configuration => {
                self.config.averaging = AveragingMode::from_bits(value >> 9);
                Ok(())
            }
            Ina226Register::Calibration => {
                if value == 0 {
                    return Err(PmbusError::InvalidData { code: 0x05, value });
                }
                self.config.current_lsb =
                    Amperes(CAL_SCALE / (f64::from(value) * self.config.shunt.as_f64()));
                Ok(())
            }
            Ina226Register::MaskEnable => {
                // Writing clears the latched flags and re-arms.
                self.mask_enable = value & (MASK_POWER_OVER_LIMIT | MASK_BUS_UNDER_VOLTAGE);
                self.alert_latched = false;
                Ok(())
            }
            Ina226Register::AlertLimit => {
                self.alert_limit = value;
                Ok(())
            }
            _ => Err(PmbusError::InvalidData { code: 0x00, value }),
        }
    }

    /// Decoded bus voltage from the last conversion.
    #[must_use]
    pub fn bus_voltage(&self) -> Volts {
        Volts(f64::from(self.bus_reg) * BUS_LSB_VOLTS)
    }

    /// Decoded shunt voltage from the last conversion.
    #[must_use]
    pub fn shunt_voltage(&self) -> Volts {
        Volts(f64::from(self.shunt_reg) * SHUNT_LSB_VOLTS)
    }

    /// Decoded current from the last conversion (shunt voltage / shunt).
    #[must_use]
    pub fn current(&self) -> Amperes {
        self.shunt_voltage() / self.config.shunt
    }

    /// Decoded power from the last conversion (bus voltage × current).
    #[must_use]
    pub fn power(&self) -> Watts {
        self.bus_voltage() * self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_identify_the_part() {
        let monitor = Ina226::vcc_hbm(0);
        assert_eq!(
            monitor.read_register(Ina226Register::ManufacturerId),
            0x5449
        );
        assert_eq!(monitor.read_register(Ina226Register::DieId), 0x2260);
    }

    #[test]
    fn calibration_equation() {
        let config = Ina226Config::vcc_hbm();
        // CAL = 0.00512 / (0.5 mA × 2 mΩ) = 5120.
        assert_eq!(config.calibration(), 5120);
        assert_eq!(config.power_lsb(), Watts(0.0125));
        let monitor = Ina226::new(config, 0);
        assert_eq!(monitor.read_register(Ina226Register::Calibration), 5120);
    }

    #[test]
    fn measurement_accuracy_with_averaging() {
        let mut monitor = Ina226::vcc_hbm(1);
        monitor.set_input(Volts(1.2), Amperes(5.0));
        monitor.convert();
        // True power 6 W; quantization + averaged noise keep error small.
        assert!((monitor.power().as_f64() - 6.0).abs() < 0.05);
        assert!((monitor.current().as_f64() - 5.0).abs() < 0.05);
        assert!((monitor.bus_voltage().as_f64() - 1.2).abs() <= BUS_LSB_VOLTS);
    }

    #[test]
    fn zero_load_measures_zero_power() {
        let mut monitor = Ina226::vcc_hbm(2);
        monitor.set_input(Volts(1.2), Amperes::ZERO);
        monitor.convert();
        // Noise alone: at most a few LSBs of shunt reading.
        assert!(monitor.power().as_f64().abs() < 0.02);
    }

    #[test]
    fn averaging_reduces_noise_spread() {
        let spread = |averaging: AveragingMode| {
            let mut config = Ina226Config::vcc_hbm();
            config.averaging = averaging;
            let mut monitor = Ina226::new(config, 3);
            monitor.set_input(Volts(1.2), Amperes(5.0));
            let mut min = f64::MAX;
            let mut max = f64::MIN;
            for _ in 0..50 {
                monitor.convert();
                let p = monitor.power().as_f64();
                min = min.min(p);
                max = max.max(p);
            }
            max - min
        };
        // 1024-sample averaging visibly beats single-sample conversions.
        assert!(spread(AveragingMode::X1024) <= spread(AveragingMode::X1));
    }

    #[test]
    fn config_register_round_trip() {
        let mut monitor = Ina226::vcc_hbm(4);
        monitor
            .write_register(
                Ina226Register::Configuration,
                AveragingMode::X256.bits() << 9,
            )
            .unwrap();
        assert_eq!(monitor.config().averaging, AveragingMode::X256);
        let readback = monitor.read_register(Ina226Register::Configuration);
        assert_eq!(AveragingMode::from_bits(readback >> 9), AveragingMode::X256);
    }

    #[test]
    fn calibration_write_updates_current_lsb() {
        let mut monitor = Ina226::vcc_hbm(5);
        monitor
            .write_register(Ina226Register::Calibration, 2560)
            .unwrap();
        // current_LSB = 0.00512 / (2560 × 0.002) = 1 mA.
        assert!((monitor.config().current_lsb.as_f64() - 1.0e-3).abs() < 1e-12);
        assert!(monitor
            .write_register(Ina226Register::Calibration, 0)
            .is_err());
    }

    #[test]
    fn power_alert_fires_over_limit_and_rearms() {
        let mut monitor = Ina226::vcc_hbm(10);
        monitor.arm_power_alert(Watts(7.0));
        assert!(!monitor.alert_asserted());

        // Below the limit: no alert; conversion-ready flag set.
        monitor.set_input(Volts(1.2), Amperes(5.0)); // 6 W
        monitor.convert();
        assert!(!monitor.alert_asserted());
        let mask = monitor.read_register(Ina226Register::MaskEnable);
        assert_ne!(mask & CONVERSION_READY_FLAG, 0);
        assert_eq!(mask & ALERT_FUNCTION_FLAG, 0);

        // Above the limit: alert latches.
        monitor.set_input(Volts(1.2), Amperes(6.5)); // 7.8 W
        monitor.convert();
        assert!(monitor.alert_asserted());
        assert_ne!(
            monitor.read_register(Ina226Register::MaskEnable) & ALERT_FUNCTION_FLAG,
            0
        );

        // Stays latched through a low reading; clears on mask rewrite.
        monitor.set_input(Volts(1.2), Amperes(1.0));
        monitor.convert();
        assert!(monitor.alert_asserted());
        monitor
            .write_register(Ina226Register::MaskEnable, MASK_POWER_OVER_LIMIT)
            .unwrap();
        assert!(!monitor.alert_asserted());
    }

    #[test]
    fn bus_undervoltage_alert() {
        let mut monitor = Ina226::vcc_hbm(11);
        monitor.arm_bus_undervoltage_alert(Volts(0.98));
        monitor.set_input(Volts(1.0), Amperes(1.0));
        monitor.convert();
        assert!(!monitor.alert_asserted());
        monitor.set_input(Volts(0.95), Amperes(1.0));
        monitor.convert();
        assert!(monitor.alert_asserted(), "sag below 0.98 V must alert");
    }

    #[test]
    fn alert_limit_register_round_trip() {
        let mut monitor = Ina226::vcc_hbm(12);
        monitor
            .write_register(Ina226Register::AlertLimit, 1234)
            .unwrap();
        assert_eq!(monitor.read_register(Ina226Register::AlertLimit), 1234);
    }

    #[test]
    fn read_only_registers_reject_writes() {
        let mut monitor = Ina226::vcc_hbm(6);
        for reg in [
            Ina226Register::ShuntVoltage,
            Ina226Register::BusVoltage,
            Ina226Register::Power,
            Ina226Register::Current,
            Ina226Register::ManufacturerId,
            Ina226Register::DieId,
        ] {
            assert!(monitor.write_register(reg, 1).is_err(), "{reg:?}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut monitor = Ina226::vcc_hbm(seed);
            monitor.set_input(Volts(1.0), Amperes(3.0));
            monitor.convert();
            monitor.read_register(Ina226Register::ShuntVoltage)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn averaging_mode_bits_round_trip() {
        for mode in [
            AveragingMode::X1,
            AveragingMode::X4,
            AveragingMode::X16,
            AveragingMode::X64,
            AveragingMode::X128,
            AveragingMode::X256,
            AveragingMode::X512,
            AveragingMode::X1024,
        ] {
            assert_eq!(AveragingMode::from_bits(mode.bits()), mode);
        }
    }
}
