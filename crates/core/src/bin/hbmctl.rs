//! `hbmctl` — host-side control tool for the simulated HBM undervolting
//! platform, mirroring the custom host interface the study built to drive
//! its experiments.
//!
//! ```text
//! hbmctl guardband   [--seed N]
//! hbmctl power-sweep [--seed N]
//! hbmctl reliability [--seed N] [--from MV] [--to MV] [--step MV]
//!                    [--batch N] [--words N]
//! hbmctl fault-map   [--seed N] [--out FILE]
//! hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE
//! ```

use std::process::ExitCode;

use hbm_faults::FaultMap;
use hbm_power::HbmPowerModel;
use hbm_traffic::DataPattern;
use hbm_undervolt::report::{render_power_table, to_json};
use hbm_undervolt::{
    GuardbandFinder, Platform, PowerSweep, ReliabilityConfig, ReliabilityTester, TestScope,
    TradeOffAnalysis, VoltageSweep,
};
use hbm_units::{Millivolts, Ratio};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, raw)) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {raw}")),
        }
    }

    fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let (_, raw) = self
            .flags
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value for --{name}: {raw}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("hbmctl: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hbmctl guardband   [--seed N]
  hbmctl power-sweep [--seed N]
  hbmctl reliability [--seed N] [--from MV] [--to MV] [--step MV] [--batch N] [--words N]
  hbmctl fault-map   [--seed N] [--out FILE]
  hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE";

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or("no command given")?;
    let seed: u64 = args.flag("seed", 7)?;

    match command {
        "guardband" => guardband(seed),
        "power-sweep" => power_sweep(seed),
        "reliability" => reliability(seed, &args),
        "fault-map" => fault_map(seed, &args),
        "plan" => plan(seed, &args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn platform(seed: u64) -> Platform {
    Platform::builder().seed(seed).build()
}

fn guardband(seed: u64) -> Result<(), String> {
    let mut p = platform(seed);
    let report = GuardbandFinder::new()
        .run(&mut p)
        .map_err(|e| e.to_string())?;
    println!("specimen seed {seed}");
    println!("V_min      = {}", report.v_min);
    println!("V_critical = {}", report.v_critical);
    println!(
        "guardband  = {} ({:.1}% of nominal)",
        report.guardband(),
        report.guardband_fraction().as_percent()
    );
    Ok(())
}

fn power_sweep(seed: u64) -> Result<(), String> {
    let mut p = platform(seed);
    let report = PowerSweep::date21()
        .run(&mut p)
        .map_err(|e| e.to_string())?;
    print!("{}", render_power_table(&report));
    println!(
        "\nsaving at 0.98 V: {:.2}x   saving at 0.85 V: {:.2}x",
        report.saving(Millivolts(980), 32).expect("0.98 V swept"),
        report.saving(Millivolts(850), 32).expect("0.85 V swept"),
    );
    Ok(())
}

fn reliability(seed: u64, args: &Args) -> Result<(), String> {
    let from: u32 = args.flag("from", 980)?;
    let to: u32 = args.flag("to", 850)?;
    let step: u32 = args.flag("step", 10)?;
    let batch: usize = args.flag("batch", 1)?;
    let words: u64 = args.flag("words", 1024)?;

    let config = ReliabilityConfig {
        sweep: VoltageSweep::new(Millivolts(from), Millivolts(to), Millivolts(step))
            .map_err(|e| e.to_string())?,
        batch_size: batch,
        patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
        scope: TestScope::EntireHbm,
        words_per_pc: Some(words),
    };
    let tester = ReliabilityTester::new(config).map_err(|e| e.to_string())?;
    let mut p = platform(seed);
    let report = tester.run(&mut p).map_err(|e| e.to_string())?;

    println!(
        "reliability sweep (seed {seed}, {} bits checked per run)\n",
        report.checked_bits_per_run
    );
    println!("{:>8} {:>14} {:>14} {:>12}", "V", "1->0 flips", "0->1 flips", "rate");
    for point in &report.points {
        if point.crashed {
            println!("{:>8} {:>14}", point.voltage, "CRASHED");
            continue;
        }
        let f10 = point
            .outcome(DataPattern::AllOnes)
            .map_or(0, |o| o.flips_1to0);
        let f01 = point
            .outcome(DataPattern::AllZeros)
            .map_or(0, |o| o.flips_0to1);
        println!(
            "{:>8} {:>14} {:>14} {:>12.3e}",
            point.voltage,
            f10,
            f01,
            point.total_mean_faults() / report.checked_bits_per_run as f64,
        );
    }
    Ok(())
}

fn fault_map(seed: u64, args: &Args) -> Result<(), String> {
    let p = platform(seed);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let json = to_json(&map).map_err(|e| e.to_string())?;
    match args.flags.iter().find(|(n, _)| n == "out") {
        Some((_, path)) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "fault map for seed {seed}: {} PCs x {} voltages -> {path}",
                map.profiles.len(),
                map.voltages.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn plan(seed: u64, args: &Args) -> Result<(), String> {
    let capacity_gb: f64 = args.required("capacity-gb")?;
    let tolerance: f64 = args.required("tolerance")?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err("tolerance must be a fraction in [0, 1]".to_owned());
    }

    let p = platform(seed);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
    let bytes = (capacity_gb * (1u64 << 30) as f64) as u64;
    match analysis.plan(bytes, Ratio(tolerance)) {
        Some(point) => {
            println!("operating point for ≥{capacity_gb} GB at ≤{tolerance} fault rate:");
            println!("  voltage        {}", point.voltage);
            println!(
                "  usable PCs     {} ({} GB)",
                point.usable_pcs.len(),
                point.capacity_bytes >> 30
            );
            println!("  power saving   {:.2}x vs nominal", point.saving_factor);
            println!("  worst PC rate  {:.3e}", point.worst_fault_rate.as_f64());
            Ok(())
        }
        None => Err(format!(
            "no swept voltage provides {capacity_gb} GB within fault rate {tolerance}"
        )),
    }
}
