//! SEC-DED Hamming (72,64): the extended Hamming code protecting each
//! 64-bit lane with 8 check bits, as server DRAM does.
//!
//! The code corrects any single bit flip per lane and detects any double
//! flip — a good match for undervolting faults near the onset, where flips
//! are sparse and spatially independent at lane granularity.

use serde::{Deserialize, Serialize};

/// Codeword-position tables: data bit `i` lives at the `i`-th
/// non-power-of-two position in `1..=71`; the seven Hamming parity bits
/// occupy positions 1, 2, 4, 8, 16, 32, 64.
const fn build_tables() -> ([u8; 64], [i8; 72]) {
    let mut pos_of_data = [0u8; 64];
    let mut data_of_pos = [-1i8; 72];
    let mut pos = 1u8;
    let mut i = 0;
    while i < 64 {
        if pos.count_ones() != 1 {
            pos_of_data[i] = pos;
            data_of_pos[pos as usize] = i as i8;
            i += 1;
        }
        pos += 1;
    }
    (pos_of_data, data_of_pos)
}

const TABLES: ([u8; 64], [i8; 72]) = build_tables();
const POS_OF_DATA: [u8; 64] = TABLES.0;
const DATA_OF_POS: [i8; 72] = TABLES.1;

/// Result of decoding one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// No error: the data as stored.
    Clean(u64),
    /// A single bit error (in the data, the check bits or the overall
    /// parity) was corrected; the payload is the corrected data.
    Corrected(u64),
    /// An uncorrectable error (two or more flips) was detected; the payload
    /// is the raw, possibly corrupt data.
    Detected(u64),
}

impl DecodeOutcome {
    /// The best-effort data regardless of outcome.
    #[must_use]
    pub fn data(self) -> u64 {
        match self {
            DecodeOutcome::Clean(d) | DecodeOutcome::Corrected(d) | DecodeOutcome::Detected(d) => d,
        }
    }

    /// `true` unless the outcome is a detected uncorrectable error.
    #[must_use]
    pub fn is_reliable(self) -> bool {
        !matches!(self, DecodeOutcome::Detected(_))
    }
}

/// The SEC-DED (72,64) codec.
///
/// # Examples
///
/// ```
/// use hbm_ecc::{DecodeOutcome, Hamming7264};
///
/// let data = 0xDEAD_BEEF_CAFE_F00D;
/// let check = Hamming7264::encode(data);
///
/// // A single flip anywhere in the data is corrected.
/// let corrupted = data ^ (1 << 17);
/// assert_eq!(Hamming7264::decode(corrupted, check), DecodeOutcome::Corrected(data));
///
/// // Two flips are detected, not miscorrected.
/// let corrupted = data ^ 0b11;
/// assert_eq!(Hamming7264::decode(corrupted, check), DecodeOutcome::Detected(corrupted));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Hamming7264;

impl Hamming7264 {
    /// Number of check bits per 64-bit lane.
    pub const CHECK_BITS: u32 = 8;

    /// Computes the 7 Hamming check bits of a data word: the XOR of the
    /// codeword positions of its set bits.
    fn hamming_bits(data: u64) -> u8 {
        let mut check = 0u8;
        let mut remaining = data;
        while remaining != 0 {
            let i = remaining.trailing_zeros() as usize;
            check ^= POS_OF_DATA[i];
            remaining &= remaining - 1;
        }
        check
    }

    /// Encodes a data lane, returning its 8 check bits (7 Hamming + 1
    /// overall parity in the top bit).
    #[must_use]
    pub fn encode(data: u64) -> u8 {
        let hamming = Self::hamming_bits(data);
        let overall = ((data.count_ones() + u32::from(hamming).count_ones()) & 1) as u8;
        hamming | (overall << 7)
    }

    /// Decodes a possibly corrupted `(data, check)` pair.
    #[must_use]
    pub fn decode(data: u64, check: u8) -> DecodeOutcome {
        let stored_hamming = check & 0x7F;
        let stored_overall = check >> 7;
        let syndrome = Self::hamming_bits(data) ^ stored_hamming;
        let computed_overall =
            ((data.count_ones() + u32::from(stored_hamming).count_ones()) & 1) as u8;
        let parity_mismatch = computed_overall != stored_overall;

        match (syndrome, parity_mismatch) {
            (0, false) => DecodeOutcome::Clean(data),
            // Only the overall parity bit flipped; data intact.
            (0, true) => DecodeOutcome::Corrected(data),
            (s, true) => {
                let s = s as usize;
                if s < DATA_OF_POS.len() {
                    let mapped = DATA_OF_POS[s];
                    if mapped >= 0 {
                        // Single data-bit error.
                        return DecodeOutcome::Corrected(data ^ (1u64 << mapped));
                    }
                    if (s as u8).count_ones() == 1 {
                        // Single check-bit error; data intact.
                        return DecodeOutcome::Corrected(data);
                    }
                }
                // Syndrome points outside the codeword: ≥2 flips.
                DecodeOutcome::Detected(data)
            }
            // Non-zero syndrome with matching overall parity: double error.
            (_, false) => DecodeOutcome::Detected(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 6] = [
        0,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        0x0123_4567_89AB_CDEF,
        1,
        1 << 63,
    ];

    #[test]
    fn position_tables_are_consistent() {
        // 64 data positions, none a power of two, all within 3..=71.
        for (i, &pos) in POS_OF_DATA.iter().enumerate() {
            assert!((3..=71).contains(&pos));
            assert_ne!(pos.count_ones(), 1, "data position {pos} is a parity slot");
            assert_eq!(DATA_OF_POS[pos as usize], i as i8);
        }
        // Parity positions map to no data bit.
        for p in [1usize, 2, 4, 8, 16, 32, 64] {
            assert_eq!(DATA_OF_POS[p], -1);
        }
    }

    #[test]
    fn clean_round_trip() {
        for &data in &SAMPLES {
            let check = Hamming7264::encode(data);
            assert_eq!(Hamming7264::decode(data, check), DecodeOutcome::Clean(data));
        }
    }

    #[test]
    fn corrects_every_single_data_bit_flip() {
        for &data in &SAMPLES {
            let check = Hamming7264::encode(data);
            for bit in 0..64 {
                let corrupted = data ^ (1u64 << bit);
                assert_eq!(
                    Hamming7264::decode(corrupted, check),
                    DecodeOutcome::Corrected(data),
                    "data {data:#x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn corrects_every_single_check_bit_flip() {
        for &data in &SAMPLES {
            let check = Hamming7264::encode(data);
            for bit in 0..8 {
                let corrupted_check = check ^ (1u8 << bit);
                let outcome = Hamming7264::decode(data, corrupted_check);
                assert_eq!(outcome, DecodeOutcome::Corrected(data), "check bit {bit}");
            }
        }
    }

    #[test]
    fn detects_every_double_data_bit_flip() {
        // Exhaustive over all 64×63/2 data-bit pairs for one payload.
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = Hamming7264::encode(data);
        for a in 0..64 {
            for b in (a + 1)..64 {
                let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
                let outcome = Hamming7264::decode(corrupted, check);
                assert_eq!(
                    outcome,
                    DecodeOutcome::Detected(corrupted),
                    "bits {a},{b} miscorrected"
                );
            }
        }
    }

    #[test]
    fn detects_mixed_data_check_double_flips() {
        let data = 0x1357_9BDF_2468_ACE0u64;
        let check = Hamming7264::encode(data);
        for a in 0..64 {
            for c in 0..8 {
                let outcome = Hamming7264::decode(data ^ (1u64 << a), check ^ (1u8 << c));
                assert!(
                    !matches!(outcome, DecodeOutcome::Clean(_)),
                    "data bit {a} + check bit {c} went unnoticed"
                );
                // SEC-DED guarantee: never "corrected" to the wrong data.
                if let DecodeOutcome::Corrected(d) = outcome {
                    assert_eq!(d, data, "data bit {a} + check bit {c} miscorrected");
                }
            }
        }
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(DecodeOutcome::Clean(5).data(), 5);
        assert_eq!(DecodeOutcome::Corrected(6).data(), 6);
        assert_eq!(DecodeOutcome::Detected(7).data(), 7);
        assert!(DecodeOutcome::Clean(0).is_reliable());
        assert!(DecodeOutcome::Corrected(0).is_reliable());
        assert!(!DecodeOutcome::Detected(0).is_reliable());
    }

    #[test]
    fn check_bits_differ_across_data() {
        // Not a cryptographic property, but the code must be non-trivial.
        let a = Hamming7264::encode(0x1111);
        let b = Hamming7264::encode(0x2222);
        assert_ne!(a, b);
    }
}
