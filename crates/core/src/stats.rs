//! Statistical fault-injection methodology (Leveugle et al., DATE 2009).
//!
//! The study repeats every test 130 times, "which gives us a 7 % error
//! margin with 90 % confidence interval". The sample-size relation is the
//! standard one for estimating a proportion:
//!
//! ```text
//! n = z² · p(1−p) / e²
//! ```
//!
//! with `z` the normal quantile of the confidence level, `p` the (worst
//! case 0.5) fault proportion and `e` the absolute error margin.

use hbm_faults::math::probit;

/// The number of repetitions needed to estimate a fault proportion within
/// `error_margin` (absolute) at `confidence`, assuming the worst-case
/// proportion `p = 0.5`.
///
/// # Panics
///
/// Panics unless `error_margin` and `confidence` are in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::stats::required_runs;
///
/// // The study's configuration: ≈130 runs for 7 % at 90 % confidence.
/// let runs = required_runs(0.07, 0.90);
/// assert!((125..=145).contains(&runs), "runs = {runs}");
/// ```
#[must_use]
pub fn required_runs(error_margin: f64, confidence: f64) -> usize {
    assert!(
        error_margin > 0.0 && error_margin < 1.0,
        "error margin must be in (0, 1), got {error_margin}"
    );
    let z = z_value(confidence);
    let n = z * z * 0.25 / (error_margin * error_margin);
    n.ceil() as usize
}

/// The absolute error margin achieved by `runs` repetitions at
/// `confidence` (worst-case proportion).
///
/// # Panics
///
/// Panics if `runs` is zero or `confidence` not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::stats::margin_for_runs;
///
/// let margin = margin_for_runs(130, 0.90);
/// assert!((0.06..0.08).contains(&margin), "margin = {margin}");
/// ```
#[must_use]
pub fn margin_for_runs(runs: usize, confidence: f64) -> f64 {
    assert!(runs > 0, "runs must be positive");
    let z = z_value(confidence);
    z * (0.25 / runs as f64).sqrt()
}

/// The two-sided normal quantile for a confidence level.
///
/// # Panics
///
/// Panics unless `confidence` is in `(0, 1)`.
#[must_use]
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    probit(0.5 + confidence / 2.0)
}

/// Summary statistics of a batch of fault counts: the quantities the
/// study's host aggregates across its 130 runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSummary {
    /// Number of runs.
    pub runs: usize,
    /// Mean fault count.
    pub mean: f64,
    /// Minimum observed.
    pub min: u64,
    /// Maximum observed.
    pub max: u64,
    /// Sample standard deviation (0 for a single run).
    pub std_dev: f64,
}

impl BatchSummary {
    /// Summarizes a batch of fault counts.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    #[must_use]
    pub fn of(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "cannot summarize an empty batch");
        let runs = counts.len();
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / runs as f64;
        let min = *counts.iter().min().expect("non-empty");
        let max = *counts.iter().max().expect("non-empty");
        let std_dev = if runs > 1 {
            let var = counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / (runs - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        BatchSummary {
            runs,
            mean,
            min,
            max,
            std_dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_tables() {
        assert!((z_value(0.90) - 1.6449).abs() < 1e-3);
        assert!((z_value(0.95) - 1.9600).abs() < 1e-3);
        assert!((z_value(0.99) - 2.5758).abs() < 1e-3);
    }

    #[test]
    fn paper_configuration() {
        // 130 runs ↔ ≈7 % at 90 %, both directions.
        assert!((125..=145).contains(&required_runs(0.07, 0.90)));
        let margin = margin_for_runs(130, 0.90);
        assert!((0.065..0.078).contains(&margin));
    }

    #[test]
    fn more_runs_tighter_margin() {
        assert!(margin_for_runs(1000, 0.90) < margin_for_runs(130, 0.90));
        assert!(required_runs(0.01, 0.90) > required_runs(0.07, 0.90));
        assert!(required_runs(0.07, 0.99) > required_runs(0.07, 0.90));
    }

    #[test]
    fn batch_summary() {
        let s = BatchSummary::of(&[10, 12, 14]);
        assert_eq!(s.runs, 3);
        assert_eq!(s.mean, 12.0);
        assert_eq!((s.min, s.max), (10, 14));
        assert!((s.std_dev - 2.0).abs() < 1e-12);

        let single = BatchSummary::of(&[7]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = BatchSummary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_rejected() {
        let _ = z_value(1.0);
    }
}
