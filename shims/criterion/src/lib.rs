//! Vendored stand-in for `criterion`, scoped to what the workspace's bench
//! targets use. Each benchmark runs a short warm-up followed by a timed
//! batch and prints the mean iteration time — enough to compare kernels
//! locally without the statistical machinery of the real crate.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, 100, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut adapter = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.sample_size, &mut adapter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        iterations: sample_size.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!("  {label}: {:.3} µs/iter", mean * 1e6);
}

/// Per-benchmark measurement handle.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Units for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
