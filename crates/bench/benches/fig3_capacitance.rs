//! Criterion bench for the Fig. 3 pipeline: α·C_L·f extraction and
//! normalization from a finished power sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hbm_undervolt::{Platform, PowerSweep};

fn bench_fig3(c: &mut Criterion) {
    let mut platform = Platform::builder().seed(7).build();
    let report = PowerSweep::date21()
        .run(&mut platform)
        .expect("power sweep");

    let mut group = c.benchmark_group("fig3_acf_extraction");
    group.bench_function("acf_series_all_steps", |b| {
        b.iter(|| {
            for &ports in &report.port_steps {
                std::hint::black_box(report.acf_series(ports));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
