//! Workspace umbrella crate for the reproduction of *"Understanding Power
//! Consumption and Reliability of High-Bandwidth Memory with Voltage
//! Underscaling"* (DATE 2021).
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it re-exports the member
//! crates so that examples can use a single dependency.
//!
//! - [`units`]: physical-quantity newtypes
//! - [`device`]: the HBM device organization model
//! - [`vreg`]: PMBus voltage regulator and power monitor models
//! - [`power`]: analytical power models
//! - [`faults`]: the voltage-dependent fault model
//! - [`traffic`]: AXI traffic generators
//! - [`fleet`]: population-scale characterization and the columnar artifact
//! - [`undervolt`]: the study's measurement methodology (the core library)
//!
//! # Examples
//!
//! ```
//! use hbm_undervolt_suite::undervolt::Platform;
//!
//! let platform = Platform::builder().seed(7).build();
//! assert_eq!(platform.pseudo_channel_count(), 32);
//! ```

#![forbid(unsafe_code)]

pub use hbm_device as device;
pub use hbm_ecc as ecc;
pub use hbm_faults as faults;
pub use hbm_fleet as fleet;
pub use hbm_power as power;
pub use hbm_traffic as traffic;
pub use hbm_undervolt as undervolt;
pub use hbm_units as units;
pub use hbm_vreg as vreg;
