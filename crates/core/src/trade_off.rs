//! The three-factor trade-off among power, fault rate and memory capacity
//! (§III-C and Fig. 6 of the paper).

use hbm_device::PcIndex;
use hbm_faults::FaultMap;
use hbm_power::HbmPowerModel;
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;

/// One Fig. 6 series: usable pseudo channels per voltage at a tolerable
/// fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsablePcCurve {
    /// The tolerable fault rate of this series (0 = must be fault-free).
    pub tolerable: Ratio,
    /// `(voltage, usable PC count)` pairs in descending voltage order.
    pub points: Vec<(Millivolts, usize)>,
}

impl UsablePcCurve {
    /// The count at an exact voltage.
    #[must_use]
    pub fn at(&self, voltage: Millivolts) -> Option<usize> {
        self.points
            .iter()
            .find(|(v, _)| *v == voltage)
            .map(|&(_, n)| n)
    }
}

/// An operating point the planner recommends: how low to go for a given
/// capacity and fault budget, and what it buys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// The recommended supply voltage.
    pub voltage: Millivolts,
    /// The pseudo channels usable at that voltage within the budget.
    pub usable_pcs: Vec<u8>,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Power-saving factor versus nominal 1.20 V (same utilization).
    pub saving_factor: f64,
    /// The worst per-PC fault rate among the selected PCs.
    pub worst_fault_rate: Ratio,
}

/// One planner example of a [`TradeOffReport`]: what the lowest safe
/// operating point looks like for a capacity fraction and fault budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedFraction {
    /// Required fraction of the device capacity, in `(0, 1]`.
    pub fraction: f64,
    /// Tolerable per-PC fault rate.
    pub tolerable: Ratio,
    /// The recommended point, or `None` if no swept voltage qualifies.
    pub point: Option<OperatingPoint>,
}

/// The full §III-C artefact: the Fig. 6 curve family plus planner examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeOffReport {
    /// One usable-PC series per tolerance, loosest last.
    pub curves: Vec<UsablePcCurve>,
    /// Example operating points across the capacity/fault-budget space.
    pub plans: Vec<PlannedFraction>,
}

/// The trade-off analysis: a [`FaultMap`] (per-PC rates across the sweep)
/// combined with the power model.
///
/// # Examples
///
/// ```
/// use hbm_faults::{FaultMap, FaultModelParams, RatePredictor};
/// use hbm_device::HbmGeometry;
/// use hbm_power::HbmPowerModel;
/// use hbm_undervolt::TradeOffAnalysis;
/// use hbm_units::{Millivolts, Ratio};
///
/// let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
/// let map = FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10));
/// let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
///
/// // A fault-intolerant application needing all 8 GB stays at the
/// // guardband edge: a fixed ≈1.5× saving.
/// let full = analysis.plan(8 << 30, Ratio::ZERO).unwrap();
/// assert!(full.voltage >= Millivolts(960));
/// assert!(full.saving_factor >= 1.49);
/// ```
#[derive(Debug, Clone)]
pub struct TradeOffAnalysis {
    map: FaultMap,
    power: HbmPowerModel,
}

impl TradeOffAnalysis {
    /// Combines a fault map with a power model.
    #[must_use]
    pub fn new(map: FaultMap, power: HbmPowerModel) -> Self {
        TradeOffAnalysis { map, power }
    }

    /// The underlying fault map.
    #[must_use]
    pub fn fault_map(&self) -> &FaultMap {
        &self.map
    }

    /// Builds one Fig. 6 series for a tolerable fault rate.
    #[must_use]
    pub fn usable_pc_curve(&self, tolerable: Ratio) -> UsablePcCurve {
        UsablePcCurve {
            tolerable,
            points: self
                .map
                .voltages
                .iter()
                .map(|&v| (v, self.map.usable_pc_count(v, tolerable)))
                .collect(),
        }
    }

    /// Builds the full Fig. 6 family for several tolerances.
    #[must_use]
    pub fn usable_pc_curves(&self, tolerances: &[Ratio]) -> Vec<UsablePcCurve> {
        tolerances
            .iter()
            .map(|&t| self.usable_pc_curve(t))
            .collect()
    }

    /// The device-mean union fault rate at a voltage (drives the
    /// capacitance-degradation term of the saving factor).
    fn device_fraction(&self, voltage: Millivolts) -> Ratio {
        let mut sum = 0.0;
        let mut n = 0usize;
        for profile in &self.map.profiles {
            if let Some(entry) = profile.at(voltage) {
                sum += entry.union().as_f64();
                n += 1;
            }
        }
        if n == 0 {
            Ratio::ZERO
        } else {
            Ratio(sum / n as f64)
        }
    }

    /// Plans the lowest-voltage operating point that keeps at least
    /// `min_capacity_bytes` of memory within `tolerable` fault rate.
    /// Returns `None` if no swept voltage satisfies the requirement.
    #[must_use]
    pub fn plan(&self, min_capacity_bytes: u64, tolerable: Ratio) -> Option<OperatingPoint> {
        let bytes_per_pc = self.map.geometry.bytes_per_pc();
        let needed_pcs = min_capacity_bytes.div_ceil(bytes_per_pc).max(1) as usize;
        let mut best: Option<OperatingPoint> = None;
        for &voltage in &self.map.voltages {
            let usable = self.map.usable_pcs(voltage, tolerable);
            if usable.len() < needed_pcs {
                continue;
            }
            let point = self.operating_point(voltage, &usable, tolerable);
            match &best {
                Some(b) if b.voltage <= point.voltage => {}
                _ => best = Some(point),
            }
        }
        best
    }

    fn operating_point(
        &self,
        voltage: Millivolts,
        usable: &[PcIndex],
        tolerable: Ratio,
    ) -> OperatingPoint {
        let worst = usable
            .iter()
            .filter_map(|&pc| self.map.profile(pc).at(voltage))
            .map(|e| e.union().as_f64())
            .fold(0.0, f64::max);
        let saving = self
            .power
            .saving_factor(voltage, Ratio::ONE, self.device_fraction(voltage));
        debug_assert!(worst <= tolerable.as_f64().max(f64::EPSILON) || tolerable == Ratio::ZERO);
        OperatingPoint {
            voltage,
            usable_pcs: usable.iter().map(|pc| pc.as_u8()).collect(),
            capacity_bytes: usable.len() as u64 * self.map.geometry.bytes_per_pc(),
            saving_factor: saving,
            worst_fault_rate: Ratio(worst),
        }
    }

    /// The tolerance family the paper's Fig. 6 displays.
    #[must_use]
    pub fn standard_tolerances() -> [Ratio; 6] {
        [
            Ratio::ZERO,
            Ratio(1e-6),
            Ratio(1e-4),
            Ratio(0.01),
            Ratio(0.1),
            Ratio(0.5),
        ]
    }

    /// Builds the full report: the standard Fig. 6 family plus planner
    /// examples spanning the capacity/fault-budget space.
    ///
    /// # Errors
    ///
    /// Propagates planner configuration errors (none for the built-in
    /// example fractions).
    pub fn report(&self) -> Result<TradeOffReport, ExperimentError> {
        let curves = self.usable_pc_curves(&Self::standard_tolerances());
        let examples = [(1.0, Ratio::ZERO), (0.5, Ratio(1e-6)), (0.25, Ratio(0.01))];
        let mut plans = Vec::with_capacity(examples.len());
        for (fraction, tolerable) in examples {
            plans.push(PlannedFraction {
                fraction,
                tolerable,
                point: self.plan_fraction(fraction, tolerable)?,
            });
        }
        Ok(TradeOffReport { curves, plans })
    }

    /// The paper's §III-C example queries, as a convenience: returns the
    /// operating point for "needs `fraction` of the capacity, tolerates
    /// `tolerable`".
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `fraction` is outside `(0, 1]`.
    pub fn plan_fraction(
        &self,
        fraction: f64,
        tolerable: Ratio,
    ) -> Result<Option<OperatingPoint>, ExperimentError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(ExperimentError::config(format!(
                "capacity fraction must be in (0, 1], got {fraction}"
            )));
        }
        let total = self.map.geometry.total_bytes();
        Ok(self.plan((total as f64 * fraction).ceil() as u64, tolerable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_device::HbmGeometry;
    use hbm_faults::{FaultModelParams, RatePredictor};

    fn analysis() -> TradeOffAnalysis {
        let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
        let map =
            FaultMap::from_predictor(&predictor, Millivolts(980), Millivolts(810), Millivolts(10));
        TradeOffAnalysis::new(map, HbmPowerModel::date21())
    }

    #[test]
    fn fig6_curves_are_monotone() {
        let a = analysis();
        let tolerances = [
            Ratio::ZERO,
            Ratio(1e-6),
            Ratio(1e-4),
            Ratio(0.01),
            Ratio(0.5),
        ];
        let curves = a.usable_pc_curves(&tolerances);
        assert_eq!(curves.len(), tolerances.len());
        for curve in &curves {
            // Counts never increase as voltage drops.
            assert!(
                curve.points.windows(2).all(|w| w[0].1 >= w[1].1),
                "tolerance {:?}: {:?}",
                curve.tolerable,
                curve.points
            );
        }
        // More tolerance, (weakly) more PCs at every voltage.
        for w in curves.windows(2) {
            for (a, b) in w[0].points.iter().zip(&w[1].points) {
                assert!(a.1 <= b.1);
            }
        }
    }

    #[test]
    fn fault_intolerant_full_capacity_stays_near_guardband() {
        let a = analysis();
        let point = a.plan(8 << 30, Ratio::ZERO).unwrap();
        assert!(
            point.voltage >= Millivolts(960),
            "voltage {}",
            point.voltage
        );
        assert_eq!(point.usable_pcs.len(), 32);
        assert_eq!(point.capacity_bytes, 8 << 30);
        assert!(
            (1.45..1.65).contains(&point.saving_factor),
            "{}",
            point.saving_factor
        );
    }

    #[test]
    fn sacrificing_capacity_buys_voltage() {
        let a = analysis();
        let full = a.plan_fraction(1.0, Ratio::ZERO).unwrap().unwrap();
        let small = a.plan_fraction(0.2, Ratio::ZERO).unwrap().unwrap();
        assert!(small.voltage <= full.voltage);
        assert!(small.saving_factor >= full.saving_factor);
    }

    #[test]
    fn tolerating_faults_buys_voltage() {
        let a = analysis();
        let strict = a.plan_fraction(0.5, Ratio::ZERO).unwrap().unwrap();
        let loose = a.plan_fraction(0.5, Ratio(1e-6)).unwrap().unwrap();
        let looser = a.plan_fraction(0.5, Ratio(0.01)).unwrap().unwrap();
        assert!(loose.voltage <= strict.voltage);
        assert!(looser.voltage <= loose.voltage);
        assert!(looser.saving_factor >= strict.saving_factor);
        // Deep undervolting with high tolerance approaches the 2.3× regime.
        assert!(
            looser.saving_factor > 1.8,
            "saving {}",
            looser.saving_factor
        );
    }

    #[test]
    fn worst_fault_rate_respects_budget() {
        let a = analysis();
        let tol = Ratio(1e-4);
        let point = a.plan_fraction(0.25, tol).unwrap().unwrap();
        assert!(point.worst_fault_rate.as_f64() <= tol.as_f64());
    }

    #[test]
    fn impossible_plans_return_none() {
        let a = analysis();
        // Full capacity, zero faults, at the lowest voltages only: the map
        // starts at 0.98 V, so full capacity IS available; ask for more
        // capacity than exists instead.
        assert!(a.plan(u64::MAX, Ratio::ZERO).is_none());
        assert!(a.plan_fraction(2.0, Ratio::ZERO).is_err());
        assert!(a.plan_fraction(0.0, Ratio::ZERO).is_err());
    }

    #[test]
    fn curve_lookup() {
        let a = analysis();
        let curve = a.usable_pc_curve(Ratio::ZERO);
        assert_eq!(curve.at(Millivolts(980)), Some(32));
        assert_eq!(curve.at(Millivolts(985)), None);
        assert_eq!(curve.at(Millivolts(810)), Some(0));
    }
}
