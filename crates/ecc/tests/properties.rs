//! Property-based tests of the SEC-DED codec and the remapping plan.

use hbm_device::{HbmGeometry, PcIndex, WordOffset};
use hbm_ecc::{DecodeOutcome, Hamming7264, HealthMap};
use hbm_faults::{FaultInjector, FaultModelParams};
use hbm_units::Millivolts;
use proptest::prelude::*;

proptest! {
    /// Encoding is deterministic and clean decoding is the identity, for
    /// any payload.
    #[test]
    fn clean_round_trip(data in any::<u64>()) {
        let check = Hamming7264::encode(data);
        prop_assert_eq!(check, Hamming7264::encode(data));
        prop_assert_eq!(Hamming7264::decode(data, check), DecodeOutcome::Clean(data));
    }

    /// Every single data-bit flip is corrected back, for any payload.
    #[test]
    fn sec_property(data in any::<u64>(), bit in 0u32..64) {
        let check = Hamming7264::encode(data);
        let corrupted = data ^ (1u64 << bit);
        prop_assert_eq!(
            Hamming7264::decode(corrupted, check),
            DecodeOutcome::Corrected(data)
        );
    }

    /// Every double data-bit flip is detected (never silently accepted or
    /// miscorrected), for any payload.
    #[test]
    fn ded_property(data in any::<u64>(), a in 0u32..64, b in 0u32..64) {
        prop_assume!(a != b);
        let check = Hamming7264::encode(data);
        let corrupted = data ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(
            Hamming7264::decode(corrupted, check),
            DecodeOutcome::Detected(corrupted)
        );
    }

    /// Check-bit corruption alone never corrupts data: any single check
    /// flip decodes to the original payload.
    #[test]
    fn check_bit_resilience(data in any::<u64>(), bit in 0u32..8) {
        let check = Hamming7264::encode(data) ^ (1u8 << bit);
        let outcome = Hamming7264::decode(data, check);
        prop_assert_eq!(outcome, DecodeOutcome::Corrected(data));
    }

    /// A remap plan built from any specimen/voltage is injective and lands
    /// only on fault-free words.
    #[test]
    fn remap_plan_sound(seed in any::<u64>(), mv in 880u32..980, pc_index in 0u8..32) {
        let injector = FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            seed,
        );
        let pc = PcIndex::new(pc_index).unwrap();
        let voltage = Millivolts(mv);
        let map = HealthMap::scan(&injector, pc, voltage);
        let plan = map.plan(HbmGeometry::vcu128_reduced());

        let mut seen = std::collections::HashSet::new();
        // Sample the logical space (full walks are covered by unit tests).
        let step = (plan.logical_words() / 64).max(1);
        let mut logical = 0;
        while logical < plan.logical_words() {
            let physical = plan.to_physical(WordOffset(logical)).unwrap();
            prop_assert!(seen.insert(physical.0), "physical reuse at {}", logical);
            let (s0, s1) = injector.stuck_masks(pc, physical, voltage);
            prop_assert!((s0 | s1).is_zero(), "fault in remapped word {}", logical);
            logical += step;
        }
    }
}
