//! Extension experiment: workload access patterns vs sustainable bandwidth
//! and power.
//!
//! Undervolting leaves bandwidth untouched, but what bandwidth a workload
//! *uses* depends on its access pattern. This experiment combines the DRAM
//! access-timing model (sequential / strided / random efficiency) with the
//! power model: patterns that sustain less bandwidth run at lower effective
//! utilization and thus lower absolute power, while the undervolting
//! *factor* stays the same for all of them.

use hbm_device::{AccessPattern, AccessTimingModel, PortId};
use hbm_traffic::{MacroProgram, TrafficGenerator};
use hbm_undervolt::Platform;
use hbm_units::{Millivolts, Ratio};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);
    let timing = AccessTimingModel::vcu128();
    let mut platform = Platform::builder().seed(seed).build();
    let peak = platform.achieved_bandwidth();

    println!("Workload patterns on the study platform (seed {seed})\n");
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>12}",
        "pattern", "efficiency", "sustained BW", "P @ 1.20 V", "P @ 0.98 V"
    );

    let patterns = [
        (
            "sequential",
            AccessPattern::SequentialStream,
            MacroProgram::streaming_reads(0..2048, 1),
        ),
        (
            "strided",
            AccessPattern::StridedSingleWord,
            MacroProgram::strided_reads(0, 256, 32),
        ),
        (
            "random",
            AccessPattern::RandomWord,
            MacroProgram::random_reads(9, 2048, 8192),
        ),
    ];
    let seq_eff = timing.efficiency(AccessPattern::SequentialStream);
    for (name, pattern, program) in patterns {
        // Run the workload's traffic shape through a TG (functional check).
        let port = PortId::new(0).expect("port 0");
        let mut tg = TrafficGenerator::new(port);
        tg.run(&program, &mut platform.port(port)).expect("traffic");

        let eff = timing.efficiency(pattern);
        let sustained = peak * (eff / seq_eff);
        let utilization = Ratio((eff / seq_eff).min(1.0));

        platform.set_voltage(Millivolts(1200)).expect("set voltage");
        let p_nom = platform.measure_power(utilization).expect("measure").power;
        platform.set_voltage(Millivolts(980)).expect("set voltage");
        let p_uv = platform.measure_power(utilization).expect("measure").power;

        println!(
            "{:>12} {:>11.1}% {:>14} {:>12} {:>12}",
            name,
            eff * 100.0,
            format!("{sustained:.0}"),
            format!("{p_nom:.2}"),
            format!("{p_uv:.2}"),
        );
    }
    println!("\nthe undervolting factor (1.5x here) is identical for every pattern;");
    println!("only the absolute watts differ with the sustained bandwidth.");
}
