//! Vendored stand-in for `serde`, scoped to what this workspace uses.
//!
//! The build environment has no reachable crates-io mirror, so this crate
//! provides the subset of serde's surface the workspace relies on: the
//! `Serialize`/`Deserialize` traits (value-tree based rather than
//! visitor based), derive macros re-exported from `serde_derive`, and
//! implementations for the primitive/container types that appear in the
//! workspace's data model.
//!
//! Serialization goes through an ordered [`Value`] tree; `serde_json`
//! renders and parses that tree. Object key order is preserved, so output
//! is deterministic and derive-generated round trips are exact.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An ordered JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type (or when `serde_json` fails to parse text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a field of an object value, mirroring derive-generated access.
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    let entries = value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match the type's shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, found: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", found.kind()))
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    _ => return Err(type_error(stringify!($ty), value)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = u64::from_value(value)?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self);
                if wide < 0 { Value::I64(wide) } else { Value::U64(wide as u64) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match *value {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| Error::custom(format!("{x} out of range for i64")))?,
                    _ => return Err(type_error(stringify!($ty), value)),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for isize")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(type_error("bool", value)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(type_error("f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_error("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| type_error("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| type_error("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| type_error("tuple array", value))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u8, 2u64), (3, 4)];
        assert_eq!(Vec::<(u8, u64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn field_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(field(&obj, "a").unwrap(), &Value::U64(1));
        assert!(field(&obj, "b").is_err());
    }
}
