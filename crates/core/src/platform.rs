//! The simulated VCU128 testbed: device + rail + fault injection + traffic.

use hbm_device::{
    AccessPattern, AccessTimingModel, BandwidthModel, ClockConfig, DeviceError, DramTimings,
    HbmDevice, HbmGeometry, PortId, TimingStretchModel, TransientCrashModel, Word256, WordOffset,
    CRASH_FLOOR,
};
use hbm_faults::{FaultInjector, FaultModelParams, RatePredictor};
use hbm_power::{HbmPowerModel, PowerModelParams};
use hbm_traffic::{MemoryPort, PortProvider};
use hbm_units::{Amperes, Celsius, GigabytesPerSecond, Millivolts, Ratio, Watts};
use hbm_vreg::{HostInterface, PowerRail};
use serde::{Deserialize, Serialize};

use crate::engine::ShardPort;
use crate::error::ExperimentError;

/// One power measurement as the host records it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// The regulator set-point at measurement time.
    pub voltage: Millivolts,
    /// Bandwidth utilization during the measurement.
    pub utilization: Ratio,
    /// Power read from the INA226 (quantized, averaged).
    pub power: Watts,
    /// Current read from the INA226.
    pub current: Amperes,
}

/// Builder for a [`Platform`].
///
/// # Examples
///
/// ```
/// use hbm_device::HbmGeometry;
/// use hbm_undervolt::Platform;
///
/// let platform = Platform::builder()
///     .seed(99)
///     .geometry(HbmGeometry::vcu128_reduced())
///     .build();
/// assert_eq!(platform.seed(), 99);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    seed: u64,
    geometry: HbmGeometry,
    fault_params: FaultModelParams,
    power_params: PowerModelParams,
    clock: ClockConfig,
    temperature: Celsius,
    workers: usize,
    v_crash: Millivolts,
    transient: Option<TransientCrashModel>,
    timings: DramTimings,
    timing_stretch: TimingStretchModel,
}

impl PlatformBuilder {
    /// The device seed: identifies the simulated silicon specimen
    /// (process variation, fault map).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The device geometry. Defaults to the reduced VCU128 geometry
    /// (256 KB per pseudo channel) so exhaustive walks stay fast;
    /// figure-grade fault rates always come from the full-scale analytic
    /// predictor regardless of this setting.
    #[must_use]
    pub fn geometry(mut self, geometry: HbmGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Fault-model parameters (defaults: the study's calibration).
    #[must_use]
    pub fn fault_params(mut self, params: FaultModelParams) -> Self {
        self.fault_params = params;
        self
    }

    /// Power-model parameters (defaults: the study's calibration).
    #[must_use]
    pub fn power_params(mut self, params: PowerModelParams) -> Self {
        self.power_params = params;
        self
    }

    /// Memory clocking (defaults: 900 MHz / 1800 MT/s).
    #[must_use]
    pub fn clock(mut self, clock: ClockConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Operating temperature (defaults: the study's 35 °C).
    #[must_use]
    pub fn temperature(mut self, temperature: Celsius) -> Self {
        self.temperature = temperature;
        self
    }

    /// Number of worker threads the sweep engine may use (default 1 =
    /// sequential). Results are bit-identical for every worker count: the
    /// engine partitions work by pseudo channel into disjoint shards and
    /// all randomness is keyed per work item, so only wall-clock time
    /// changes.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The crash floor `v_crash`: driving the rail below this voltage
    /// crashes the device (default: the study's V_critical, 810 mV).
    #[must_use]
    pub fn v_crash(mut self, v_crash: Millivolts) -> Self {
        self.v_crash = v_crash;
        self
    }

    /// Enables the stochastic transient-failure model: each supply change
    /// landing within `window` above the crash floor crashes the platform
    /// with the given probability (deterministically keyed by seed, voltage
    /// and attempt). Used for fault-injection testing of the resilient
    /// sweep runtime; the default is off.
    #[must_use]
    pub fn transient_crashes(mut self, model: TransientCrashModel) -> Self {
        self.transient = Some(model);
        self
    }

    /// Nominal DRAM core timings (defaults: representative HBM2 values at
    /// the study's 900 MHz clock). These are the *nominal-voltage* values;
    /// the effective timings at the present rail come from the stretch
    /// model (see [`Platform::effective_timings`]).
    #[must_use]
    pub fn timings(mut self, timings: DramTimings) -> Self {
        self.timings = timings;
        self
    }

    /// The voltage→timing stretch model coupling the rail to the DRAM core
    /// timings (defaults: [`TimingStretchModel::date21`]). Pass
    /// [`TimingStretchModel::none`] for the pre-Voltron assumption that
    /// timings are voltage-independent.
    #[must_use]
    pub fn timing_stretch(mut self, stretch: TimingStretchModel) -> Self {
        self.timing_stretch = stretch;
        self
    }

    /// Assembles the platform.
    ///
    /// # Panics
    ///
    /// Panics if the fault or power parameters fail validation.
    #[must_use]
    pub fn build(self) -> Platform {
        let mut injector = FaultInjector::new(self.fault_params.clone(), self.geometry, self.seed);
        injector.set_temperature(self.temperature);
        let mut predictor = RatePredictor::new(self.fault_params.clone(), self.geometry, self.seed);
        predictor.set_temperature(self.temperature);
        let mut full_predictor =
            RatePredictor::new(self.fault_params.clone(), HbmGeometry::vcu128(), self.seed);
        full_predictor.set_temperature(self.temperature);
        let mut rail = PowerRail::vcc_hbm(self.seed);
        rail.set_ambient(self.temperature);
        let mut device = HbmDevice::new(self.geometry);
        device.set_crash_floor(self.v_crash);
        device.set_transient_crashes(self.transient, self.seed);
        Platform {
            device,
            rail,
            injector,
            predictor,
            full_predictor,
            power_model: HbmPowerModel::new(self.power_params),
            bandwidth: BandwidthModel::new(self.geometry, self.clock),
            timing: AccessTimingModel::new(self.geometry, self.clock, self.timings),
            timing_stretch: self.timing_stretch,
            seed: self.seed,
            workers: self.workers,
        }
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder {
            seed: 0,
            geometry: HbmGeometry::vcu128_reduced(),
            fault_params: FaultModelParams::date21(),
            power_params: PowerModelParams::date21(),
            clock: ClockConfig::vcu128(),
            temperature: Celsius::STUDY_AMBIENT,
            workers: 1,
            v_crash: CRASH_FLOOR,
            transient: None,
            timings: DramTimings::hbm2(),
            timing_stretch: TimingStretchModel::date21(),
        }
    }
}

/// The simulated testbed: the HBM device with undervolting fault injection
/// on its AXI read path, the `VCC_HBM` power rail the host controls over
/// PMBus, the power model loading that rail, and analytic predictors for
/// figure-grade fault rates.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::Platform;
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// assert_eq!(platform.voltage(), Millivolts(1200));
///
/// // Crash below V_critical, recover by power cycling.
/// platform.set_voltage(Millivolts(800))?;
/// assert!(platform.is_crashed());
/// platform.power_cycle(Millivolts(1200))?;
/// assert!(!platform.is_crashed());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    device: HbmDevice,
    rail: PowerRail,
    injector: FaultInjector,
    predictor: RatePredictor,
    full_predictor: RatePredictor,
    power_model: HbmPowerModel,
    bandwidth: BandwidthModel,
    timing: AccessTimingModel,
    timing_stretch: TimingStretchModel,
    seed: u64,
    workers: usize,
}

impl Platform {
    /// Starts building a platform.
    #[must_use]
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// The device seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.device.geometry()
    }

    /// Number of pseudo channels (32 on the study platform).
    #[must_use]
    pub fn pseudo_channel_count(&self) -> usize {
        usize::from(self.geometry().total_pcs())
    }

    /// The present rail voltage.
    #[must_use]
    pub fn voltage(&self) -> Millivolts {
        self.rail.voltage()
    }

    /// Commands a new supply voltage through the PMBus regulator and
    /// propagates it to the device (which crashes below V_critical).
    ///
    /// # Errors
    ///
    /// PMBus errors (e.g. above `VOUT_MAX`).
    pub fn set_voltage(&mut self, target: Millivolts) -> Result<(), ExperimentError> {
        HostInterface::new(self.rail.regulator_mut()).set_vout(target)?;
        self.device.set_supply(self.rail.voltage());
        Ok(())
    }

    /// `true` if the device has crashed and needs a power cycle.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.device.is_crashed()
    }

    /// The crash floor: the device crashes whenever the rail drops below
    /// this voltage (see [`PlatformBuilder::v_crash`]).
    #[must_use]
    pub fn v_crash(&self) -> Millivolts {
        self.device.crash_floor()
    }

    /// Number of power cycles this platform has performed.
    #[must_use]
    pub fn power_cycle_count(&self) -> u32 {
        self.device.power_cycle_count()
    }

    /// Power-cycles the board: the rail drives the regulator output off,
    /// back on at `restart` and clears latched faults; the device restarts,
    /// losing all DRAM content. Uninitialized content after the cycle is
    /// re-randomized deterministically from the platform seed (and the
    /// cycle count), modelling the undefined power-up state of real DRAM
    /// without breaking run-to-run reproducibility.
    ///
    /// # Errors
    ///
    /// PMBus errors.
    pub fn power_cycle(&mut self, restart: Millivolts) -> Result<(), ExperimentError> {
        self.rail.power_cycle(restart)?;
        self.device
            .power_cycle_with_seed(self.rail.voltage(), self.seed);
        Ok(())
    }

    /// The device (e.g. for port enable/disable).
    #[must_use]
    pub fn device(&self) -> &HbmDevice {
        &self.device
    }

    /// Mutable device access.
    pub fn device_mut(&mut self) -> &mut HbmDevice {
        &mut self.device
    }

    /// The fault injector (the simulated silicon's fault behaviour).
    #[must_use]
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Analytic rate predictor at the device's own geometry.
    #[must_use]
    pub fn predictor(&self) -> &RatePredictor {
        &self.predictor
    }

    /// Analytic rate predictor at the full-scale 8 GB geometry — what the
    /// figure pipelines use for absolute fault counts.
    #[must_use]
    pub fn full_scale_predictor(&self) -> &RatePredictor {
        &self.full_predictor
    }

    /// The power model.
    #[must_use]
    pub fn power_model(&self) -> &HbmPowerModel {
        &self.power_model
    }

    /// The bandwidth model.
    #[must_use]
    pub fn bandwidth_model(&self) -> &BandwidthModel {
        &self.bandwidth
    }

    /// The access-timing model at *nominal* voltage (the builder's
    /// [`DramTimings`]).
    #[must_use]
    pub fn timing_model(&self) -> &AccessTimingModel {
        &self.timing
    }

    /// The voltage→timing stretch model in effect.
    #[must_use]
    pub fn timing_stretch(&self) -> &TimingStretchModel {
        &self.timing_stretch
    }

    /// The access-timing model at the supply the device currently *sees*
    /// (the drooped rail output, not just the set-point): `set_voltage`
    /// and load-induced droop both move it. A pure function of
    /// `(seed, supply)`, so it is bit-identical across worker counts and
    /// adds no state to the sweep hot path.
    #[must_use]
    pub fn effective_timing_model(&self) -> AccessTimingModel {
        self.timing
            .at_voltage(&self.timing_stretch, self.seed, self.device.supply())
    }

    /// The DRAM core timings at the present supply (stretched below the
    /// knee; see [`TimingStretchModel`]).
    #[must_use]
    pub fn effective_timings(&self) -> DramTimings {
        self.effective_timing_model().timings()
    }

    /// Delivered bandwidth a pattern sustains at the present supply, all
    /// ports running: the raw pin rate derated by the stretched-timing
    /// efficiency estimate. This is the fourth axis of the trade-off —
    /// what undervolting costs in GB/s before it costs a single bit.
    #[must_use]
    pub fn delivered_bandwidth(&self, pattern: AccessPattern) -> GigabytesPerSecond {
        GigabytesPerSecond(self.effective_timing_model().delivered_gbps(pattern))
    }

    /// Latency of one access under a pattern at the present supply, in
    /// nanoseconds (see [`AccessTimingModel::access_latency_ns`]).
    #[must_use]
    pub fn access_latency_ns(&self, pattern: AccessPattern) -> f64 {
        self.effective_timing_model().access_latency_ns(pattern)
    }

    /// Enables exactly the first `n` AXI ports (the study's bandwidth
    /// steps: 0, 8, 16, 24, 32).
    pub fn enable_ports(&mut self, n: usize) {
        self.device.ports_mut().enable_first(n);
    }

    /// Number of enabled AXI ports.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.device.ports().enabled_count()
    }

    /// Present bandwidth utilization implied by the enabled ports.
    #[must_use]
    pub fn utilization(&self) -> Ratio {
        self.bandwidth.utilization(self.enabled_ports())
    }

    /// Achieved bandwidth with the enabled ports running flat out.
    #[must_use]
    pub fn achieved_bandwidth(&self) -> GigabytesPerSecond {
        self.bandwidth.achieved(
            self.enabled_ports(),
            self.device.switch().bandwidth_derate(),
        )
    }

    /// The device-wide union fault fraction at the present voltage
    /// (analytic, device geometry) — the quantity that degrades effective
    /// switched capacitance.
    #[must_use]
    pub fn fault_fraction(&self) -> Ratio {
        self.predictor.device_rate(self.voltage())
    }

    /// Loads the rail with the model's power draw at `utilization` and the
    /// present voltage/fault state, then reads the INA226 the way the
    /// study's host does.
    ///
    /// # Errors
    ///
    /// PMBus errors from the telemetry path.
    pub fn measure_power(&mut self, utilization: Ratio) -> Result<PowerSample, ExperimentError> {
        let load = self
            .power_model
            .power(self.voltage(), utilization, self.fault_fraction());
        self.rail.apply_load(load);
        // With a non-zero load line the output sags under load; the device
        // sees the drooped voltage (ideal regulation by default).
        self.device.set_supply(self.rail.voltage());
        let sample = self.rail.sample()?;
        Ok(PowerSample {
            voltage: sample.requested,
            utilization,
            power: sample.power,
            current: sample.current,
        })
    }

    /// Enables a load-line (droop) resistance on the regulator: the rail
    /// sags by `iout × r` under load, so a heavily loaded device sees less
    /// voltage than commanded — the PDN hazard that undervolting margins
    /// must absorb. The default is ideal regulation (0 Ω), matching the
    /// study's analysis.
    pub fn set_load_line(&mut self, r: hbm_units::Ohms) {
        self.rail.regulator_mut().set_load_line(r);
    }

    /// Changes the operating temperature of the whole testbed: the fault
    /// injector (whose region probability cache this invalidates), both
    /// analytic predictors, and the rail's ambient.
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.injector.set_temperature(temperature);
        self.predictor.set_temperature(temperature);
        self.full_predictor.set_temperature(temperature);
        self.rail.set_ambient(temperature);
    }

    /// Lends fault-injecting access to one AXI port.
    pub fn port(&mut self, port: PortId) -> UndervoltedPort<'_> {
        UndervoltedPort {
            device: &mut self.device,
            injector: &self.injector,
            port,
        }
    }

    /// Number of worker threads the sweep engine may use.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reconfigures the worker count (see [`PlatformBuilder::workers`]).
    #[deprecated(
        since = "0.4.0",
        note = "set the worker count up front via PlatformBuilder::workers or SweepConfig::workers"
    )]
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Splits the device into one fault-injecting [`ShardPort`] per pseudo
    /// channel, in global index order — the parallel engine's disjoint
    /// accesses. All shards borrow the device simultaneously, so they can
    /// be moved onto worker threads.
    ///
    /// # Errors
    ///
    /// Device errors if the device has crashed or the switching network is
    /// enabled (see [`hbm_device::HbmDevice::pc_shards`]).
    pub fn shard_ports(&mut self) -> Result<Vec<ShardPort<'_>>, ExperimentError> {
        let injector = &self.injector;
        let shards = self.device.pc_shards().map_err(ExperimentError::from)?;
        Ok(shards
            .into_iter()
            .map(|shard| ShardPort::new(shard, injector))
            .collect())
    }
}

impl PortProvider for Platform {
    type Port<'a> = UndervoltedPort<'a>;

    fn port(&mut self, id: PortId) -> UndervoltedPort<'_> {
        Platform::port(self, id)
    }
}

/// Fault-injecting AXI port access: writes go straight to the arrays,
/// reads pass through the undervolting fault model at the device's present
/// supply voltage.
#[derive(Debug)]
pub struct UndervoltedPort<'a> {
    device: &'a mut HbmDevice,
    injector: &'a FaultInjector,
    port: PortId,
}

impl MemoryPort for UndervoltedPort<'_> {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.device.axi_write(self.port, offset, word)
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        let stored = self.device.axi_read(self.port, offset)?;
        Ok(self
            .injector
            .observe(stored, self.port.direct_pc(), offset, self.device.supply()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::{DataPattern, MacroProgram, TrafficGenerator};

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn builder_defaults() {
        let p = platform();
        assert_eq!(p.voltage(), Millivolts(1200));
        assert_eq!(p.pseudo_channel_count(), 32);
        assert_eq!(p.enabled_ports(), 32);
        assert_eq!(p.utilization(), Ratio::ONE);
        assert!(!p.is_crashed());
    }

    #[test]
    fn voltage_sweep_through_regulator() {
        let mut p = platform();
        for mv in (810..=1200).rev().step_by(10) {
            p.set_voltage(Millivolts(mv)).unwrap();
            assert_eq!(p.voltage(), Millivolts(mv));
            assert!(!p.is_crashed(), "must not crash at {mv} mV");
        }
    }

    #[test]
    fn crash_and_power_cycle() {
        let mut p = platform();
        p.set_voltage(Millivolts(800)).unwrap();
        assert!(p.is_crashed());
        // Raising the voltage does not recover.
        p.set_voltage(Millivolts(1200)).unwrap();
        assert!(p.is_crashed());
        p.power_cycle(Millivolts(1200)).unwrap();
        assert!(!p.is_crashed());
        assert_eq!(p.voltage(), Millivolts(1200));
    }

    #[test]
    fn port_enablement_controls_bandwidth() {
        let mut p = platform();
        p.enable_ports(8);
        assert_eq!(p.enabled_ports(), 8);
        assert_eq!(p.utilization(), Ratio(0.25));
        assert!((p.achieved_bandwidth().as_f64() - 77.5).abs() < 1e-9);
        p.enable_ports(0);
        assert_eq!(p.achieved_bandwidth(), GigabytesPerSecond::ZERO);
    }

    #[test]
    fn guardband_reads_are_exact() {
        let mut p = platform();
        p.set_voltage(Millivolts(980)).unwrap();
        let port = PortId::new(4).unwrap(); // a sensitive PC, even
        let mut tg = TrafficGenerator::new(port);
        let program = MacroProgram::write_then_check(0..2048, DataPattern::AllOnes);
        let stats = tg.run(&program, &mut Platform::port(&mut p, port)).unwrap();
        assert_eq!(stats.total_flips(), 0);
    }

    #[test]
    fn deep_undervolting_flips_bits() {
        let mut p = platform();
        p.set_voltage(Millivolts(830)).unwrap();
        let port = PortId::new(0).unwrap();
        let mut tg = TrafficGenerator::new(port);
        let program = MacroProgram::write_then_check(0..64, DataPattern::AllOnes);
        let stats = tg.run(&program, &mut Platform::port(&mut p, port)).unwrap();
        // Near-total failure: ~47 % of bits stuck at 0 under all-ones.
        assert!(stats.flips_1to0 > 5000, "flips {:?}", stats);
        assert_eq!(stats.flips_0to1, 0, "all-ones cannot show 0→1 flips");
    }

    #[test]
    fn measured_power_matches_model() {
        let mut p = platform();
        let sample = p.measure_power(Ratio::ONE).unwrap();
        let expected = p
            .power_model()
            .power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
        assert!((sample.power.as_f64() - expected.as_f64()).abs() < 0.05);
        assert_eq!(sample.voltage, Millivolts(1200));
    }

    #[test]
    fn guardband_power_saving_1_5x() {
        let mut p = platform();
        let nominal = p.measure_power(Ratio::ONE).unwrap();
        p.set_voltage(Millivolts(980)).unwrap();
        let guardband = p.measure_power(Ratio::ONE).unwrap();
        let saving = nominal.power / guardband.power;
        assert!((saving - 1.5).abs() < 0.05, "saving {saving}");
    }

    #[test]
    fn deep_power_saving_includes_capacitance_drop() {
        let mut p = platform();
        let nominal = p.measure_power(Ratio::ONE).unwrap();
        p.set_voltage(Millivolts(850)).unwrap();
        let deep = p.measure_power(Ratio::ONE).unwrap();
        let saving = nominal.power / deep.power;
        // Quadratic alone would be ≈2.0×; stuck bits push towards ≈2.3×.
        assert!((2.15..2.5).contains(&saving), "saving {saving}");
    }

    #[test]
    fn fault_fraction_tracks_voltage() {
        let mut p = platform();
        assert_eq!(p.fault_fraction(), Ratio::ZERO);
        p.set_voltage(Millivolts(850)).unwrap();
        let f = p.fault_fraction().as_f64();
        assert!((0.1..0.4).contains(&f), "fraction {f}");
    }

    #[test]
    fn undervolting_stretches_latency_and_sheds_bandwidth() {
        let mut p = platform();
        let lat_nom = p.access_latency_ns(AccessPattern::RandomWord);
        let bw_nom = p.delivered_bandwidth(AccessPattern::SequentialStream);
        p.set_voltage(Millivolts(900)).unwrap();
        let lat_low = p.access_latency_ns(AccessPattern::RandomWord);
        let bw_low = p.delivered_bandwidth(AccessPattern::SequentialStream);
        assert!(lat_low > lat_nom, "latency {lat_nom} !< {lat_low}");
        assert!(bw_low < bw_nom, "bandwidth {bw_low} !< {bw_nom}");
        // Restoring nominal restores nominal timing exactly.
        p.set_voltage(Millivolts(1200)).unwrap();
        assert_eq!(p.effective_timings(), p.timing_model().timings());
    }

    #[test]
    fn timing_stretch_sees_the_drooped_rail_not_the_setpoint() {
        use hbm_units::Ohms;
        let mut p = platform();
        p.set_voltage(Millivolts(1000)).unwrap();
        let undrooped = p.access_latency_ns(AccessPattern::RandomWord);
        p.set_load_line(Ohms(0.004));
        p.measure_power(Ratio::ONE).unwrap();
        // Same set-point, sagged rail: effective timing must be slower.
        assert!(p.access_latency_ns(AccessPattern::RandomWord) > undrooped);
    }

    #[test]
    fn stretch_free_builds_are_voltage_blind() {
        let mut p = Platform::builder()
            .seed(7)
            .timing_stretch(TimingStretchModel::none())
            .build();
        let nominal = p.effective_timings();
        p.set_voltage(Millivolts(850)).unwrap();
        assert_eq!(p.effective_timings(), nominal);
    }

    #[test]
    fn load_line_droop_reaches_the_device() {
        use hbm_units::Ohms;
        let mut p = platform();
        p.set_load_line(Ohms(0.004));
        p.set_voltage(Millivolts(1000)).unwrap();
        // Measuring at full load draws ~4.3 W → ~4.3 A → ~17 mV droop.
        p.measure_power(Ratio::ONE).unwrap();
        let sagged = p.voltage();
        assert!(sagged < Millivolts(1000), "output must sag: {sagged}");
        assert!(
            sagged > Millivolts(960),
            "droop magnitude plausible: {sagged}"
        );
        // Dropping the load restores the output.
        p.measure_power(Ratio::ZERO).unwrap();
        assert!(p.voltage() > sagged);
    }

    #[test]
    fn droop_can_crash_a_marginal_setpoint() {
        use hbm_units::Ohms;
        let mut p = platform();
        p.set_load_line(Ohms(0.010));
        // 0.82 V commanded is above the crash floor …
        p.set_voltage(Millivolts(820)).unwrap();
        assert!(!p.is_crashed());
        // … but a heavy load transient droops the rail below 0.81 V.
        p.measure_power(Ratio::ONE).unwrap();
        assert!(p.is_crashed(), "load transient must crash the device");
    }

    #[test]
    fn temperature_change_reaches_the_injector_cache() {
        use hbm_device::PcIndex;
        use hbm_faults::{FaultFieldMode, KernelBackend, MaskKernel};
        let mut p = platform();
        p.set_voltage(Millivolts(880)).unwrap();
        let pc = PcIndex::new(0).unwrap();
        let count = |p: &Platform| {
            p.injector()
                .kernel(FaultFieldMode::PerVoltage, KernelBackend::Auto)
                .count_range(pc, 0..512, Millivolts(880))
        };
        // Warm the injector's region probability cache at ambient …
        let cold = count(&p);
        // … then heat the testbed: the cache must be invalidated, so the
        // same query now reflects the new temperature shift.
        p.set_temperature(Celsius(55.0));
        let hot = count(&p);
        assert_ne!(hot, cold, "temperature change must alter fault counts");
    }

    #[test]
    fn power_cycle_loses_content_to_a_seeded_background() {
        let mut p = platform();
        let port = PortId::new(1).unwrap();
        {
            let mut access = Platform::port(&mut p, port);
            access.write(WordOffset(0), Word256::ONES).unwrap();
        }
        p.power_cycle(Millivolts(1200)).unwrap();
        assert_eq!(p.power_cycle_count(), 1);
        // The written word is gone; what remains is the deterministic
        // power-up noise derived from the platform seed, not all-zeros.
        let pc = port.direct_pc();
        let background = p.device().pseudo_channel(pc).array().background();
        assert_ne!(background, Word256::ONES);
        assert_ne!(background, Word256::ZERO);
        let mut access = Platform::port(&mut p, port);
        assert_eq!(access.read(WordOffset(0)).unwrap(), background);

        // The same seed reproduces the same power-up state.
        let mut q = platform();
        q.power_cycle(Millivolts(1200)).unwrap();
        assert_eq!(
            q.device().pseudo_channel(pc).array().background(),
            background
        );
    }

    #[test]
    fn configurable_crash_floor_and_transient_injection() {
        let mut p = Platform::builder().seed(7).v_crash(Millivolts(900)).build();
        assert_eq!(p.v_crash(), Millivolts(900));
        p.set_voltage(Millivolts(890)).unwrap();
        assert!(p.is_crashed(), "must crash below the raised floor");
        p.power_cycle(Millivolts(1200)).unwrap();
        assert!(!p.is_crashed());

        // A certain transient (probability 1) within the window crashes the
        // platform even though the voltage is above the crash floor.
        let mut t = Platform::builder()
            .seed(7)
            .transient_crashes(TransientCrashModel::new(1.0, Millivolts(50)))
            .build();
        t.set_voltage(Millivolts(840)).unwrap();
        assert!(t.is_crashed(), "certain transient must fire in the window");
        t.power_cycle(Millivolts(1200)).unwrap();
        assert!(!t.is_crashed());
        // Outside the window the same platform is stable.
        t.set_voltage(Millivolts(1000)).unwrap();
        assert!(!t.is_crashed());
    }
}
