//! Criterion bench for the Fig. 4 pipeline: per-stack faulty-fraction
//! series over the full sweep at the full-scale geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use hbm_undervolt::{characterization::stack_fraction_series, Platform, VoltageSweep};
use hbm_units::Millivolts;

fn bench_fig4(c: &mut Criterion) {
    let platform = Platform::builder().seed(7).build();
    let sweep =
        VoltageSweep::new(Millivolts(980), Millivolts(810), Millivolts(10)).expect("sweep valid");

    let mut group = c.benchmark_group("fig4_stack_fractions");
    group.sample_size(20);
    group.bench_function("full_scale_series", |b| {
        b.iter(|| {
            std::hint::black_box(stack_fraction_series(
                platform.full_scale_predictor(),
                sweep,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
