//! Power characterization: reruns the paper's Fig. 2 / Fig. 3 experiment —
//! power vs voltage at several bandwidth utilizations, plus the effective
//! switched-capacitance analysis — and prints both tables.
//!
//! Run with: `cargo run --release --example power_characterization`

use hbm_undervolt_suite::power::PowerAnalysis;
use hbm_undervolt_suite::undervolt::report::Render;
use hbm_undervolt_suite::undervolt::{AcfTable, Experiment, Platform, PowerSweep};
use hbm_units::Millivolts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::builder().seed(7).build();
    let sweep = PowerSweep::date21();
    let report = Experiment::run(&sweep, &mut platform)?;

    println!("Normalized power (Fig. 2 reproduction):\n");
    print!("{}", report.to_text());

    println!("\nNormalized effective a*C_L*f (Fig. 3 reproduction):\n");
    print!("{}", AcfTable(&report).to_text());

    // The quantitative takeaways the paper highlights:
    let s98 = report.saving(Millivolts(980), 32).expect("0.98 V swept");
    let s85 = report.saving(Millivolts(850), 32).expect("0.85 V swept");
    let idle = report.idle_fraction(Millivolts(1200)).expect("idle swept");
    let acf = report.acf_series(32);
    let flat = PowerAnalysis::max_deviation_above(&acf, Millivolts(980));
    let drop = 1.0
        - PowerAnalysis::normalized_at(&acf, Millivolts(850))
            .expect("0.85 V swept")
            .as_f64();

    println!("\nguardband saving:      {s98:.2}x  (paper: 1.5x)");
    println!("saving at 0.85 V:      {s85:.2}x  (paper: 2.3x)");
    println!("idle / full-load:      {idle:.2}   (paper: ~1/3)");
    println!(
        "guardband acf flatness: {:.1}%  (paper: <=3%)",
        flat * 100.0
    );
    println!("acf drop at 0.85 V:    {:.1}%  (paper: 14%)", drop * 100.0);
    Ok(())
}
