//! The columnar fleet artifact: a little-endian binary replacing JSON as
//! the at-scale result store, with JSON kept as an export path.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset  field
//!      0  magic            [u8; 4]  = "HBFA"
//!      4  version          u32      = 1 or 2
//!      8  device_count     u32
//!     12  pc_count         u32
//!     16  knot_count       u32
//!     20  nominal_mv       u16
//!     22  weak_reference_mv u16
//!     24  base_seed        u64
//!     32  words_per_pc     u64
//!     40  crash_jitter_mv  u16
//!     42  reserved         u16      = 0
//!     44  column_count     u32      (v1: always 6; v2: varies)
//!     48  weak_rate_threshold f64   (IEEE-754 bits)
//!     56  index_offset     u64      (byte offset of the column index)
//!     64  knot table       u16 × knot_count   (mV, descending)
//!      …  column index     column_count × { tag u32, elem_bytes u32,
//!                                           offset u64, byte_len u64 }
//!      …  columns, each 8-byte aligned
//! ```
//!
//! Columns (fixed element widths, one element per device unless noted):
//!
//! | tag | name      | element | notes                                   |
//! |-----|-----------|---------|-----------------------------------------|
//! | 1   | DEVICE_ID | u32     | ascending                               |
//! | 2   | SEED      | u64     | per-device fault-universe seed          |
//! | 3   | V_MIN_MV  | u16     | 0 = no fault-free knot observed         |
//! | 4   | CRASH_MV  | u16     | per-device crash floor                  |
//! | 5   | WEAK_PCS  | u32     | weak-PC bitmap                          |
//! | 6   | FAULTS    | u16     | device × pc × knot counts, 0xFFFF = crashed |
//! | 7   | MODEL     | 8 + pc  | per-device compressed parametric model (v2) |
//!
//! # v2 layout delta
//!
//! Version 2 keeps the v1 header, knot table and index machinery
//! byte-for-byte and relaxes only the column-set rule: the scalar columns
//! (tags 1–5) stay mandatory, while FAULTS becomes *optional* and the new
//! MODEL column (tag 7, [`crate::model::DeviceModel`] blobs) may take its
//! place. At least one of FAULTS/MODEL must be present. A v2 artifact that
//! carries the exact columns is bit-identical to its v1 counterpart except
//! for the version word, which the roundtrip proptests pin.
//!
//! The column index lets a reader seek straight to any column without
//! parsing records, and [`FleetStore::column_bytes`] exposes each column
//! as a zero-copy `&[u8]` view over the loaded (or mmapped) buffer. Reads
//! of the FAULTS column are counted ([`FleetStore::exact_column_reads`])
//! so serving layers can prove compressed queries never touched the exact
//! map.

use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::config::{FleetConfig, FleetError};
use crate::model::DeviceModel;
use crate::record::{DeviceRecord, CRASHED_KNOT};

/// Artifact magic bytes.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"HBFA";

/// Format version this build writes: v2, the compressed-model revision.
pub const ARTIFACT_VERSION: u32 = 2;

/// The pre-compression format this build still reads: exactly the six
/// fixed columns, exact counts mandatory.
pub const ARTIFACT_VERSION_V1: u32 = 1;

const HEADER_LEN: usize = 64;
const INDEX_ENTRY_LEN: usize = 24;
/// Number of known column tags (the maximum a v2 artifact may carry).
const TAG_COUNT: usize = 7;
/// The fixed v1 column set: the five scalars plus exact counts.
const V1_COLUMN_COUNT: usize = 6;

/// Column tags, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Column {
    /// Device IDs, ascending.
    DeviceId = 1,
    /// Per-device seeds.
    Seed = 2,
    /// Per-device V_min in millivolts.
    VMin = 3,
    /// Per-device crash floors in millivolts.
    Crash = 4,
    /// Per-device weak-PC bitmaps.
    WeakPcs = 5,
    /// Fault-count matrix, device-major then PC-major.
    Faults = 6,
    /// Compressed per-device parametric models (v2 only).
    Model = 7,
}

impl Column {
    fn from_tag(tag: u32) -> Option<Column> {
        match tag {
            1 => Some(Column::DeviceId),
            2 => Some(Column::Seed),
            3 => Some(Column::VMin),
            4 => Some(Column::Crash),
            5 => Some(Column::WeakPcs),
            6 => Some(Column::Faults),
            7 => Some(Column::Model),
            _ => None,
        }
    }
}

/// The five mandatory scalar columns and their element widths.
const SCALAR_COLUMNS: [(Column, usize); 5] = [
    (Column::DeviceId, 4),
    (Column::Seed, 8),
    (Column::VMin, 2),
    (Column::Crash, 2),
    (Column::WeakPcs, 4),
];

/// One column headed for the generic writer: tag, element width, payload.
pub(crate) struct RawColumn {
    pub(crate) tag: Column,
    pub(crate) elem: usize,
    pub(crate) data: Vec<u8>,
}

/// Everything the header records about a fleet run — enough to interpret
/// and re-derive the fleet without the originating [`FleetConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Format version.
    pub version: u32,
    /// Devices in the artifact.
    pub device_count: u32,
    /// Pseudo channels per device.
    pub pc_count: u32,
    /// Knots per fault-rate curve.
    pub knot_count: u32,
    /// Nominal supply the guardband is measured against.
    pub nominal_mv: u16,
    /// Weak-PC reference knot.
    pub weak_reference_mv: u16,
    /// Base seed of the fleet.
    pub base_seed: u64,
    /// Words sampled per pseudo channel (the rate denominator is
    /// `words_per_pc × 256`).
    pub words_per_pc: u64,
    /// Crash-floor jitter half-width.
    pub crash_jitter_mv: u16,
    /// Weak-PC rate threshold.
    pub weak_rate_threshold: f64,
}

impl ArtifactMeta {
    /// Meta block for a run of `cfg`.
    #[must_use]
    pub fn from_config(cfg: &FleetConfig) -> ArtifactMeta {
        ArtifactMeta {
            version: ARTIFACT_VERSION,
            device_count: cfg.devices,
            pc_count: u32::from(cfg.geometry.total_pcs()),
            knot_count: cfg.knots().len() as u32,
            nominal_mv: cfg.nominal.as_u32() as u16,
            weak_reference_mv: cfg.weak_reference.as_u32() as u16,
            base_seed: cfg.base_seed,
            words_per_pc: cfg.words_per_pc,
            crash_jitter_mv: cfg.crash_jitter.as_u32() as u16,
            weak_rate_threshold: cfg.weak_rate_threshold,
        }
    }

    /// Bits checked per pseudo channel per knot.
    #[must_use]
    pub fn bits_per_pc(&self) -> u64 {
        self.words_per_pc * 256
    }
}

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// The generic column writer both format versions share: header, knot
/// table, index, then each column 8-byte aligned, in the order given.
pub(crate) fn write_artifact(
    meta: &ArtifactMeta,
    knots: &[Millivolts],
    version: u32,
    columns: &[RawColumn],
) -> Vec<u8> {
    assert_eq!(knots.len(), meta.knot_count as usize, "knot table shape");
    let knot_table_len = knots.len() * 2;
    let index_offset = align8(HEADER_LEN + knot_table_len);
    let mut column_offsets = Vec::with_capacity(columns.len());
    let mut cursor = align8(index_offset + columns.len() * INDEX_ENTRY_LEN);
    for col in columns {
        assert_eq!(col.data.len() % col.elem.max(1), 0, "ragged column");
        column_offsets.push(cursor);
        cursor = align8(cursor + col.data.len());
    }

    let mut out = vec![0u8; cursor];
    out[0..4].copy_from_slice(&ARTIFACT_MAGIC);
    out[4..8].copy_from_slice(&version.to_le_bytes());
    out[8..12].copy_from_slice(&meta.device_count.to_le_bytes());
    out[12..16].copy_from_slice(&meta.pc_count.to_le_bytes());
    out[16..20].copy_from_slice(&meta.knot_count.to_le_bytes());
    out[20..22].copy_from_slice(&meta.nominal_mv.to_le_bytes());
    out[22..24].copy_from_slice(&meta.weak_reference_mv.to_le_bytes());
    out[24..32].copy_from_slice(&meta.base_seed.to_le_bytes());
    out[32..40].copy_from_slice(&meta.words_per_pc.to_le_bytes());
    out[40..42].copy_from_slice(&meta.crash_jitter_mv.to_le_bytes());
    out[44..48].copy_from_slice(&(columns.len() as u32).to_le_bytes());
    out[48..56].copy_from_slice(&meta.weak_rate_threshold.to_bits().to_le_bytes());
    out[56..64].copy_from_slice(&(index_offset as u64).to_le_bytes());

    for (k, knot) in knots.iter().enumerate() {
        let at = HEADER_LEN + k * 2;
        out[at..at + 2].copy_from_slice(&(knot.as_u32() as u16).to_le_bytes());
    }

    for (slot, col) in columns.iter().enumerate() {
        let at = index_offset + slot * INDEX_ENTRY_LEN;
        out[at..at + 4].copy_from_slice(&(col.tag as u32).to_le_bytes());
        out[at + 4..at + 8].copy_from_slice(&(col.elem as u32).to_le_bytes());
        out[at + 8..at + 16].copy_from_slice(&(column_offsets[slot] as u64).to_le_bytes());
        out[at + 16..at + 24].copy_from_slice(&(col.data.len() as u64).to_le_bytes());
        out[column_offsets[slot]..column_offsets[slot] + col.data.len()].copy_from_slice(&col.data);
    }
    out
}

/// Builds the six exact columns (five scalars + FAULTS) from records.
fn exact_columns(meta: &ArtifactMeta, records: &[DeviceRecord]) -> Vec<RawColumn> {
    let n = records.len();
    let stride = meta.pc_count as usize * meta.knot_count as usize;
    let mut columns: Vec<RawColumn> = SCALAR_COLUMNS
        .iter()
        .map(|&(tag, elem)| RawColumn {
            tag,
            elem,
            data: Vec::with_capacity(n * elem),
        })
        .collect();
    let mut faults = Vec::with_capacity(n * stride * 2);
    for rec in records {
        assert_eq!(rec.faults.len(), stride, "record matrix shape");
        columns[0]
            .data
            .extend_from_slice(&rec.device_id.to_le_bytes());
        columns[1].data.extend_from_slice(&rec.seed.to_le_bytes());
        columns[2]
            .data
            .extend_from_slice(&rec.v_min_mv.to_le_bytes());
        columns[3]
            .data
            .extend_from_slice(&rec.crash_mv.to_le_bytes());
        columns[4]
            .data
            .extend_from_slice(&rec.weak_pcs.to_le_bytes());
        for count in &rec.faults {
            faults.extend_from_slice(&count.to_le_bytes());
        }
    }
    columns.push(RawColumn {
        tag: Column::Faults,
        elem: 2,
        data: faults,
    });
    columns
}

/// Encodes a finished fleet into the columnar binary format (v2, exact
/// columns only — [`crate::model::compress_store`] derives the compressed
/// form).
///
/// # Panics
///
/// Panics when a record's matrix shape disagrees with the config — encode
/// only ever sees records the sweep engine produced.
#[must_use]
pub fn encode(cfg: &FleetConfig, records: &[DeviceRecord]) -> Vec<u8> {
    let meta = ArtifactMeta::from_config(cfg);
    assert_eq!(records.len(), meta.device_count as usize, "fleet size");
    write_artifact(
        &meta,
        &cfg.knots(),
        ARTIFACT_VERSION,
        &exact_columns(&meta, records),
    )
}

/// Encodes the fleet in the legacy v1 layout. Kept so the format-evolution
/// gate can prove a v2 artifact with exact columns is bit-identical to
/// what v1 readers decoded — and so archived v1 fixtures can be
/// regenerated.
#[must_use]
pub fn encode_legacy_v1(cfg: &FleetConfig, records: &[DeviceRecord]) -> Vec<u8> {
    let meta = ArtifactMeta::from_config(cfg);
    assert_eq!(records.len(), meta.device_count as usize, "fleet size");
    write_artifact(
        &meta,
        &cfg.knots(),
        ARTIFACT_VERSION_V1,
        &exact_columns(&meta, records),
    )
}

/// Encodes and durably writes an artifact, returning the byte count.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the write fails.
pub fn write_to_path(
    path: impl AsRef<Path>,
    cfg: &FleetConfig,
    records: &[DeviceRecord],
) -> Result<u64, FleetError> {
    let bytes = encode(cfg, records);
    std::fs::write(path.as_ref(), &bytes)
        .map_err(|e| FleetError::Io(format!("{}: {e}", path.as_ref().display())))?;
    Ok(bytes.len() as u64)
}

/// A loaded artifact: owns the raw buffer and serves zero-copy column
/// views plus typed per-device accessors that decode on read.
///
/// Reads of the exact FAULTS column are counted so serving layers can
/// verify compressed queries never touched the exact map; the counter is
/// observational only and never part of equality or persisted state.
#[derive(Debug)]
pub struct FleetStore {
    bytes: Vec<u8>,
    meta: ArtifactMeta,
    knots: Vec<Millivolts>,
    /// Column byte ranges, indexed by `tag - 1`; `None` when absent.
    columns: [Option<Range<usize>>; TAG_COUNT],
    exact_reads: AtomicU64,
}

impl Clone for FleetStore {
    fn clone(&self) -> FleetStore {
        FleetStore {
            bytes: self.bytes.clone(),
            meta: self.meta,
            knots: self.knots.clone(),
            columns: self.columns.clone(),
            exact_reads: AtomicU64::new(self.exact_reads.load(Ordering::Relaxed)),
        }
    }
}

impl FleetStore {
    /// Parses an artifact buffer (typically `fs::read` or an mmap copy).
    ///
    /// Accepts both format versions: v1 requires exactly the six fixed
    /// columns; v2 requires the five scalars and at least one of
    /// FAULTS/MODEL.
    ///
    /// # Errors
    ///
    /// [`FleetError::Artifact`] for truncation, bad magic or inconsistent
    /// bounds; [`FleetError::Version`] for an unsupported format version.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<FleetStore, FleetError> {
        if bytes.len() < HEADER_LEN {
            return Err(FleetError::Artifact(format!(
                "truncated header: {} bytes",
                bytes.len()
            )));
        }
        if bytes[0..4] != ARTIFACT_MAGIC {
            return Err(FleetError::Artifact("bad magic (not an HBFA file)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("len checked"));
        if version != ARTIFACT_VERSION && version != ARTIFACT_VERSION_V1 {
            return Err(FleetError::Version {
                found: version,
                expected: ARTIFACT_VERSION,
            });
        }
        let read_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let read_u16 = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let meta = ArtifactMeta {
            version,
            device_count: read_u32(8),
            pc_count: read_u32(12),
            knot_count: read_u32(16),
            nominal_mv: read_u16(20),
            weak_reference_mv: read_u16(22),
            base_seed: read_u64(24),
            words_per_pc: read_u64(32),
            crash_jitter_mv: read_u16(40),
            weak_rate_threshold: f64::from_bits(read_u64(48)),
        };
        let column_count = read_u32(44) as usize;
        if version == ARTIFACT_VERSION_V1 && column_count != V1_COLUMN_COUNT {
            return Err(FleetError::Artifact(format!(
                "v1 requires {V1_COLUMN_COUNT} columns, header lists {column_count}"
            )));
        }
        if column_count == 0 || column_count > TAG_COUNT {
            return Err(FleetError::Artifact(format!(
                "column count {column_count} outside 1..={TAG_COUNT}"
            )));
        }
        let knot_table_end = HEADER_LEN + meta.knot_count as usize * 2;
        let index_offset = read_u64(56) as usize;
        let index_end = index_offset + column_count * INDEX_ENTRY_LEN;
        if knot_table_end > bytes.len() || index_offset < knot_table_end || index_end > bytes.len()
        {
            return Err(FleetError::Artifact("column index out of bounds".into()));
        }
        let knots: Vec<Millivolts> = (0..meta.knot_count as usize)
            .map(|k| Millivolts(u32::from(read_u16(HEADER_LEN + k * 2))))
            .collect();

        let n = meta.device_count as usize;
        let cells = n * meta.pc_count as usize * meta.knot_count as usize;
        let mut columns: [Option<Range<usize>>; TAG_COUNT] = std::array::from_fn(|_| None);
        for slot in 0..column_count {
            let at = index_offset + slot * INDEX_ENTRY_LEN;
            let found_tag = read_u32(at);
            let found_elem = read_u32(at + 4) as usize;
            let offset = read_u64(at + 8) as usize;
            let len = read_u64(at + 16) as usize;
            let Some(tag) = Column::from_tag(found_tag) else {
                return Err(FleetError::Artifact(format!(
                    "column {slot}: unknown tag {found_tag}"
                )));
            };
            let (elem, elems) = match tag {
                Column::Faults => (2, cells),
                Column::Model => (DeviceModel::elem_bytes(meta.pc_count as usize), n),
                _ => {
                    let (_, elem) = SCALAR_COLUMNS
                        .iter()
                        .find(|(t, _)| *t == tag)
                        .expect("scalar tag");
                    (*elem, n)
                }
            };
            if found_elem != elem || len != elems * elem {
                return Err(FleetError::Artifact(format!(
                    "column {slot}: tag {found_tag} elem {found_elem} len {len} \
                     does not match the declared fleet shape"
                )));
            }
            let end = offset.checked_add(len).filter(|&e| e <= bytes.len());
            let Some(end) = end else {
                return Err(FleetError::Artifact(format!(
                    "column {slot} extends past the buffer"
                )));
            };
            let slot_index = found_tag as usize - 1;
            if columns[slot_index].is_some() {
                return Err(FleetError::Artifact(format!(
                    "column tag {found_tag} listed twice"
                )));
            }
            columns[slot_index] = Some(offset..end);
        }
        for (tag, _) in SCALAR_COLUMNS {
            if columns[tag as usize - 1].is_none() {
                return Err(FleetError::Artifact(format!(
                    "mandatory scalar column {} missing",
                    tag as u32
                )));
            }
        }
        if version == ARTIFACT_VERSION_V1 && columns[Column::Faults as usize - 1].is_none() {
            return Err(FleetError::Artifact("v1 requires the FAULTS column".into()));
        }
        if columns[Column::Faults as usize - 1].is_none()
            && columns[Column::Model as usize - 1].is_none()
        {
            return Err(FleetError::Artifact(
                "artifact carries neither exact counts nor compressed models".into(),
            ));
        }
        Ok(FleetStore {
            bytes,
            meta,
            knots,
            columns,
            exact_reads: AtomicU64::new(0),
        })
    }

    /// Loads an artifact file.
    ///
    /// # Errors
    ///
    /// [`FleetError::Io`] when the file cannot be read, otherwise as
    /// [`FleetStore::from_bytes`].
    pub fn open(path: impl AsRef<Path>) -> Result<FleetStore, FleetError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| FleetError::Io(format!("{}: {e}", path.as_ref().display())))?;
        FleetStore::from_bytes(bytes)
    }

    /// The header meta block.
    #[must_use]
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The knot grid, descending.
    #[must_use]
    pub fn knots(&self) -> &[Millivolts] {
        &self.knots
    }

    /// Devices stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.meta.device_count as usize
    }

    /// `true` when the artifact holds no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of the loaded artifact in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the artifact carries `column`.
    #[must_use]
    pub fn has_column(&self, column: Column) -> bool {
        self.columns[column as usize - 1].is_some()
    }

    /// `true` when the exact FAULTS column is present.
    #[must_use]
    pub fn has_exact_counts(&self) -> bool {
        self.has_column(Column::Faults)
    }

    /// `true` when the compressed MODEL column is present.
    #[must_use]
    pub fn has_model(&self) -> bool {
        self.has_column(Column::Model)
    }

    /// Number of reads served from the exact FAULTS column since this
    /// store was loaded (observational; a clone starts from the current
    /// value). The compressed-serving happy path keeps this at zero.
    #[must_use]
    pub fn exact_column_reads(&self) -> u64 {
        self.exact_reads.load(Ordering::Relaxed)
    }

    /// Zero-copy view of one column's raw little-endian bytes.
    ///
    /// Requesting the FAULTS column counts as an exact-column read.
    ///
    /// # Panics
    ///
    /// Panics when the column is absent (possible only for FAULTS/MODEL on
    /// v2 artifacts) — gate on [`FleetStore::has_column`] first.
    #[must_use]
    pub fn column_bytes(&self, column: Column) -> &[u8] {
        if column == Column::Faults {
            self.exact_reads.fetch_add(1, Ordering::Relaxed);
        }
        let range = self.columns[column as usize - 1]
            .clone()
            .unwrap_or_else(|| panic!("column tag {} absent from artifact", column as u32));
        &self.bytes[range]
    }

    fn scalar<const W: usize>(&self, column: Column, i: usize) -> [u8; W] {
        let col = self.column_bytes(column);
        col[i * W..(i + 1) * W].try_into().expect("fixed width")
    }

    /// Device ID at row `i`.
    #[must_use]
    pub fn device_id(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.scalar::<4>(Column::DeviceId, i))
    }

    /// Seed at row `i`.
    #[must_use]
    pub fn seed(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.scalar::<8>(Column::Seed, i))
    }

    /// V_min at row `i` in millivolts (0 = none observed).
    #[must_use]
    pub fn v_min_mv(&self, i: usize) -> u16 {
        u16::from_le_bytes(self.scalar::<2>(Column::VMin, i))
    }

    /// Crash floor at row `i` in millivolts.
    #[must_use]
    pub fn crash_mv(&self, i: usize) -> u16 {
        u16::from_le_bytes(self.scalar::<2>(Column::Crash, i))
    }

    /// Weak-PC bitmap at row `i`.
    #[must_use]
    pub fn weak_pcs(&self, i: usize) -> u32 {
        u32::from_le_bytes(self.scalar::<4>(Column::WeakPcs, i))
    }

    /// Decodes row `i`'s compressed parametric model, `None` when the
    /// artifact carries no MODEL column.
    #[must_use]
    pub fn model(&self, i: usize) -> Option<DeviceModel> {
        let range = self.columns[Column::Model as usize - 1].clone()?;
        let elem = DeviceModel::elem_bytes(self.meta.pc_count as usize);
        let col = &self.bytes[range];
        Some(DeviceModel::decode(
            &col[i * elem..(i + 1) * elem],
            self.meta.pc_count as usize,
        ))
    }

    /// Size of the MODEL column in bytes (0 when absent) — the
    /// `model_bytes` telemetry gauge.
    #[must_use]
    pub fn model_bytes(&self) -> u64 {
        self.columns[Column::Model as usize - 1]
            .clone()
            .map_or(0, |r| r.len() as u64)
    }

    /// Fault count of `(row, pc, knot)`; [`CRASHED_KNOT`] marks a crashed
    /// knot. Counts as an exact-column read.
    ///
    /// # Panics
    ///
    /// Panics when the FAULTS column is absent.
    #[must_use]
    pub fn fault(&self, i: usize, pc: usize, knot: usize) -> u16 {
        let stride = self.meta.pc_count as usize * self.meta.knot_count as usize;
        let at = i * stride + pc * self.meta.knot_count as usize + knot;
        let col = self.column_bytes(Column::Faults);
        u16::from_le_bytes(col[at * 2..at * 2 + 2].try_into().expect("fixed width"))
    }

    /// Row index of `device_id` (rows are sorted by device ID).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when absent.
    pub fn find(&self, device_id: u32) -> Result<usize, FleetError> {
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.device_id(mid) < device_id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < n && self.device_id(lo) == device_id {
            Ok(lo)
        } else {
            Err(FleetError::UnknownDevice(device_id))
        }
    }

    /// Decodes row `i` back into a [`DeviceRecord`]. Counts as an
    /// exact-column read.
    ///
    /// # Panics
    ///
    /// Panics when the FAULTS column is absent.
    #[must_use]
    pub fn record(&self, i: usize) -> DeviceRecord {
        let stride = self.meta.pc_count as usize * self.meta.knot_count as usize;
        let col = self.column_bytes(Column::Faults);
        let faults = (0..stride)
            .map(|j| {
                let at = (i * stride + j) * 2;
                u16::from_le_bytes(col[at..at + 2].try_into().expect("fixed width"))
            })
            .collect();
        DeviceRecord {
            device_id: self.device_id(i),
            seed: self.seed(i),
            v_min_mv: self.v_min_mv(i),
            crash_mv: self.crash_mv(i),
            weak_pcs: self.weak_pcs(i),
            faults,
        }
    }

    /// Decodes every row.
    ///
    /// # Panics
    ///
    /// Panics when the FAULTS column is absent.
    #[must_use]
    pub fn records(&self) -> Vec<DeviceRecord> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// The JSON export view of this artifact.
    ///
    /// # Panics
    ///
    /// Panics when the FAULTS column is absent — the export documents
    /// exact rates.
    #[must_use]
    pub fn export(&self) -> FleetExport {
        FleetExport::build(&self.meta, &self.knots, &self.records())
    }
}

/// The JSON export: the artifact's full content as rates (exact dyadic
/// `count / (words_per_pc × 256)` quotients), with `null` marking crashed
/// knots. Kept as the interchange path; the binary is the at-scale store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetExport {
    /// Header fields, echoed.
    pub meta: ArtifactMeta,
    /// Knot grid in millivolts, descending.
    pub knots_mv: Vec<u16>,
    /// Per-device export rows, ascending by device ID.
    pub fleet: Vec<DeviceExport>,
}

/// One device's JSON export row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceExport {
    /// Fleet position.
    pub device_id: u32,
    /// Fault-universe seed.
    pub seed: u64,
    /// Lowest fault-free knot (0 = none).
    pub v_min_mv: u16,
    /// Crash floor.
    pub crash_mv: u16,
    /// Weak-PC bitmap.
    pub weak_pcs: u32,
    /// Union fault-rate curve per pseudo channel; `null` = crashed knot.
    pub rates: Vec<Vec<Option<f64>>>,
}

impl FleetExport {
    /// Builds the export view of `records` under `cfg`.
    #[must_use]
    pub fn from_records(cfg: &FleetConfig, records: &[DeviceRecord]) -> FleetExport {
        let knots = cfg.knots();
        FleetExport::build(&ArtifactMeta::from_config(cfg), &knots, records)
    }

    fn build(meta: &ArtifactMeta, knots: &[Millivolts], records: &[DeviceRecord]) -> FleetExport {
        let bits = meta.bits_per_pc() as f64;
        let fleet = records
            .iter()
            .map(|rec| {
                let rates = (0..meta.pc_count as usize)
                    .map(|pc| {
                        (0..knots.len())
                            .map(|k| {
                                let count = rec.faults[pc * knots.len() + k];
                                if count == CRASHED_KNOT {
                                    None
                                } else {
                                    Some(f64::from(count) / bits)
                                }
                            })
                            .collect()
                    })
                    .collect();
                DeviceExport {
                    device_id: rec.device_id,
                    seed: rec.seed,
                    v_min_mv: rec.v_min_mv,
                    crash_mv: rec.crash_mv,
                    weak_pcs: rec.weak_pcs,
                    rates,
                }
            })
            .collect();
        FleetExport {
            meta: *meta,
            knots_mv: knots.iter().map(|k| k.as_u32() as u16).collect(),
            fleet,
        }
    }

    /// Serializes the export as one JSON document plus trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string(self).expect("export serializes");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep;

    fn artifact_fixture() -> (FleetConfig, Vec<DeviceRecord>) {
        let cfg = FleetConfig {
            devices: 3,
            workers: 1,
            words_per_pc: 8,
            from: Millivolts(980),
            down_to: Millivolts(900),
            step: Millivolts(40),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        (cfg, records)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (cfg, records) = artifact_fixture();
        let bytes = encode(&cfg, &records);
        let store = FleetStore::from_bytes(bytes).unwrap();
        assert_eq!(store.records(), records);
        assert_eq!(store.knots(), cfg.knots());
        assert_eq!(store.meta().base_seed, cfg.base_seed);
        assert_eq!(store.export(), FleetExport::from_records(&cfg, &records));
    }

    #[test]
    fn columns_are_fixed_width_views() {
        let (cfg, records) = artifact_fixture();
        let store = FleetStore::from_bytes(encode(&cfg, &records)).unwrap();
        assert_eq!(store.column_bytes(Column::DeviceId).len(), 3 * 4);
        assert_eq!(store.column_bytes(Column::Seed).len(), 3 * 8);
        let cells = 3 * usize::from(cfg.geometry.total_pcs()) * cfg.knots().len();
        assert_eq!(store.column_bytes(Column::Faults).len(), cells * 2);
        assert_eq!(store.find(2).unwrap(), 2);
        assert!(matches!(store.find(9), Err(FleetError::UnknownDevice(9))));
    }

    #[test]
    fn bad_magic_and_truncation_are_artifact_errors() {
        let (cfg, records) = artifact_fixture();
        let bytes = encode(&cfg, &records);
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            FleetStore::from_bytes(wrong),
            Err(FleetError::Artifact(_))
        ));
        assert!(matches!(
            FleetStore::from_bytes(bytes[..32].to_vec()),
            Err(FleetError::Artifact(_))
        ));
    }

    #[test]
    fn version_bump_is_rejected() {
        let (cfg, records) = artifact_fixture();
        let mut bytes = encode(&cfg, &records);
        bytes[4..8].copy_from_slice(&(ARTIFACT_VERSION + 1).to_le_bytes());
        assert_eq!(
            FleetStore::from_bytes(bytes).unwrap_err(),
            FleetError::Version {
                found: ARTIFACT_VERSION + 1,
                expected: ARTIFACT_VERSION,
            }
        );
    }
}
