//! Reproduces the §III-B fault-characterization numbers: onset voltages of
//! each flip polarity, the +21 % polarity asymmetry and the 13 % inter-stack
//! gap.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);
    let s = hbm_bench::characterization(seed);
    println!("Characterization summary (seed {seed})");
    println!("first 1->0 flips: {:?} (paper: 0.97 V)", s.onset_1to0);
    println!("first 0->1 flips: {:?} (paper: 0.96 V)", s.onset_0to1);
    println!(
        "avg 0->1 / 1->0 ratio: {:.2} (paper: 1.21)",
        s.polarity_ratio
    );
    println!("avg HBM1 / HBM0 ratio: {:.2} (paper: ~1.13)", s.stack_ratio);
}
