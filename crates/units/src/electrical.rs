//! Electrical quantities: voltage, current, power, resistance, frequency and
//! the effective switched-capacitance rate `α·C_L·f` (farads per second).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An exact, integer-backed voltage in millivolts.
///
/// This is the canonical voltage type of the workspace: the reproduced study
/// sweeps the HBM supply rail in exact 10 mV steps between exact landmarks
/// (1200 mV nominal, 980 mV minimum safe, 810 mV critical), and those
/// comparisons must not be subject to floating-point rounding.
///
/// # Examples
///
/// ```
/// use hbm_units::Millivolts;
///
/// let v = Millivolts(1200);
/// assert_eq!(v.to_volts().0, 1.2);
/// assert_eq!(v - Millivolts(10), Millivolts(1190));
/// assert_eq!(format!("{v}"), "1.200 V");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Millivolts(pub u32);

impl Millivolts {
    /// Zero volts.
    pub const ZERO: Millivolts = Millivolts(0);

    /// Converts from floating-point volts, rounding to the nearest millivolt.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_volts(volts: f64) -> Self {
        let mv = (volts * 1000.0).round();
        assert!(
            mv.is_finite() && (0.0..=f64::from(u32::MAX)).contains(&mv),
            "voltage out of range: {volts} V"
        );
        Millivolts(mv as u32)
    }

    /// Returns the value as floating-point [`Volts`].
    #[must_use]
    pub fn to_volts(self) -> Volts {
        Volts(f64::from(self.0) / 1000.0)
    }

    /// Returns the raw millivolt count.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Saturating subtraction, clamping at zero volts.
    #[must_use]
    pub fn saturating_sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0.saturating_sub(rhs.0))
    }

    /// Absolute difference between two voltages.
    #[must_use]
    pub fn abs_diff(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0.abs_diff(rhs.0))
    }

    /// Clamps the voltage into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Millivolts, hi: Millivolts) -> Millivolts {
        assert!(lo <= hi, "invalid clamp range: {lo} > {hi}");
        Millivolts(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03} V", self.0 / 1000, self.0 % 1000)
    }
}

/// Error returned when a voltage string cannot be parsed as [`Millivolts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMillivoltsError {
    input: String,
}

impl fmt::Display for ParseMillivoltsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid voltage `{}` (use millivolts like `980` or `980mV`, or volts like `0.98V`)",
            self.input
        )
    }
}

impl std::error::Error for ParseMillivoltsError {}

/// Parses a voltage from the notations hosts actually type: a bare integer
/// is millivolts (`"980"`), an explicit `mV` suffix is millivolts
/// (`"980mV"`), a `V` suffix or a decimal point is volts (`"0.98V"`,
/// `"1.2"`). All hbmctl flags and CSV ingestion funnel through this one
/// impl so every surface accepts the same spellings.
///
/// ```
/// use hbm_units::Millivolts;
///
/// assert_eq!("980".parse::<Millivolts>().unwrap(), Millivolts(980));
/// assert_eq!("980mV".parse::<Millivolts>().unwrap(), Millivolts(980));
/// assert_eq!("0.98V".parse::<Millivolts>().unwrap(), Millivolts(980));
/// assert_eq!("1.2".parse::<Millivolts>().unwrap(), Millivolts(1200));
/// assert!("abc".parse::<Millivolts>().is_err());
/// assert!("-900".parse::<Millivolts>().is_err());
/// assert!("-0.0V".parse::<Millivolts>().is_err());
/// ```
impl std::str::FromStr for Millivolts {
    type Err = ParseMillivoltsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMillivoltsError {
            input: s.to_owned(),
        };
        let trimmed = s.trim();
        // Voltages are unsigned, so any leading minus is malformed. Checked
        // explicitly because `-0.0` would otherwise slip through the
        // `>= 0.0` range check below (IEEE negative zero equals zero) and
        // silently parse as 0 mV.
        if trimmed.starts_with('-') {
            return Err(err());
        }
        let lower = trimmed.to_ascii_lowercase();
        if let Some(mv) = lower.strip_suffix("mv") {
            return mv.trim().parse::<u32>().map(Millivolts).map_err(|_| err());
        }
        let (body, is_volts) = match lower.strip_suffix('v') {
            Some(body) => (body.trim(), true),
            None => (lower.as_str(), trimmed.contains('.')),
        };
        if is_volts {
            let volts: f64 = body.parse().map_err(|_| err())?;
            if !volts.is_finite() || !(0.0..=f64::from(u32::MAX) / 1000.0).contains(&volts) {
                return Err(err());
            }
            Ok(Millivolts::from_volts(volts))
        } else {
            body.parse::<u32>().map(Millivolts).map_err(|_| err())
        }
    }
}

impl Add for Millivolts {
    type Output = Millivolts;
    fn add(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 + rhs.0)
    }
}

impl Sub for Millivolts {
    type Output = Millivolts;
    fn sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 - rhs.0)
    }
}

impl AddAssign for Millivolts {
    fn add_assign(&mut self, rhs: Millivolts) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Millivolts {
    fn sub_assign(&mut self, rhs: Millivolts) {
        self.0 -= rhs.0;
    }
}

impl From<Millivolts> for Volts {
    fn from(mv: Millivolts) -> Volts {
        mv.to_volts()
    }
}

macro_rules! float_unit {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value.
            #[must_use]
            pub fn as_f64(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the smaller of two values.
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of two values.
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }
    };
}

float_unit!(
    /// A voltage in volts (floating point view; see [`Millivolts`] for the
    /// canonical exact representation).
    ///
    /// ```
    /// use hbm_units::{Volts, Amperes, Watts};
    /// assert_eq!(Volts(1.2) * Amperes(2.0), Watts(2.4));
    /// ```
    Volts,
    "V"
);
float_unit!(
    /// An electric current in amperes.
    ///
    /// ```
    /// use hbm_units::{Amperes, Ohms, Volts};
    /// assert_eq!(Amperes(2.0) * Ohms(0.5), Volts(1.0));
    /// ```
    Amperes,
    "A"
);
float_unit!(
    /// A power in watts.
    ///
    /// ```
    /// use hbm_units::Watts;
    /// let headroom = Watts(10.0) - Watts(6.5);
    /// assert_eq!(headroom, Watts(3.5));
    /// ```
    Watts,
    "W"
);
float_unit!(
    /// A resistance in ohms.
    ///
    /// ```
    /// use hbm_units::{Ohms, Volts, Amperes};
    /// let shunt = Ohms(0.002);
    /// assert_eq!(Amperes(5.0) * shunt, Volts(0.01));
    /// ```
    Ohms,
    "Ω"
);
float_unit!(
    /// A frequency in megahertz.
    ///
    /// ```
    /// use hbm_units::Megahertz;
    /// let memory_clock = Megahertz(900.0);
    /// assert_eq!(memory_clock.to_hertz(), 9.0e8);
    /// ```
    Megahertz,
    "MHz"
);
float_unit!(
    /// An effective switched-capacitance rate `α·C_L·f` in farads per second.
    ///
    /// Dividing a measured power by the square of the supply voltage leaves
    /// exactly this quantity (Equation (1) of the study); Figure 3 of the
    /// paper plots it to expose the stuck-bit capacitance drop below the
    /// guardband.
    ///
    /// ```
    /// use hbm_units::{FaradsPerSecond, Volts, Watts};
    /// let acf = Watts(4.5) / Volts(1.2); // still V·F/s
    /// let acf = acf / Volts(1.2).as_f64();
    /// assert!((acf.0 - 3.125).abs() < 1e-12);
    /// ```
    FaradsPerSecond,
    "F/s"
);

impl Megahertz {
    /// Converts to hertz.
    #[must_use]
    pub fn to_hertz(self) -> f64 {
        self.0 * 1.0e6
    }
}

impl Mul<Amperes> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amperes) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amperes {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amperes {
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Mul<Amperes> for Ohms {
    type Output = Volts;
    fn mul(self, rhs: Amperes) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Watts {
    type Output = Amperes;
    fn div(self, rhs: Volts) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl Div<Amperes> for Watts {
    type Output = Volts;
    fn div(self, rhs: Amperes) -> Volts {
        Volts(self.0 / rhs.0)
    }
}

impl Div<Ohms> for Volts {
    type Output = Amperes;
    fn div(self, rhs: Ohms) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl Volts {
    /// The square of the voltage, in V².
    ///
    /// Used by the active-power relation `P = α·C_L·f·V²`.
    #[must_use]
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }

    /// Converts to [`Millivolts`], rounding to the nearest millivolt.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative, NaN or out of range.
    #[must_use]
    pub fn to_millivolts(self) -> Millivolts {
        Millivolts::from_volts(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolt_display() {
        assert_eq!(Millivolts(1200).to_string(), "1.200 V");
        assert_eq!(Millivolts(980).to_string(), "0.980 V");
        assert_eq!(Millivolts(5).to_string(), "0.005 V");
    }

    #[test]
    fn millivolt_round_trips_through_volts() {
        for mv in (0..=2000).step_by(7) {
            let v = Millivolts(mv);
            assert_eq!(v.to_volts().to_millivolts(), v);
        }
    }

    #[test]
    fn millivolt_arithmetic() {
        assert_eq!(Millivolts(1200) - Millivolts(220), Millivolts(980));
        assert_eq!(Millivolts(980) + Millivolts(10), Millivolts(990));
        assert_eq!(
            Millivolts(5).saturating_sub(Millivolts(10)),
            Millivolts::ZERO
        );
        assert_eq!(Millivolts(810).abs_diff(Millivolts(840)), Millivolts(30));
        assert_eq!(
            Millivolts(2000).clamp(Millivolts(810), Millivolts(1200)),
            Millivolts(1200)
        );
    }

    #[test]
    #[should_panic(expected = "voltage out of range")]
    fn negative_volts_rejected() {
        let _ = Millivolts::from_volts(-0.1);
    }

    #[test]
    fn millivolt_from_str_accepts_all_spellings() {
        for (text, expected) in [
            ("980", 980),
            ("  1200 ", 1200),
            ("980mV", 980),
            ("980 mV", 980),
            ("810MV", 810),
            ("0.98V", 980),
            ("0.98 v", 980),
            ("1.2", 1200),
            ("0V", 0),
            ("0", 0),
        ] {
            assert_eq!(
                text.parse::<Millivolts>().unwrap(),
                Millivolts(expected),
                "parsing {text:?}"
            );
        }
    }

    #[test]
    fn millivolt_from_str_rejects_garbage() {
        for text in ["", "abc", "-980", "-0.98V", "9.8e300V", "12.5mV", "1,2V"] {
            let err = text.parse::<Millivolts>().unwrap_err();
            assert!(
                err.to_string().contains("invalid voltage"),
                "parsing {text:?}: {err}"
            );
        }
    }

    #[test]
    fn millivolt_from_str_rejects_negatives_overflow_and_blanks() {
        for text in [
            // Negative zero used to satisfy the `>= 0.0` range check and
            // parse as 0 mV.
            "-0.0",
            "-0.0V",
            "-0mV",
            "  -900 ",
            "- 900",
            // Overflow in every notation.
            "4294967296",
            "4294967296mV",
            "4294967.296V",
            "1e300",
            // Whitespace-only input.
            "   ",
            "\t\n",
        ] {
            assert!(
                text.parse::<Millivolts>().is_err(),
                "parsing {text:?} must fail"
            );
        }
    }

    #[test]
    fn ohms_law_and_power() {
        let i = Amperes(2.0);
        let r = Ohms(0.6);
        let v = i * r;
        assert_eq!(v, Volts(1.2));
        assert_eq!(v * i, Watts(2.4));
        assert_eq!(Watts(2.4) / v, i);
        assert_eq!(Watts(2.4) / i, v);
        assert_eq!(v / r, i);
    }

    #[test]
    fn like_quantity_division_is_dimensionless() {
        let saving = Watts(6.0) / Watts(4.0);
        assert_eq!(saving, 1.5);
    }

    #[test]
    fn squared_matches_multiplication() {
        assert_eq!(Volts(1.2).squared(), 1.2 * 1.2);
    }

    #[test]
    fn sum_of_watts() {
        let total: Watts = [Watts(1.0), Watts(2.5), Watts(0.5)].into_iter().sum();
        assert_eq!(total, Watts(4.0));
    }

    #[test]
    fn display_precision() {
        assert_eq!(format!("{:.2}", Watts(1.23456)), "1.23 W");
        assert_eq!(format!("{:.1}", Megahertz(900.0)), "900.0 MHz");
    }

    #[test]
    fn megahertz_to_hertz() {
        assert_eq!(Megahertz(900.0).to_hertz(), 9.0e8);
    }
}
