//! Fault-map explorer: builds the per-PC fault map of a device specimen,
//! exports it as JSON, and answers the paper's §III-C trade-off questions
//! ("how low can I go with this capacity and fault budget?").
//!
//! Run with: `cargo run --release --example fault_map_explorer [seed]`

use hbm_undervolt_suite::faults::FaultMap;
use hbm_undervolt_suite::power::HbmPowerModel;
use hbm_undervolt_suite::undervolt::report::Render;
use hbm_undervolt_suite::undervolt::{Platform, TradeOffAnalysis};
use hbm_units::{Millivolts, Ratio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let platform = Platform::builder().seed(seed).build();

    // Build the fault map analytically at the full 8 GB geometry.
    let map = FaultMap::from_predictor(
        platform.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );

    // Export for downstream tools (the paper's "fault map" artefact).
    let json = serde_json::to_string(&map)?;
    println!(
        "fault map: {} PCs x {} voltages ({} bytes of JSON)\n",
        map.profiles.len(),
        map.voltages.len(),
        json.len()
    );

    let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());

    // The Fig. 6 family.
    let curves = analysis.usable_pc_curves(&[
        Ratio::ZERO,
        Ratio(1e-6),
        Ratio(1e-4),
        Ratio(0.01),
        Ratio(0.5),
    ]);
    println!("{}", curves.to_text());

    // The paper's worked examples.
    let questions: [(&str, f64, Ratio); 3] = [
        ("needs all 8 GB, tolerates nothing", 1.0, Ratio::ZERO),
        (
            "tolerates nothing, can shrink to 7 PCs",
            7.0 / 32.0,
            Ratio::ZERO,
        ),
        (
            "tolerates 0.0001% faults, needs half the memory",
            0.5,
            Ratio(1e-6),
        ),
    ];
    for (label, fraction, tolerable) in questions {
        match analysis.plan_fraction(fraction, tolerable)? {
            Some(point) => println!(
                "{label}:\n  -> run at {}, {} PCs usable ({} GB), {:.2}x power saving",
                point.voltage,
                point.usable_pcs.len(),
                point.capacity_bytes >> 30,
                point.saving_factor,
            ),
            None => println!("{label}:\n  -> not satisfiable on this specimen"),
        }
    }
    Ok(())
}
