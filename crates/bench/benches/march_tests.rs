//! Criterion bench for the march memory tests over the fault-injecting
//! platform port.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_device::PortId;
use hbm_traffic::MarchTest;
use hbm_undervolt::Platform;
use hbm_units::Millivolts;

fn bench_march(c: &mut Criterion) {
    let words = 1024u64;
    let mut group = c.benchmark_group("march_c_minus");
    group.throughput(Throughput::Elements(words * 10)); // 10n operations
    for mv in [980u32, 900, 860] {
        group.bench_with_input(BenchmarkId::from_parameter(mv), &mv, |b, &mv| {
            let mut platform = Platform::builder().seed(7).build();
            platform.set_voltage(Millivolts(mv)).expect("set voltage");
            let port = PortId::new(0).expect("port 0");
            let test = MarchTest::march_c_minus();
            b.iter(|| {
                test.run(&mut platform.port(port), 0..words)
                    .expect("march run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_march);
criterion_main!(benches);
