//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of generated values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }

    /// Retains only generated values satisfying the predicate; other draws
    /// are retried.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        filter: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            filter,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    filter: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.source.generate(rng);
            if (self.filter)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1024 consecutive draws",
            self.whence
        );
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = ((end as i128 - start as i128) as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let unit = rng.unit_f64();
                let sampled = self.start as f64
                    + unit * (self.end as f64 - self.start as f64);
                if sampled as $ty >= self.end { self.start } else { sampled as $ty }
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                (start as f64 + rng.unit_f64() * (end as f64 - start as f64)) as $ty
            }
        }
    )*};
}

impl_float_strategies!(f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread over a broad magnitude range.
        let magnitude = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
}

/// Strategy over a type's full domain, created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
