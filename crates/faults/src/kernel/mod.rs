//! The unified mask-generation kernel API.
//!
//! Historically the injector accreted one entry point per enumeration
//! strategy (the per-word reference path, the tiled scan, the coupled
//! family, the carry start/advance pair), and every caller had to match on
//! [`FaultFieldMode`] to pick the right family. This module collapses them
//! behind one [`MaskKernel`] trait: callers obtain a kernel with
//! [`FaultInjector::kernel`], choosing a [`KernelBackend`], and every mask
//! query dispatches on the configured fault field internally.
//!
//! # Backends
//!
//! | Backend                    | Dense tiles                  | Sparse tiles |
//! |----------------------------|------------------------------|--------------|
//! | [`KernelBackend::Scalar`]  | per-bit scalar               | per-bit scalar |
//! | [`KernelBackend::BitSliced`] | bit-sliced (AVX2 if probed) | bit-sliced   |
//! | [`KernelBackend::Auto`]    | bit-sliced (AVX2 if probed)  | per-bit scalar |
//!
//! The bit-sliced path hashes whole 256-bit words a 64-bit lane at a time
//! and turns the per-bit polarity/threshold comparisons into integer
//! compares against precomputed per-tile cutoffs
//! ([`crate::hash::unit_cutoff`]), packing the results into `u64`
//! bitplanes. It is bit-identical to the scalar path by construction — the
//! cutoffs are the exact integer images of the scalar `f64` comparisons —
//! which the `bitsliced_matches_scalar` proptests enforce for both fault
//! fields, carried sweeps included.
//!
//! `Auto` (the default) decides per tile from the injector's cached tile
//! probabilities: a tile is *dense* when either polarity's word-gate
//! probability reaches [`DENSE_TILE_P_ANY`], i.e. when enough words of the
//! tile are expected to need per-bit enumeration that whole-word hashing
//! beats the skip-sampled scalar walk.

use std::ops::Range;

use hbm_device::{PcIndex, Word256, WordOffset};
use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::field::{CarryStats, FaultFieldMode, PcSweepCarry};
use crate::injector::FaultInjector;

pub(crate) mod bitsliced;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod simd;

/// Word-gate probability at which [`KernelBackend::Auto`] switches a tile
/// from scalar sparse enumeration to bit-sliced dense generation: one gated
/// word expected per 256, the point where hashing whole words stops losing
/// to the geometric skip walk.
pub(crate) const DENSE_TILE_P_ANY: f64 = 1.0 / 256.0;

/// Which implementation generates stuck-at masks.
///
/// Every backend is bit-identical to every other; this is purely a
/// performance knob, selected via `ReliabilityConfig` or
/// `hbmctl sweep --kernel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelBackend {
    /// The per-bit scalar kernel everywhere — the historical path, kept
    /// selectable for A/B comparison and as the proptest oracle.
    Scalar,
    /// The bit-sliced whole-word kernel everywhere, even on tiles sparse
    /// enough that the scalar skip walk would win.
    BitSliced,
    /// Density-adaptive dispatch (the default): per tile, the cached tile
    /// probabilities pick scalar sparse enumeration or bit-sliced dense
    /// generation.
    #[default]
    Auto,
}

impl KernelBackend {
    /// Stable CLI/config token for this backend
    /// (`scalar` / `bitsliced` / `auto`).
    #[must_use]
    pub fn as_token(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::BitSliced => "bitsliced",
            KernelBackend::Auto => "auto",
        }
    }

    /// Parses the stable token produced by [`KernelBackend::as_token`].
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "scalar" => Some(KernelBackend::Scalar),
            "bitsliced" => Some(KernelBackend::BitSliced),
            "auto" => Some(KernelBackend::Auto),
            _ => None,
        }
    }
}

/// The vector instruction set the bit-sliced kernel runs on, probed at
/// runtime so one binary adapts to its host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstructionSet {
    /// Plain `u64` bitplane arithmetic — correct everywhere.
    Portable,
    /// AVX2: four 64-bit lanes per instruction. Only ever constructed
    /// after [`InstructionSet::detect`] confirms the host supports it.
    Avx2,
}

impl InstructionSet {
    /// Probes the running CPU: [`InstructionSet::Avx2`] when available,
    /// otherwise [`InstructionSet::Portable`].
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return InstructionSet::Avx2;
        }
        InstructionSet::Portable
    }
}

/// The resolved backend selection a kernel carries into the injector's
/// enumeration loops: the policy plus the probed instruction set.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BackendSel {
    /// Scalar per-bit enumeration on every tile.
    Scalar,
    /// Bit-sliced generation on every tile.
    BitSliced(InstructionSet),
    /// Per-tile density dispatch.
    Auto(InstructionSet),
}

impl BackendSel {
    pub(crate) fn from_backend(backend: KernelBackend) -> Self {
        match backend {
            KernelBackend::Scalar => BackendSel::Scalar,
            KernelBackend::BitSliced => BackendSel::BitSliced(InstructionSet::detect()),
            KernelBackend::Auto => BackendSel::Auto(InstructionSet::detect()),
        }
    }

    /// The dispatch rule: whether a tile whose larger word-gate probability
    /// is `p_any_max` takes the bit-sliced path.
    pub(crate) fn bitsliced_for_tile(self, p_any_max: f64) -> bool {
        match self {
            BackendSel::Scalar => false,
            BackendSel::BitSliced(_) => true,
            BackendSel::Auto(_) => p_any_max >= DENSE_TILE_P_ANY,
        }
    }

    /// The instruction set bit-sliced tiles run on ([`InstructionSet::
    /// Portable`] for the scalar backend, which never takes that path).
    pub(crate) fn isa(self) -> InstructionSet {
        match self {
            BackendSel::Scalar => InstructionSet::Portable,
            BackendSel::BitSliced(isa) | BackendSel::Auto(isa) => isa,
        }
    }
}

/// One unified interface to every mask-generation strategy.
///
/// A `MaskKernel` binds a [`FaultInjector`], a [`FaultFieldMode`], and a
/// [`KernelBackend`]: callers ask for masks, enumerations, counts, or carry
/// state and the kernel routes the query to the right field family and
/// backend. All backends are bit-identical for a given field, so swapping
/// backends never changes results — only speed.
///
/// The concrete implementation is [`FieldKernel`], obtained from
/// [`FaultInjector::kernel`]. The trait is dyn-compatible (callbacks take
/// `&mut dyn FnMut`) so runtimes can hold `Box<dyn MaskKernel>` when the
/// field/backend pair is decided at runtime.
pub trait MaskKernel {
    /// The fault field this kernel enumerates.
    fn field(&self) -> FaultFieldMode;

    /// The backend policy this kernel was built with.
    fn backend(&self) -> KernelBackend;

    /// The `(stuck0, stuck1)` masks of one word at `supply`.
    fn masks(&self, pc: PcIndex, offset: WordOffset, supply: Millivolts) -> (Word256, Word256);

    /// The per-word reference oracle: recomputes the word's masks without
    /// any cached tile state (scalar, for either field). Slow; exists for
    /// the bit-identity tests and benches.
    fn reference_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256);

    /// Every faulty word of `words` at `supply`, ascending by offset.
    fn faulty_words(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)>;

    /// Streams every faulty word of `words` to `f` in ascending offset
    /// order, without materializing a vector.
    fn for_each_faulty_word(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        f: &mut dyn FnMut(WordOffset, Word256, Word256),
    );

    /// Total `(stuck0, stuck1)` faulty-bit counts over `words` at `supply`.
    fn count_range(&self, pc: PcIndex, words: Range<u64>, supply: Millivolts) -> (u64, u64);

    /// Expected fraction of words with at least one faulty bit at `supply`
    /// (drives the engine's streamed-vs-materialized decision).
    fn expected_active_fraction(&self, pc: PcIndex, supply: Millivolts) -> f64;

    /// Starts a carried descending sweep over `words` at `supply`.
    ///
    /// # Panics
    ///
    /// Panics under [`FaultFieldMode::PerVoltage`], which re-keys every
    /// point and therefore has no carryable working set — callers gate
    /// carried sweeps on the coupled field before asking for one.
    fn carry_start(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> (PcSweepCarry, CarryStats);

    /// Advances a carried working set to a lower `supply`.
    ///
    /// # Panics
    ///
    /// Panics under [`FaultFieldMode::PerVoltage`]; see
    /// [`MaskKernel::carry_start`].
    fn carry_advance(&self, carry: &mut PcSweepCarry, supply: Millivolts) -> CarryStats;

    /// Union fault-bit counts of one pseudo channel along a descending
    /// voltage schedule, via one carried sweep: entry `k` is the total
    /// stuck-at count (both polarities) over `words` at `schedule[k]`.
    ///
    /// This is the exact-rescan entry point the fleet layer uses to
    /// re-derive a device's per-knot curve when a compressed model cannot
    /// answer a query within its fidelity bound.
    ///
    /// # Panics
    ///
    /// Panics under [`FaultFieldMode::PerVoltage`] (see
    /// [`MaskKernel::carry_start`]) and when `schedule` is not strictly
    /// descending.
    fn count_descent(&self, pc: PcIndex, words: Range<u64>, schedule: &[Millivolts]) -> Vec<u64> {
        let mut counts = Vec::with_capacity(schedule.len());
        let mut carry: Option<PcSweepCarry> = None;
        for &supply in schedule {
            match carry.as_mut() {
                None => carry = Some(self.carry_start(pc, words.clone(), supply).0),
                Some(c) => {
                    self.carry_advance(c, supply);
                }
            }
            let mut count = 0u64;
            carry
                .as_ref()
                .expect("carry initialized above")
                .for_each_mask(|_, s0, s1| {
                    count += u64::from(s0.count_ones()) + u64::from(s1.count_ones());
                });
            counts.push(count);
        }
        counts
    }
}

/// The concrete [`MaskKernel`]: a borrowed [`FaultInjector`] plus the
/// field/backend pair, cheap to construct and `Copy` so parallel engine
/// workers can share one per-point kernel by value.
#[derive(Debug, Clone, Copy)]
pub struct FieldKernel<'a> {
    injector: &'a FaultInjector,
    field: FaultFieldMode,
    backend: KernelBackend,
    sel: BackendSel,
}

impl FaultInjector {
    /// A [`MaskKernel`] over this injector for `field`, generating masks
    /// with `backend`. Construction probes the instruction set once; the
    /// kernel borrows the injector, so all cached tile state is shared.
    #[must_use]
    pub fn kernel(&self, field: FaultFieldMode, backend: KernelBackend) -> FieldKernel<'_> {
        FieldKernel {
            injector: self,
            field,
            backend,
            sel: BackendSel::from_backend(backend),
        }
    }
}

impl MaskKernel for FieldKernel<'_> {
    fn field(&self) -> FaultFieldMode {
        self.field
    }

    fn backend(&self) -> KernelBackend {
        self.backend
    }

    fn masks(&self, pc: PcIndex, offset: WordOffset, supply: Millivolts) -> (Word256, Word256) {
        match self.field {
            FaultFieldMode::PerVoltage => {
                self.injector.stuck_masks_sel(pc, offset, supply, self.sel)
            }
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_stuck_masks_sel(pc, offset, supply, self.sel),
        }
    }

    fn reference_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        match self.field {
            FaultFieldMode::PerVoltage => {
                self.injector.stuck_masks_per_word_impl(pc, offset, supply)
            }
            FaultFieldMode::MonotoneCoupled => {
                self.injector
                    .coupled_stuck_masks_sel(pc, offset, supply, BackendSel::Scalar)
            }
        }
    }

    fn faulty_words(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        match self.field {
            FaultFieldMode::PerVoltage => {
                self.injector.faulty_words_sel(pc, words, supply, self.sel)
            }
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_faulty_words_sel(pc, words, supply, self.sel),
        }
    }

    fn for_each_faulty_word(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        f: &mut dyn FnMut(WordOffset, Word256, Word256),
    ) {
        match self.field {
            FaultFieldMode::PerVoltage => self
                .injector
                .for_each_faulty_word_sel(pc, words, supply, self.sel, f),
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_for_each_faulty_sel(pc, words, supply, self.sel, f),
        }
    }

    fn count_range(&self, pc: PcIndex, words: Range<u64>, supply: Millivolts) -> (u64, u64) {
        match self.field {
            FaultFieldMode::PerVoltage => {
                self.injector.count_range_sel(pc, words, supply, self.sel)
            }
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_count_range_sel(pc, words, supply, self.sel),
        }
    }

    fn expected_active_fraction(&self, pc: PcIndex, supply: Millivolts) -> f64 {
        // Field-independent: both fields share the analytic tile model.
        self.injector.expected_active_fraction(pc, supply)
    }

    fn carry_start(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> (PcSweepCarry, CarryStats) {
        match self.field {
            FaultFieldMode::PerVoltage => {
                panic!("carried sweeps require FaultFieldMode::MonotoneCoupled")
            }
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_carry_start_sel(pc, words, supply, self.sel),
        }
    }

    fn carry_advance(&self, carry: &mut PcSweepCarry, supply: Millivolts) -> CarryStats {
        match self.field {
            FaultFieldMode::PerVoltage => {
                panic!("carried sweeps require FaultFieldMode::MonotoneCoupled")
            }
            FaultFieldMode::MonotoneCoupled => self
                .injector
                .coupled_carry_advance_sel(carry, supply, self.sel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultModelParams;
    use hbm_device::HbmGeometry;

    #[test]
    fn backend_tokens_round_trip() {
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::BitSliced,
            KernelBackend::Auto,
        ] {
            assert_eq!(KernelBackend::from_token(backend.as_token()), Some(backend));
        }
        assert_eq!(KernelBackend::from_token("warp"), None);
        assert_eq!(KernelBackend::default(), KernelBackend::Auto);
    }

    #[test]
    fn backend_serde_round_trip() {
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::BitSliced,
            KernelBackend::Auto,
        ] {
            let json = serde_json::to_string(&backend).unwrap();
            let back: KernelBackend = serde_json::from_str(&json).unwrap();
            assert_eq!(back, backend);
        }
    }

    #[test]
    fn dispatch_rule_follows_density() {
        let sparse = DENSE_TILE_P_ANY / 2.0;
        let dense = DENSE_TILE_P_ANY * 2.0;
        let scalar = BackendSel::from_backend(KernelBackend::Scalar);
        let sliced = BackendSel::from_backend(KernelBackend::BitSliced);
        let auto = BackendSel::from_backend(KernelBackend::Auto);
        assert!(!scalar.bitsliced_for_tile(dense));
        assert!(sliced.bitsliced_for_tile(sparse));
        assert!(auto.bitsliced_for_tile(dense));
        assert!(!auto.bitsliced_for_tile(sparse));
    }

    #[test]
    fn kernel_reports_its_configuration() {
        let injector =
            FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 1);
        for field in [FaultFieldMode::PerVoltage, FaultFieldMode::MonotoneCoupled] {
            for backend in [
                KernelBackend::Scalar,
                KernelBackend::BitSliced,
                KernelBackend::Auto,
            ] {
                let kernel = injector.kernel(field, backend);
                assert_eq!(kernel.field(), field);
                assert_eq!(kernel.backend(), backend);
            }
        }
    }

    #[test]
    fn count_descent_matches_per_knot_counts() {
        let injector =
            FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 9);
        let kernel = injector.kernel(FaultFieldMode::MonotoneCoupled, KernelBackend::Auto);
        let pc = PcIndex::new(3).unwrap();
        let schedule: Vec<Millivolts> = [980u32, 940, 900, 860].map(Millivolts).to_vec();
        let counts = kernel.count_descent(pc, 0..64, &schedule);
        assert_eq!(counts.len(), schedule.len());
        for (k, &v) in schedule.iter().enumerate() {
            let (n0, n1) = kernel.count_range(pc, 0..64, v);
            assert_eq!(counts[k], n0 + n1, "knot {v}");
        }
    }

    #[test]
    #[should_panic(expected = "MonotoneCoupled")]
    fn per_voltage_kernel_refuses_carry() {
        let injector =
            FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 1);
        let kernel = injector.kernel(FaultFieldMode::PerVoltage, KernelBackend::Auto);
        let pc = PcIndex::new(0).unwrap();
        let _ = kernel.carry_start(pc, 0..64, Millivolts(900));
    }
}
