//! Fleet-sweep bench: a 256-device population characterized through the
//! work-stealing engine at one worker and at full parallelism, recording
//! devices/second for both plus the columnar-artifact versus JSON-export
//! size per device, to `BENCH_fleet_sweep.json`.
//!
//! Two acceptance properties are asserted, not just recorded: the single-
//! and max-worker runs are bit-identical record for record, and the
//! columnar artifact is at least 5× smaller than the equivalent JSON
//! export of the same fleet.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable throughput record, not a statistical
//! distribution. Run with: `cargo bench -p hbm-bench --bench fleet_sweep`.

use std::time::Instant;

use hbm_fleet::{artifact, sweep, FleetConfig, FleetExport, FleetReport};
use serde::Serialize;

const SEED: u64 = 7;
const DEVICES: u32 = 256;
const ITERATIONS: u32 = 3;

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    iterations: u32,
    devices: u32,
    pcs: u32,
    knots: usize,
    words_per_pc: u64,
    note: &'static str,
    single_worker_seconds: f64,
    single_worker_devices_per_sec: f64,
    max_workers: usize,
    max_worker_seconds: f64,
    max_worker_devices_per_sec: f64,
    parallel_speedup: f64,
    artifact_bytes: usize,
    artifact_bytes_per_device: f64,
    json_bytes: usize,
    json_bytes_per_device: f64,
    json_over_artifact: f64,
}

/// The bench fleet descends the fault-onset region (0.90 V down to the
/// crash band in 5 mV steps) — the slice a production guardband decision
/// actually characterizes, where every knot carries measured fault rates.
fn config(workers: usize) -> FleetConfig {
    FleetConfig {
        devices: DEVICES,
        base_seed: SEED,
        workers,
        from: hbm_units::Millivolts(900),
        down_to: hbm_units::Millivolts(820),
        step: hbm_units::Millivolts(5),
        weak_reference: hbm_units::Millivolts(900),
        ..FleetConfig::default()
    }
}

/// Best-of-N wall clock for one worker count, plus the final report (all
/// runs are bit-identical by the fleet determinism contract).
fn time_sweep(workers: usize) -> (f64, FleetReport) {
    let cfg = config(workers);
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..ITERATIONS {
        let start = Instant::now();
        let r = sweep::run(&cfg).expect("fleet sweep");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

fn main() {
    println!("fleet_sweep: {DEVICES} devices, seed {SEED}, best of {ITERATIONS} runs");

    let (single_secs, single) = time_sweep(1);
    println!("  1 worker : {single_secs:.3}s");

    let (multi_secs, multi) = time_sweep(0);
    let max_workers = multi.stats.workers;
    let speedup = single_secs / multi_secs;
    println!("  {max_workers} workers: {multi_secs:.3}s  ({speedup:.2}x vs 1 worker)");

    // Parallelism is a pure scheduling change: every record must match
    // the sequential run bit for bit.
    assert_eq!(
        single.records, multi.records,
        "parallel fleet sweep diverged from the sequential run"
    );

    let cfg = config(0);
    let artifact_bytes = artifact::encode(&cfg, &multi.records).len();
    let json_bytes = FleetExport::from_records(&cfg, &multi.records)
        .to_json()
        .len();
    let ratio = json_bytes as f64 / artifact_bytes as f64;
    println!("  artifact {artifact_bytes} B vs JSON {json_bytes} B ({ratio:.1}x smaller)");
    assert!(
        artifact_bytes * 5 <= json_bytes,
        "columnar artifact must be >= 5x smaller than the JSON export \
         ({artifact_bytes} B vs {json_bytes} B)"
    );

    let record = Record {
        bench: "fleet_sweep",
        seed: SEED,
        iterations: ITERATIONS,
        devices: DEVICES,
        pcs: u32::from(cfg.geometry.total_pcs()),
        knots: cfg.knots().len(),
        words_per_pc: cfg.words_per_pc,
        note: "single- and max-worker runs asserted bit-identical record for \
               record; the columnar artifact is asserted >= 5x smaller than \
               the JSON export of the same fleet",
        single_worker_seconds: single_secs,
        single_worker_devices_per_sec: f64::from(DEVICES) / single_secs,
        max_workers,
        max_worker_seconds: multi_secs,
        max_worker_devices_per_sec: f64::from(DEVICES) / multi_secs,
        parallel_speedup: speedup,
        artifact_bytes,
        artifact_bytes_per_device: artifact_bytes as f64 / f64::from(DEVICES),
        json_bytes,
        json_bytes_per_device: json_bytes as f64 / f64::from(DEVICES),
        json_over_artifact: ratio,
    };

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_sweep.json");
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_fleet_sweep.json");
    println!("wrote {path}");
}
