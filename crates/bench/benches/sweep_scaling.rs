//! Scaling bench for the parallel sweep engine: the same reliability sweep
//! at 1 worker vs N workers, verifying bit-identical fault totals and
//! recording wall-clock timings to `BENCH_sweep_scaling.json`.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable speedup record, not a statistical
//! distribution. Run with: `cargo bench -p hbm-bench --bench sweep_scaling`.

use std::time::Instant;

use hbm_device::TimingStretchModel;
use hbm_traffic::DataPattern;
use hbm_undervolt::{
    ExecutionMode, Experiment, FaultFieldMode, KernelBackend, Platform, ReliabilityConfig,
    ReliabilityReport, ReliabilityTester, TestScope, VoltageSweep,
};
use hbm_units::Millivolts;
use serde::Serialize;

const SEED: u64 = 7;
const ITERATIONS: u32 = 3;

#[derive(Serialize)]
struct Entry {
    workers: usize,
    seconds: f64,
    speedup: f64,
    mean_faults: f64,
}

/// Wall-clock comparison of the same sweep with the voltage–latency
/// stretch model armed vs disabled. Effective timings are computed on
/// demand from the rail — never inside the sweep loop — so the armed run
/// must not be measurably slower.
#[derive(Serialize)]
struct TimingOverhead {
    stretched_secs: f64,
    stretch_free_secs: f64,
    overhead_ratio: f64,
}

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    host_cores: usize,
    iterations: u32,
    note: &'static str,
    results: Vec<Entry>,
    timing_overhead: TimingOverhead,
}

fn workload() -> ReliabilityTester {
    let config = ReliabilityConfig {
        sweep: VoltageSweep::new(Millivolts(960), Millivolts(860), Millivolts(20))
            .expect("static sweep"),
        batch_size: 2,
        patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
        scope: TestScope::EntireHbm,
        words_per_pc: Some(1024),
        sample_words: None,
        mode: ExecutionMode::CachedMasks,
        fault_field: FaultFieldMode::PerVoltage,
        kernel: KernelBackend::Auto,
        carry_forward: true,
    };
    ReliabilityTester::new(config).expect("config valid")
}

/// Best-of-N wall clock for the sweep at a given worker count, plus the
/// report of the final run (all runs are bit-identical by construction).
fn time_sweep(workers: usize) -> (f64, ReliabilityReport) {
    let tester = workload();
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..ITERATIONS {
        let mut platform = Platform::builder().seed(SEED).workers(workers).build();
        let start = Instant::now();
        let r = Experiment::run(&tester, &mut platform).expect("sweep");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

fn total_faults(report: &ReliabilityReport) -> f64 {
    report.points.iter().map(|p| p.total_mean_faults()).sum()
}

/// Best-of-N wall clock for the sequential sweep under an explicit
/// timing-stretch model, plus the final report.
fn time_sweep_with_stretch(stretch: TimingStretchModel) -> (f64, ReliabilityReport) {
    let tester = workload();
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..ITERATIONS {
        let mut platform = Platform::builder()
            .seed(SEED)
            .workers(1)
            .timing_stretch(stretch)
            .build();
        let start = Instant::now();
        let r = Experiment::run(&tester, &mut platform).expect("sweep");
        best = best.min(start.elapsed().as_secs_f64());
        report = Some(r);
    }
    (best, report.expect("at least one iteration"))
}

/// The stretch model must be free at sweep time: effective timings are a
/// pure on-demand function of the rail, so a sweep with the model armed is
/// bit-identical to a stretch-free sweep and not measurably slower. The
/// ratio bound is loose (wall clocks are noisy) but one-sided: a timing
/// computation leaking into the per-word hot path would blow well past it.
fn measure_timing_overhead() -> TimingOverhead {
    let (stretched_secs, stretched) = time_sweep_with_stretch(TimingStretchModel::date21());
    let (stretch_free_secs, stretch_free) = time_sweep_with_stretch(TimingStretchModel::none());
    assert_eq!(
        stretched, stretch_free,
        "the stretch model changed the fault counting of a sweep"
    );
    let overhead_ratio = stretched_secs / stretch_free_secs;
    assert!(
        overhead_ratio < 1.25,
        "stretch model added measurable sweep overhead: {overhead_ratio:.3}x"
    );
    println!(
        "  timing overhead: {stretched_secs:.3}s armed vs {stretch_free_secs:.3}s \
         stretch-free ({overhead_ratio:.2}x, bit-identical)"
    );
    TimingOverhead {
        stretched_secs,
        stretch_free_secs,
        overhead_ratio,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("sweep_scaling: seed {SEED}, {cores} host core(s), best of {ITERATIONS} runs");

    let (baseline_secs, baseline) = time_sweep(1);
    let baseline_faults = total_faults(&baseline);
    println!("  1 worker : {baseline_secs:.3}s  ({baseline_faults:.0} mean faults)");

    let mut results = vec![Entry {
        workers: 1,
        seconds: baseline_secs,
        speedup: 1.0,
        mean_faults: baseline_faults,
    }];

    for workers in [2usize, 4, 8] {
        let (secs, report) = time_sweep(workers);
        assert_eq!(
            baseline, report,
            "parallel report diverged from sequential at {workers} workers"
        );
        let speedup = baseline_secs / secs;
        println!("  {workers} workers: {secs:.3}s  ({speedup:.2}x vs sequential, bit-identical)");
        results.push(Entry {
            workers,
            seconds: secs,
            speedup,
            mean_faults: total_faults(&report),
        });
    }

    let timing_overhead = measure_timing_overhead();

    let record = Record {
        bench: "sweep_scaling",
        seed: SEED,
        host_cores: cores,
        iterations: ITERATIONS,
        note: if cores == 1 {
            "single-core host: worker threads interleave on one CPU, so speedup \
             reflects scheduling overhead only; determinism is still asserted"
        } else {
            "speedup = sequential wall clock / parallel wall clock, best of N"
        },
        results,
        timing_overhead,
    };

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sweep_scaling.json"
    );
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_sweep_scaling.json");
    println!("wrote {path}");
}
