//! The per-stack controller driving 16 traffic generators.

use hbm_device::{DeviceError, HbmGeometry, PortId, StackId};

use crate::generator::{MemoryPort, PortProvider, TrafficGenerator};
use crate::program::MacroProgram;
use crate::stats::PortStats;

/// The controller of one HBM stack: owns one [`TrafficGenerator`] per AXI
/// port of the stack, configures them, runs macro programs and aggregates
/// statistics — the study's per-stack controller of §II-B.
///
/// The controller does not own the memory; the caller supplies a
/// [`PortProvider`] so the same controller drives a bare device (fault-free
/// [`DirectPort`](crate::DirectPort)s) or the platform's fault-injecting
/// ports.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmDevice, HbmGeometry, StackId};
/// use hbm_traffic::{DataPattern, MacroProgram, StackController};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let geometry = HbmGeometry::vcu128_reduced();
/// let mut device = HbmDevice::new(geometry);
/// let mut controller = StackController::new(geometry, StackId(0));
/// let program = MacroProgram::write_then_check(0..256, DataPattern::AllOnes);
///
/// let stats = controller.run_all(&program, &mut device)?;
/// assert_eq!(stats.len(), 16);
/// let total: hbm_traffic::PortStats = stats.into_iter().map(|(_, s)| s).sum();
/// assert_eq!(total.words_written, 16 * 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StackController {
    stack: StackId,
    generators: Vec<TrafficGenerator>,
}

impl StackController {
    /// Creates the controller for `stack`, with one generator per port of
    /// that stack.
    #[must_use]
    pub fn new(geometry: HbmGeometry, stack: StackId) -> Self {
        let generators = PortId::all(geometry)
            .filter(|port| port.direct_pc().stack(geometry) == stack)
            .map(TrafficGenerator::new)
            .collect();
        StackController { stack, generators }
    }

    /// The stack this controller drives.
    #[must_use]
    pub fn stack(&self) -> StackId {
        self.stack
    }

    /// The ports under this controller.
    pub fn ports(&self) -> impl Iterator<Item = PortId> + '_ {
        self.generators.iter().map(TrafficGenerator::port)
    }

    /// Runs `program` on every generator in port order, obtaining each
    /// port's memory access from `provider`. Returns per-port statistics.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first device error.
    pub fn run_all<Pr: PortProvider>(
        &mut self,
        program: &MacroProgram,
        provider: &mut Pr,
    ) -> Result<Vec<(PortId, PortStats)>, DeviceError> {
        let mut results = Vec::with_capacity(self.generators.len());
        for tg in &mut self.generators {
            let mut port = provider.port(tg.port());
            let stats = tg.run(program, &mut port)?;
            drop(port);
            results.push((tg.port(), stats));
        }
        Ok(results)
    }

    /// Runs `program` only on the listed ports (the study's
    /// port-disabling methodology for reduced-bandwidth and
    /// fault-avoidance configurations).
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first device error.
    pub fn run_selected<Pr: PortProvider>(
        &mut self,
        program: &MacroProgram,
        ports: &[PortId],
        provider: &mut Pr,
    ) -> Result<Vec<(PortId, PortStats)>, DeviceError> {
        let mut results = Vec::new();
        for tg in &mut self.generators {
            if !ports.contains(&tg.port()) {
                continue;
            }
            let mut port = provider.port(tg.port());
            let stats = tg.run(program, &mut port)?;
            drop(port);
            results.push((tg.port(), stats));
        }
        Ok(results)
    }

    /// Runs `program` over caller-supplied disjoint port accesses (one
    /// shard per port) on up to `workers` threads, keeping only the shards
    /// that belong to this controller's stack. Per-shard statistics are
    /// folded into the matching generators' cumulative totals, exactly as a
    /// sequential [`StackController::run_all`] would.
    ///
    /// # Errors
    ///
    /// Propagates the first device error in port order.
    pub fn run_sharded<P: MemoryPort + Send>(
        &mut self,
        program: &MacroProgram,
        shards: Vec<(PortId, P)>,
        workers: usize,
    ) -> Result<Vec<(PortId, PortStats)>, DeviceError> {
        let jobs: Vec<crate::exec::ShardJob<'_, P>> = shards
            .into_iter()
            .filter(|(port, _)| self.generators.iter().any(|tg| tg.port() == *port))
            .map(|(port, access)| (port, program, access))
            .collect();
        let results = crate::exec::run_sharded(jobs, workers)?;
        for (port, stats) in &results {
            if let Some(tg) = self.generators.iter_mut().find(|tg| tg.port() == *port) {
                tg.absorb(stats);
            }
        }
        Ok(results)
    }

    /// Cumulative statistics per port since the last reset.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(PortId, PortStats)> {
        self.generators
            .iter()
            .map(|tg| (tg.port(), tg.cumulative()))
            .collect()
    }

    /// Resets all generators' statistics.
    pub fn reset(&mut self) {
        for tg in &mut self.generators {
            tg.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DataPattern;
    use hbm_device::HbmDevice;

    #[test]
    fn controller_covers_its_stack() {
        let g = HbmGeometry::vcu128();
        let c0 = StackController::new(g, StackId(0));
        let ids: Vec<u8> = c0.ports().map(|p| p.as_u8()).collect();
        assert_eq!(ids, (0..16).collect::<Vec<_>>());
        let c1 = StackController::new(g, StackId(1));
        let ids: Vec<u8> = c1.ports().map(|p| p.as_u8()).collect();
        assert_eq!(ids, (16..32).collect::<Vec<_>>());
    }

    #[test]
    fn run_all_visits_every_port() {
        let g = HbmGeometry::vcu128_reduced();
        let mut device = HbmDevice::new(g);
        let mut controller = StackController::new(g, StackId(1));
        let program = MacroProgram::write_then_check(0..32, DataPattern::AllZeros);
        let stats = controller.run_all(&program, &mut device).unwrap();
        assert_eq!(stats.len(), 16);
        for (port, s) in &stats {
            assert!(port.as_u8() >= 16);
            assert_eq!(s.words_written, 32);
            assert_eq!(s.total_flips(), 0);
        }
    }

    #[test]
    fn run_selected_respects_port_list() {
        let g = HbmGeometry::vcu128_reduced();
        let mut device = HbmDevice::new(g);
        let mut controller = StackController::new(g, StackId(0));
        let program = MacroProgram::write_then_check(0..8, DataPattern::AllOnes);
        let ports = [PortId::new(2).unwrap(), PortId::new(9).unwrap()];
        let stats = controller
            .run_selected(&program, &ports, &mut device)
            .unwrap();
        let ids: Vec<u8> = stats.iter().map(|(p, _)| p.as_u8()).collect();
        assert_eq!(ids, vec![2, 9]);
    }

    #[test]
    fn run_sharded_matches_run_all() {
        use hbm_device::{PcShard, Word256, WordOffset};

        struct ShardAccess<'a>(PcShard<'a>);
        impl MemoryPort for ShardAccess<'_> {
            fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
                self.0.write(offset, word)
            }
            fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
                self.0.read(offset)
            }
        }

        let g = HbmGeometry::vcu128_reduced();
        let program = MacroProgram::write_then_check(0..32, DataPattern::AllOnes);

        let mut sequential_device = HbmDevice::new(g);
        let mut sequential = StackController::new(g, StackId(0));
        let expected = sequential
            .run_all(&program, &mut sequential_device)
            .unwrap();

        let mut sharded_device = HbmDevice::new(g);
        let mut sharded = StackController::new(g, StackId(0));
        let shards: Vec<(PortId, ShardAccess<'_>)> = sharded_device
            .pc_shards()
            .unwrap()
            .into_iter()
            .map(|s| (s.port(), ShardAccess(s)))
            .collect();
        // Shards for the foreign stack are filtered out by the controller.
        let results = sharded.run_sharded(&program, shards, 4).unwrap();

        assert_eq!(results, expected);
        assert_eq!(sharded.cumulative(), sequential.cumulative());
    }

    #[test]
    fn cumulative_and_reset() {
        let g = HbmGeometry::vcu128_reduced();
        let mut device = HbmDevice::new(g);
        let mut controller = StackController::new(g, StackId(0));
        let program = MacroProgram::write_then_check(0..8, DataPattern::AllOnes);
        controller.run_all(&program, &mut device).unwrap();
        let total: PortStats = controller.cumulative().into_iter().map(|(_, s)| s).sum();
        assert_eq!(total.words_written, 16 * 8);
        controller.reset();
        let total: PortStats = controller.cumulative().into_iter().map(|(_, s)| s).sum();
        assert_eq!(total, PortStats::default());
    }
}
