//! User-side AXI ports and the optional switching network.
//!
//! The Xilinx HBM IP exposes 32 AXI ports, one per pseudo channel, each
//! 256 bits wide (a 4:1 ratio over the 64-bit PC so the fabric can run at a
//! quarter of the memory data rate and still saturate the bandwidth). A
//! configurable switching network can route any port to any PC at the cost
//! of extra latency and reduced bandwidth; the study disables it so that
//! measurements reflect the HBM stacks alone.

use serde::{Deserialize, Serialize};

use crate::address::{PcIndex, PortId};
use crate::error::DeviceError;
use crate::geometry::HbmGeometry;

/// Configuration of one user-side AXI port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxiPort {
    id: PortId,
    enabled: bool,
}

impl AxiPort {
    /// Creates an enabled port.
    #[must_use]
    pub fn new(id: PortId) -> Self {
        AxiPort { id, enabled: true }
    }

    /// The port id.
    #[must_use]
    pub fn id(&self) -> PortId {
        self.id
    }

    /// `true` if the port accepts traffic.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the port. Disabling ports is the study's lever
    /// for excluding undervolting-sensitive PCs and reducing bandwidth in
    /// 25 % steps.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }
}

/// The set of all AXI ports of a device, plus enable/disable bookkeeping.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PortId, PortSet};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut ports = PortSet::new(HbmGeometry::vcu128());
/// assert_eq!(ports.enabled_count(), 32);
/// ports.set_enabled(PortId::new(5)?, false);
/// assert_eq!(ports.enabled_count(), 31);
/// ports.enable_first(16); // 50% bandwidth configuration
/// assert_eq!(ports.enabled_count(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSet {
    ports: Vec<AxiPort>,
}

impl PortSet {
    /// Creates one enabled port per pseudo channel of `geometry`.
    #[must_use]
    pub fn new(geometry: HbmGeometry) -> Self {
        PortSet {
            ports: PortId::all(geometry).map(AxiPort::new).collect(),
        }
    }

    /// Number of ports (enabled or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` if the set is empty (never the case for a valid geometry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// The port with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the geometry this set was built for.
    #[must_use]
    pub fn port(&self, id: PortId) -> &AxiPort {
        &self.ports[id.as_usize()]
    }

    /// Enables or disables one port.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the geometry this set was built for.
    pub fn set_enabled(&mut self, id: PortId, enabled: bool) {
        self.ports[id.as_usize()].set_enabled(enabled);
    }

    /// `true` if port `id` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the geometry this set was built for.
    #[must_use]
    pub fn is_enabled(&self, id: PortId) -> bool {
        self.ports[id.as_usize()].is_enabled()
    }

    /// Enables exactly the first `n` ports and disables the rest — the
    /// configuration the study uses to step bandwidth utilization in 25 %
    /// increments (0, 8, 16, 24, 32 ports).
    pub fn enable_first(&mut self, n: usize) {
        for (i, port) in self.ports.iter_mut().enumerate() {
            port.set_enabled(i < n);
        }
    }

    /// Enables exactly the listed ports and disables all others.
    pub fn enable_only<I: IntoIterator<Item = PortId>>(&mut self, ids: I) {
        for port in &mut self.ports {
            port.set_enabled(false);
        }
        for id in ids {
            self.ports[id.as_usize()].set_enabled(true);
        }
    }

    /// Number of enabled ports.
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.ports.iter().filter(|p| p.is_enabled()).count()
    }

    /// Iterates over the enabled ports' ids.
    pub fn enabled_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        self.ports
            .iter()
            .filter(|p| p.is_enabled())
            .map(AxiPort::id)
    }

    /// Iterates over all ports.
    pub fn iter(&self) -> std::slice::Iter<'_, AxiPort> {
        self.ports.iter()
    }
}

impl<'a> IntoIterator for &'a PortSet {
    type Item = &'a AxiPort;
    type IntoIter = std::slice::Iter<'a, AxiPort>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The switching network between AXI ports and pseudo channels.
///
/// Disabled (the study's configuration), each port reaches only its own PC.
/// Enabled, any port can reach any PC, at a modelled bandwidth derate.
///
/// # Examples
///
/// ```
/// use hbm_device::{PcIndex, PortId, SwitchingNetwork};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let direct = SwitchingNetwork::disabled();
/// let port = PortId::new(3)?;
/// assert_eq!(direct.route(port, None)?, PcIndex::new(3)?);
/// assert!(direct.route(port, Some(PcIndex::new(9)?)).is_err());
///
/// let switched = SwitchingNetwork::enabled();
/// assert_eq!(switched.route(port, Some(PcIndex::new(9)?))?, PcIndex::new(9)?);
/// assert!(switched.bandwidth_derate() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchingNetwork {
    enabled: bool,
    /// Multiplicative bandwidth factor when the switch is enabled (the IP
    /// documents lower achievable bandwidth through the switch).
    derate: f64,
}

/// Default bandwidth derate through the enabled switch. The Xilinx IP's
/// switched mode loses a sizeable fraction of bandwidth to arbitration; 0.8
/// is a representative figure for uniform traffic.
const SWITCH_DERATE: f64 = 0.8;

impl SwitchingNetwork {
    /// A disabled switch: the identity port→PC mapping with no penalty.
    #[must_use]
    pub fn disabled() -> Self {
        SwitchingNetwork {
            enabled: false,
            derate: 1.0,
        }
    }

    /// An enabled switch with the default bandwidth derate.
    #[must_use]
    pub fn enabled() -> Self {
        SwitchingNetwork {
            enabled: true,
            derate: SWITCH_DERATE,
        }
    }

    /// `true` if the switch is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bandwidth multiplier implied by this configuration (1.0 when
    /// disabled).
    #[must_use]
    pub fn bandwidth_derate(&self) -> f64 {
        self.derate
    }

    /// Resolves the pseudo channel a transaction from `port` reaches.
    ///
    /// `target` requests an explicit PC (only honoured through an enabled
    /// switch); `None` means the port's own PC.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::RouteUnavailable`] if a cross-PC route is
    /// requested while the switch is disabled.
    pub fn route(&self, port: PortId, target: Option<PcIndex>) -> Result<PcIndex, DeviceError> {
        match target {
            None => Ok(port.direct_pc()),
            Some(pc) if pc == port.direct_pc() => Ok(pc),
            Some(pc) if self.enabled => Ok(pc),
            Some(pc) => Err(DeviceError::RouteUnavailable {
                port: port.as_u8(),
                target: pc.as_u8(),
            }),
        }
    }
}

impl Default for SwitchingNetwork {
    /// Disabled, matching the study's methodology.
    fn default() -> Self {
        SwitchingNetwork::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(i: u8) -> PortId {
        PortId::new(i).unwrap()
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn port_set_starts_fully_enabled() {
        let ports = PortSet::new(HbmGeometry::vcu128());
        assert_eq!(ports.len(), 32);
        assert!(!ports.is_empty());
        assert_eq!(ports.enabled_count(), 32);
    }

    #[test]
    fn enable_first_configures_bandwidth_steps() {
        let mut ports = PortSet::new(HbmGeometry::vcu128());
        for (n, expect) in [(0usize, 0usize), (8, 8), (16, 16), (24, 24), (32, 32)] {
            ports.enable_first(n);
            assert_eq!(ports.enabled_count(), expect);
        }
        ports.enable_first(16);
        assert!(ports.is_enabled(port(15)));
        assert!(!ports.is_enabled(port(16)));
    }

    #[test]
    fn enable_only_selects_exact_set() {
        let mut ports = PortSet::new(HbmGeometry::vcu128());
        ports.enable_only([port(1), port(30)]);
        assert_eq!(ports.enabled_count(), 2);
        let ids: Vec<u8> = ports.enabled_ids().map(|p| p.as_u8()).collect();
        assert_eq!(ids, vec![1, 30]);
    }

    #[test]
    fn disabled_switch_is_identity_only() {
        let sw = SwitchingNetwork::disabled();
        assert_eq!(sw.route(port(7), None).unwrap(), pc(7));
        assert_eq!(sw.route(port(7), Some(pc(7))).unwrap(), pc(7));
        assert_eq!(
            sw.route(port(7), Some(pc(8))).unwrap_err(),
            DeviceError::RouteUnavailable { port: 7, target: 8 }
        );
        assert_eq!(sw.bandwidth_derate(), 1.0);
    }

    #[test]
    fn enabled_switch_routes_anywhere_with_penalty() {
        let sw = SwitchingNetwork::enabled();
        assert_eq!(sw.route(port(0), Some(pc(31))).unwrap(), pc(31));
        assert!(sw.bandwidth_derate() < 1.0);
        assert!(sw.is_enabled());
    }

    #[test]
    fn default_matches_study_methodology() {
        assert_eq!(SwitchingNetwork::default(), SwitchingNetwork::disabled());
    }

    #[test]
    fn port_set_iteration() {
        let ports = PortSet::new(HbmGeometry::vcu128());
        assert_eq!(ports.iter().count(), 32);
        assert_eq!((&ports).into_iter().count(), 32);
        assert_eq!(ports.port(port(4)).id(), port(4));
    }
}
