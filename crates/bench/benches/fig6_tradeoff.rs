//! Criterion bench for the Fig. 6 pipeline: fault-map construction plus the
//! usable-PC curve family.

use criterion::{criterion_group, criterion_main, Criterion};
use hbm_faults::FaultMap;
use hbm_power::HbmPowerModel;
use hbm_undervolt::{Platform, TradeOffAnalysis};
use hbm_units::Millivolts;

fn bench_fig6(c: &mut Criterion) {
    let platform = Platform::builder().seed(7).build();

    let mut group = c.benchmark_group("fig6_tradeoff");
    group.sample_size(20);
    group.bench_function("fault_map_construction", |b| {
        b.iter(|| {
            std::hint::black_box(FaultMap::from_predictor(
                platform.full_scale_predictor(),
                Millivolts(980),
                Millivolts(810),
                Millivolts(10),
            ))
        });
    });

    let map = FaultMap::from_predictor(
        platform.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
    group.bench_function("usable_pc_curves", |b| {
        b.iter(|| std::hint::black_box(analysis.usable_pc_curves(&hbm_bench::fig6_tolerances())));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
