//! Vendored stand-in for `serde_json`, scoped to what this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the serde
//! stand-in's ordered value tree.
//!
//! Output is deterministic: object keys keep insertion (declaration) order
//! and numbers are printed canonically, so serializing the same value twice
//! yields byte-identical text.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value shapes this workspace produces; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the value shapes this workspace produces.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity literal; match the permissive JS choice.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional marker so integral floats stay floats, the way
        // serde_json prints them.
        out.push_str(&format!("{x:.1}"));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::custom("bad unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("bad unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[2.5,-3],\"c\":\"x\\ny\"}",
        ] {
            let value: Value = from_str(text).unwrap();
            assert_eq!(to_string(&value).unwrap(), text);
        }
    }

    #[test]
    fn pretty_printing_indents() {
        let value: Value = from_str("{\"a\":[1]}").unwrap();
        assert_eq!(
            to_string_pretty(&value).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
