//! Organizational model of an HBM2-enabled device.
//!
//! This crate models the memory side of the platform used by the DATE 2021
//! study *"Understanding Power Consumption and Reliability of High-Bandwidth
//! Memory with Voltage Underscaling"*: a Xilinx XCVU37P FPGA carrying two
//! 4 GB HBM2 stacks. The model reproduces the organization the study's
//! experiments depend on:
//!
//! - two stacks (`HBM0`, `HBM1`) of four stacked DRAM dies each;
//! - 8 independent 128-bit **memory channels** per stack, each split into two
//!   64-bit **pseudo channels** (PCs) with non-overlapping 256 MB arrays —
//!   32 PCs in total;
//! - 32 user-side 256-bit **AXI ports** (one per PC, 4:1 width ratio) with an
//!   optional **switching network** that can route any port to any PC at a
//!   bandwidth cost;
//! - supply-voltage awareness with the study's crash semantics: the device
//!   stops responding below a critical voltage and only a power cycle (which
//!   loses DRAM content) revives it.
//!
//! The memory arrays are sparse and page-allocated, so a full-geometry device
//! costs memory proportional to the footprint actually written. Experiments
//! that walk entire arrays use a scaled [`HbmGeometry`].
//!
//! The crate is purely organizational: *fault* behaviour (reduced-voltage bit
//! flips) is layered on top by the `hbm-faults` crate, and power behaviour by
//! `hbm-power`, keeping each physical concern in its own crate.
//!
//! # Examples
//!
//! ```
//! use hbm_device::{HbmDevice, HbmGeometry, PcIndex, Word256, WordOffset};
//!
//! # fn main() -> Result<(), hbm_device::DeviceError> {
//! let mut device = HbmDevice::new(HbmGeometry::vcu128());
//! let pc = PcIndex::new(4)?;
//! device.write_word(pc, WordOffset(0), Word256::ONES)?;
//! assert_eq!(device.read_word(pc, WordOffset(0))?, Word256::ONES);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod array;
mod axi;
mod device;
mod dram_timing;
mod error;
mod geometry;
mod shard;
mod stack;
mod timing;
mod word;

pub use address::{BankId, ChannelId, DecodedAddress, PcIndex, PortId, RowId, StackId, WordOffset};
pub use array::MemoryArray;
pub use axi::{AxiPort, PortSet, SwitchingNetwork};
pub use device::{DeviceState, HbmDevice, TransientCrashModel, CRASH_FLOOR, NOMINAL_SUPPLY};
pub use dram_timing::{AccessPattern, AccessTimingModel, DramTimings, TimingStretchModel};
pub use error::DeviceError;
pub use geometry::HbmGeometry;
pub use shard::PcShard;
pub use stack::{HbmStack, MemoryChannel, PcStats, PseudoChannel};
pub use timing::{BandwidthModel, ClockConfig};
pub use word::Word256;
