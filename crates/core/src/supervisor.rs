//! The crash-aware resilient sweep runtime.
//!
//! Real undervolting campaigns die: the board browns out near the cliff,
//! a transient crash eats an hour-long sweep, a flaky AXI port wedges one
//! pseudo channel. [`SweepSupervisor`] wraps the [`ReliabilityTester`] so a
//! campaign survives all three:
//!
//! - **checkpointing** — every completed [`VoltagePoint`] is written to a
//!   versioned JSON checkpoint (durably: synced temp file + rename + parent
//!   directory sync, with a copy fallback for cross-filesystem targets), so
//!   a killed process resumes exactly where it stopped;
//! - **retry with backoff** — a transient crash (or a blown per-point
//!   deadline) triggers a power cycle and a bounded-exponential wait
//!   ([`RetryPolicy`]) before the point is re-attempted; after the budget
//!   is exhausted the point is recorded as *skipped*, never silently
//!   dropped;
//! - **quarantine** — a port-attributable device error removes that port
//!   from the active set for the rest of the sweep and records why, so one
//!   bad pseudo channel cannot sink the campaign.
//!
//! Resumption is bit-identical: completed points are loaded from the
//! checkpoint and never re-run, and all model randomness is keyed per
//! `(seed, voltage, pseudo channel)` — so a killed-and-resumed sweep
//! produces exactly the report an uninterrupted run would have
//! (enforced by the `resilience` integration tests).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use hbm_device::DeviceError;
use hbm_device::PortId;
use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::reliability::{
    ReliabilityConfig, ReliabilityReport, ReliabilityTester, SweepCarry, VoltagePoint,
};
use crate::telemetry::{Telemetry, TelemetryEvent};

/// Version stamp of the checkpoint file format. Bumped on any incompatible
/// change to [`SweepCheckpoint`]; resuming from a different version is
/// refused with a [`ExperimentError::Checkpoint`] error.
///
/// Version history: 1 — the original format; 2 — [`VoltagePoint`]
/// throughput fields became optional (`null` for crashed points instead of
/// a fabricated `0.0`); 3 — [`ReliabilityConfig`] gained the
/// fault-field/carry-forward knobs and [`VoltagePoint`] the mask-reuse
/// ratio; 4 — the checkpoint records the mask-kernel backend so resume can
/// refuse a cross-kernel mix, like the fault field.
pub const CHECKPOINT_VERSION: u32 = 4;

/// The supply every recovery power cycle restarts at.
const NOMINAL_RESTART: Millivolts = Millivolts(1200);

/// Wall-clock abstraction so retry backoff and per-point deadlines are
/// testable without real sleeps. Production code uses [`SystemClock`];
/// the backoff/deadline tests use [`TestClock`].
pub trait Clock {
    /// Monotonic milliseconds since an arbitrary origin.
    fn now_ms(&mut self) -> u64;

    /// Blocks for `ms` milliseconds.
    fn sleep_ms(&mut self, ms: u64);
}

/// The real wall clock: monotonic [`Instant`] time and thread sleeps.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&mut self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn sleep_ms(&mut self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A deterministic clock for tests: every `now_ms` reading advances by a
/// configurable tick (so a "slow point" can be simulated), sleeps advance
/// time instantly, and every sleep duration is recorded for assertions on
/// the backoff schedule.
#[derive(Debug, Default)]
pub struct TestClock {
    now: u64,
    tick_ms: u64,
    /// Every `sleep_ms` duration, in call order.
    pub sleeps: Vec<u64>,
}

impl TestClock {
    /// A clock starting at 0 whose readings do not advance by themselves.
    #[must_use]
    pub fn new() -> Self {
        TestClock::default()
    }

    /// A clock that advances `tick_ms` on every `now_ms` reading — each
    /// supervised attempt then appears to take `tick_ms` of wall time,
    /// which is how the deadline tests simulate slow points.
    #[must_use]
    pub fn with_tick(tick_ms: u64) -> Self {
        TestClock {
            tick_ms,
            ..TestClock::default()
        }
    }
}

impl Clock for TestClock {
    fn now_ms(&mut self) -> u64 {
        self.now += self.tick_ms;
        self.now
    }

    fn sleep_ms(&mut self, ms: u64) {
        self.now += ms;
        self.sleeps.push(ms);
    }
}

/// Bounded exponential backoff for transient failures.
///
/// Retry `n` (zero-based) waits `min(base_delay_ms << n, max_delay_ms)`
/// before the next attempt. `max_retries` bounds the number of
/// *re*-attempts: a point is tried at most `1 + max_retries` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Wait before the first retry, in milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single wait, in milliseconds.
    pub max_delay_ms: u64,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default 50 ms → 2 s
    /// exponential window.
    #[must_use]
    pub fn new(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
        }
    }

    /// No retries: the first transient failure skips the point.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy::new(0)
    }

    /// The wait before zero-based retry `retry`:
    /// `min(base_delay_ms * 2^retry, max_delay_ms)`.
    #[must_use]
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let exponent = retry.min(u32::BITS - 1);
        self.base_delay_ms
            .saturating_mul(1u64 << exponent)
            .min(self.max_delay_ms)
    }
}

impl Default for RetryPolicy {
    /// Three retries, 50 ms base, 2 s cap.
    fn default() -> Self {
        RetryPolicy::new(3)
    }
}

/// Why and when a port was removed from the active sweep set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// The quarantined AXI port (= pseudo-channel index).
    pub port: u8,
    /// The sweep voltage at which the failure surfaced.
    pub voltage: Millivolts,
    /// The device error that triggered the quarantine.
    pub reason: String,
}

/// What the supervisor ultimately recorded for one sweep voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointOutcome {
    /// The point completed (possibly as a genuine cliff crash — see
    /// [`VoltagePoint::crashed`]).
    Completed(VoltagePoint),
    /// The point was abandoned after exhausting the retry budget; the
    /// reason names the last failure.
    Skipped {
        /// The last failure before giving up.
        reason: String,
    },
}

/// One supervised sweep voltage: the outcome plus how many attempts it
/// took to get there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisedPoint {
    /// The swept voltage.
    pub voltage: Millivolts,
    /// `run_point` invocations spent on this voltage (1 = first try).
    pub attempts: u32,
    /// What was recorded.
    pub outcome: PointOutcome,
}

impl SupervisedPoint {
    /// The completed measurement, if the point was not skipped.
    #[must_use]
    pub fn completed(&self) -> Option<&VoltagePoint> {
        match &self.outcome {
            PointOutcome::Completed(p) => Some(p),
            PointOutcome::Skipped { .. } => None,
        }
    }
}

/// The on-disk checkpoint: everything needed to validate that a resume
/// belongs to the same campaign, plus the completed prefix of the sweep.
///
/// Durations and paths are plain integers/strings so the file stays
/// readable and the format stays stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCheckpoint {
    /// File format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The experiment that wrote the file.
    pub experiment: String,
    /// The platform seed of the campaign.
    pub seed: u64,
    /// The full [`ReliabilityConfig`] as canonical JSON, compared verbatim
    /// on resume — any config drift invalidates the checkpoint.
    pub config_json: String,
    /// The mask-kernel backend token the campaign runs with
    /// ([`hbm_faults::KernelBackend::as_token`]). Stored separately from
    /// `config_json` so tools can refuse a cross-kernel resume with a
    /// targeted message instead of a generic config-drift error.
    pub kernel: String,
    /// Completed points, in sweep (descending-voltage) order.
    pub points: Vec<SupervisedPoint>,
    /// Ports quarantined so far.
    pub quarantined: Vec<QuarantineRecord>,
}

/// The report of a supervised sweep: the reliability measurements plus the
/// resilience bookkeeping (skips, quarantines, resume/power-cycle counts).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisedReport {
    /// The configuration that produced the report.
    pub config: ReliabilityConfig,
    /// Bits checked per run per pattern over the *original* scope (the
    /// fault-rate denominator; quarantined ports are not subtracted so the
    /// denominator stays comparable across resumed runs).
    pub checked_bits_per_run: u64,
    /// One entry per swept voltage, in sweep order.
    pub points: Vec<SupervisedPoint>,
    /// Ports removed from the sweep, with reasons.
    pub quarantined: Vec<QuarantineRecord>,
    /// Points loaded from the checkpoint instead of being re-run.
    pub resumed_points: usize,
    /// Power cycles spent during this process's portion of the run.
    pub power_cycles: u32,
}

impl PartialEq for SupervisedReport {
    /// `resumed_points` and `power_cycles` describe *how* this process got
    /// the data (one run's history), not the data itself — a resumed run
    /// must compare equal to the uninterrupted run, so equality covers
    /// only the deterministic measurement fields.
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.checked_bits_per_run == other.checked_bits_per_run
            && self.points == other.points
            && self.quarantined == other.quarantined
    }
}

impl SupervisedReport {
    /// The completed (non-skipped) voltage points, in sweep order.
    pub fn completed_points(&self) -> impl Iterator<Item = &VoltagePoint> {
        self.points.iter().filter_map(SupervisedPoint::completed)
    }

    /// The skipped voltages with their reasons, in sweep order.
    pub fn skipped_points(&self) -> impl Iterator<Item = (Millivolts, &str)> {
        self.points.iter().filter_map(|p| match &p.outcome {
            PointOutcome::Skipped { reason } => Some((p.voltage, reason.as_str())),
            PointOutcome::Completed(_) => None,
        })
    }

    /// Projects the completed points into a plain [`ReliabilityReport`]
    /// so every existing analysis (fault rates, onset voltages,
    /// characterization) runs unchanged on supervised data.
    #[must_use]
    pub fn to_reliability(&self) -> ReliabilityReport {
        ReliabilityReport {
            config: self.config.clone(),
            checked_bits_per_run: self.checked_bits_per_run,
            points: self.completed_points().cloned().collect(),
        }
    }
}

/// The resilient sweep runtime: wraps a [`ReliabilityTester`] with
/// checkpointed resume, transient-failure retry and per-port quarantine.
///
/// # Failure taxonomy
///
/// [`ReliabilityTester::run_point`] splits crashes for the supervisor: a
/// crash *below* the platform's crash floor is the physical cliff — an
/// expected, deterministic measurement recorded as a crashed
/// [`VoltagePoint`] — while a crash *at or above* the floor is transient
/// and surfaces as an error. The supervisor power-cycles, backs off per
/// its [`RetryPolicy`] and re-attempts; a port-attributable device error
/// instead quarantines that port and re-attempts immediately with the
/// survivors.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Platform, ReliabilityConfig, RetryPolicy, SweepSupervisor};
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let supervisor = SweepSupervisor::from_config(ReliabilityConfig::quick())?
///     .retry_policy(RetryPolicy::new(2));
/// let report = supervisor.run(&mut platform)?;
/// assert_eq!(report.points.len(), ReliabilityConfig::quick().sweep.len());
/// assert!(report.skipped_points().next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepSupervisor {
    tester: ReliabilityTester,
    retry: RetryPolicy,
    point_deadline_ms: Option<u64>,
    checkpoint_path: Option<String>,
    resume: bool,
    abort_after: Option<usize>,
}

impl SweepSupervisor {
    /// Supervises an existing tester with the default retry policy, no
    /// deadline and no checkpointing.
    #[must_use]
    pub fn new(tester: ReliabilityTester) -> Self {
        SweepSupervisor {
            tester,
            retry: RetryPolicy::default(),
            point_deadline_ms: None,
            checkpoint_path: None,
            resume: false,
            abort_after: None,
        }
    }

    /// Builds the tester from `config` and supervises it.
    ///
    /// # Errors
    ///
    /// Configuration errors from [`ReliabilityConfig::validate`].
    pub fn from_config(config: ReliabilityConfig) -> Result<Self, ExperimentError> {
        Ok(SweepSupervisor::new(ReliabilityTester::new(config)?))
    }

    /// Sets the transient-failure retry policy.
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-point deadline: an attempt that takes longer counts as
    /// a transient failure (its data is discarded and the point retried).
    #[must_use]
    pub fn point_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.point_deadline_ms = Some(deadline_ms);
        self
    }

    /// Checkpoints every completed point to `path` (durable replace:
    /// synced temp file + rename + parent-directory sync).
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<String>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// On run, loads the checkpoint (if the file exists) and skips its
    /// completed points instead of re-running them. Requires a checkpoint
    /// path; a missing file is a fresh start, not an error.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Kill injection for the resume tests: abort with
    /// [`ExperimentError::Interrupted`] once `n` points are checkpointed
    /// (unless the sweep finished first). The abort happens *after* the
    /// checkpoint write — exactly like a process killed between points.
    #[must_use]
    pub fn abort_after(mut self, n: usize) -> Self {
        self.abort_after = Some(n);
        self
    }

    /// The supervised tester.
    #[must_use]
    pub fn tester(&self) -> &ReliabilityTester {
        &self.tester
    }

    /// Runs the supervised sweep on the real wall clock.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O and validation errors, non-transient device/PMBus
    /// errors, and [`ExperimentError::Interrupted`] under
    /// [`SweepSupervisor::abort_after`].
    pub fn run(&self, platform: &mut Platform) -> Result<SupervisedReport, ExperimentError> {
        self.run_with_clock(platform, &mut SystemClock::new())
    }

    /// Runs the supervised sweep on an explicit [`Clock`] (the backoff and
    /// deadline tests inject a [`TestClock`] here).
    ///
    /// # Errors
    ///
    /// See [`SweepSupervisor::run`].
    pub fn run_with_clock(
        &self,
        platform: &mut Platform,
        clock: &mut dyn Clock,
    ) -> Result<SupervisedReport, ExperimentError> {
        self.run_observed(platform, clock, Telemetry::disabled())
    }

    /// [`SweepSupervisor::run_with_clock`] with telemetry: the full sweep
    /// and point lifecycle — attempts, retries, crashes, power cycles,
    /// quarantines, checkpoint writes — is emitted through `telemetry`,
    /// stamped with `clock` readings, and the counter registry tracks
    /// scanned words/masks, retry backoff, power cycles, checkpoint bytes,
    /// per-point wall times and the injector's tile-cache hit ratio.
    ///
    /// Every emission point sits in the supervisor's (single-threaded)
    /// control flow, so for a fixed seed the event stream is identical at
    /// every engine worker count.
    ///
    /// # Errors
    ///
    /// See [`SweepSupervisor::run`].
    pub fn run_observed(
        &self,
        platform: &mut Platform,
        clock: &mut dyn Clock,
        telemetry: &Telemetry,
    ) -> Result<SupervisedReport, ExperimentError> {
        let all_ports = self.tester.scoped_ports(platform)?;
        let checked_bits_per_run = self.tester.checked_bits_per_run(platform, &all_ports);
        let config_json = report_config_json(self.tester.config())?;
        let voltages: Vec<Millivolts> = self.tester.config().sweep.iter().collect();

        let (mut points, mut quarantined) = if self.resume {
            let path = self.checkpoint_path.as_deref().ok_or_else(|| {
                ExperimentError::checkpoint("resume requested without a checkpoint path")
            })?;
            load_checkpoint(path, platform.seed(), &config_json, &voltages)?
        } else {
            (Vec::new(), Vec::new())
        };
        let resumed_points = points.len();
        let cycles_at_start = platform.power_cycle_count();

        let sweep = &self.tester.config().sweep;
        telemetry.emit_at(
            clock.now_ms(),
            TelemetryEvent::SweepStarted {
                experiment: "supervised-sweep".to_owned(),
                seed: platform.seed(),
                points: voltages.len() as u64,
                from_mv: sweep.from().as_u32(),
                to_mv: sweep.down_to().as_u32(),
                kernel: self.tester.config().kernel.as_token().to_owned(),
            },
        );

        let mut active: Vec<PortId> = all_ports
            .iter()
            .copied()
            .filter(|p| quarantined.iter().all(|q| q.port != p.as_u8()))
            .collect();

        // The coupled-field carry always starts empty — including on
        // resume, where the pre-crash working set is gone. The first
        // post-resume point rebuilds it from scratch, so resumed and
        // uninterrupted runs stay bit-identical.
        let mut carry = SweepCarry::new();
        for &voltage in voltages.iter().skip(points.len()) {
            let point = self.run_supervised_point(
                platform,
                clock,
                voltage,
                &mut active,
                &mut quarantined,
                &mut carry,
                telemetry,
            )?;
            points.push(point);
            if let Some(path) = &self.checkpoint_path {
                let checkpoint = SweepCheckpoint {
                    version: CHECKPOINT_VERSION,
                    experiment: "supervised-sweep".to_owned(),
                    seed: platform.seed(),
                    config_json: config_json.clone(),
                    kernel: self.tester.config().kernel.as_token().to_owned(),
                    points: points.clone(),
                    quarantined: quarantined.clone(),
                };
                let bytes = write_checkpoint(path, &checkpoint)?;
                telemetry.metrics().add_checkpoint(bytes);
                telemetry.emit_at(
                    clock.now_ms(),
                    TelemetryEvent::CheckpointWritten {
                        path: path.clone(),
                        bytes,
                        points: points.len() as u64,
                    },
                );
            }
            if let Some(limit) = self.abort_after {
                if points.len() - resumed_points >= limit && points.len() < voltages.len() {
                    return Err(ExperimentError::Interrupted {
                        completed_points: points.len(),
                    });
                }
            }
        }

        let (hits, misses) = platform.injector().tile_cache_stats();
        telemetry.metrics().set_tile_cache(hits, misses);
        let (dense, sparse) = platform.injector().kernel_dispatch_stats();
        telemetry.metrics().set_kernel_dispatch(dense, sparse);
        let power_cycles = platform.power_cycle_count() - cycles_at_start;
        telemetry
            .metrics()
            .add_power_cycles(u64::from(power_cycles));
        let completed = points.iter().filter(|p| p.completed().is_some()).count();
        telemetry.emit_at(
            clock.now_ms(),
            TelemetryEvent::SweepCompleted {
                completed: completed as u64,
                skipped: (points.len() - completed) as u64,
                quarantined: quarantined.len() as u64,
            },
        );

        Ok(SupervisedReport {
            config: self.tester.config().clone(),
            checked_bits_per_run,
            points,
            quarantined,
            resumed_points,
            power_cycles,
        })
    }

    /// Attempts one voltage until it completes, its retry budget runs out,
    /// or every port is quarantined.
    ///
    /// Event timestamps reuse the attempt's own `started`/`elapsed` clock
    /// readings (no extra `now_ms` calls inside the attempt loop), so the
    /// deadline arithmetic is exactly what the events report.
    #[allow(clippy::too_many_arguments)]
    fn run_supervised_point(
        &self,
        platform: &mut Platform,
        clock: &mut dyn Clock,
        voltage: Millivolts,
        active: &mut Vec<PortId>,
        quarantined: &mut Vec<QuarantineRecord>,
        carry: &mut SweepCarry,
        telemetry: &Telemetry,
    ) -> Result<SupervisedPoint, ExperimentError> {
        let voltage_mv = voltage.as_u32();
        let mut attempts = 0u32;
        loop {
            if active.is_empty() {
                telemetry.emit(TelemetryEvent::PointSkipped {
                    voltage_mv,
                    attempts,
                    reason: "every port in scope is quarantined".to_owned(),
                });
                return Ok(SupervisedPoint {
                    voltage,
                    attempts,
                    outcome: PointOutcome::Skipped {
                        reason: "every port in scope is quarantined".to_owned(),
                    },
                });
            }
            attempts += 1;
            let started = clock.now_ms();
            telemetry.emit_at(
                started,
                TelemetryEvent::PointStarted {
                    voltage_mv,
                    attempt: attempts,
                },
            );
            let result = if self.tester.uses_carry() {
                self.tester
                    .run_point_carried(platform, active, voltage, carry, telemetry)
            } else {
                self.tester
                    .run_point_observed(platform, active, voltage, telemetry)
            };
            let elapsed = clock.now_ms().saturating_sub(started);
            let end = started + elapsed;
            telemetry.metrics().record_point_wall_ms(elapsed);

            let failure = match result {
                Ok(point) => match self.point_deadline_ms {
                    Some(deadline) if elapsed > deadline => {
                        format!("point took {elapsed} ms, over the {deadline} ms deadline")
                    }
                    _ => {
                        if point.crashed {
                            telemetry.emit_at(
                                end,
                                TelemetryEvent::DeviceCrashed {
                                    voltage_mv,
                                    attempt: attempts,
                                    transient: false,
                                },
                            );
                            telemetry.emit_at(
                                end,
                                TelemetryEvent::PowerCycled {
                                    restart_mv: NOMINAL_RESTART.as_u32(),
                                    cycle: platform.power_cycle_count(),
                                },
                            );
                        }
                        telemetry.emit_at(
                            end,
                            TelemetryEvent::PointCompleted {
                                voltage_mv,
                                attempt: attempts,
                                crashed: point.crashed,
                                mean_faults: point.total_mean_faults(),
                            },
                        );
                        return Ok(SupervisedPoint {
                            voltage,
                            attempts,
                            outcome: PointOutcome::Completed(point),
                        });
                    }
                },
                Err(e) => {
                    if let Some(port) = quarantinable_port(&e) {
                        // A port-attributable fault: pull the port, record
                        // why, and re-attempt immediately with the
                        // survivors — no backoff, and no charge against
                        // the transient retry budget (the loop terminates
                        // because `active` shrinks).
                        active.retain(|p| p.as_u8() != port);
                        telemetry.emit_at(
                            end,
                            TelemetryEvent::PortQuarantined {
                                port,
                                voltage_mv,
                                reason: e.to_string(),
                            },
                        );
                        quarantined.push(QuarantineRecord {
                            port,
                            voltage,
                            reason: e.to_string(),
                        });
                        // The carry may hold a working set for the pulled
                        // port; dropping it wholesale is always safe.
                        carry.clear();
                        attempts -= 1;
                        continue;
                    }
                    if !e.is_crash() {
                        return Err(e);
                    }
                    telemetry.emit_at(
                        end,
                        TelemetryEvent::DeviceCrashed {
                            voltage_mv,
                            attempt: attempts,
                            transient: true,
                        },
                    );
                    e.to_string()
                }
            };

            // Transient failure: recover the platform, then either give up
            // (budget exhausted) or back off and go again. The carry is
            // dropped on every failure — the next carried point rebuilds
            // from scratch, keeping recovery semantics identical to the
            // per-voltage path.
            carry.clear();
            if attempts > self.retry.max_retries {
                if platform.is_crashed() {
                    platform.power_cycle(NOMINAL_RESTART)?;
                    telemetry.emit_at(
                        end,
                        TelemetryEvent::PowerCycled {
                            restart_mv: NOMINAL_RESTART.as_u32(),
                            cycle: platform.power_cycle_count(),
                        },
                    );
                }
                telemetry.emit_at(
                    end,
                    TelemetryEvent::PointSkipped {
                        voltage_mv,
                        attempts,
                        reason: format!("gave up after {attempts} attempt(s): {failure}"),
                    },
                );
                return Ok(SupervisedPoint {
                    voltage,
                    attempts,
                    outcome: PointOutcome::Skipped {
                        reason: format!("gave up after {attempts} attempt(s): {failure}"),
                    },
                });
            }
            let delay = self.retry.delay_ms(attempts - 1);
            telemetry.emit_at(
                end,
                TelemetryEvent::RetryScheduled {
                    voltage_mv,
                    attempt: attempts,
                    delay_ms: delay,
                    reason: failure,
                },
            );
            telemetry.metrics().add_retry(delay);
            clock.sleep_ms(delay);
            platform.power_cycle(NOMINAL_RESTART)?;
            telemetry.emit_at(
                end + delay,
                TelemetryEvent::PowerCycled {
                    restart_mv: NOMINAL_RESTART.as_u32(),
                    cycle: platform.power_cycle_count(),
                },
            );
        }
    }
}

/// The port a device error is attributable to, if quarantining that port
/// could let the sweep continue.
fn quarantinable_port(e: &ExperimentError) -> Option<u8> {
    match e {
        ExperimentError::Device(
            DeviceError::PortDisabled { index } | DeviceError::InvalidPort { index },
        ) => Some(*index),
        _ => None,
    }
}

/// The canonical config fingerprint stored in (and compared against) the
/// checkpoint.
fn report_config_json(config: &ReliabilityConfig) -> Result<String, ExperimentError> {
    serde_json::to_string(config)
        .map_err(|e| ExperimentError::checkpoint(format!("serializing the config: {e}")))
}

/// Durably replaces the checkpoint file and reports how many bytes were
/// written. See [`persist_atomic`] for the crash-safety contract.
fn write_checkpoint(path: &str, checkpoint: &SweepCheckpoint) -> Result<u64, ExperimentError> {
    let json = serde_json::to_string_pretty(checkpoint)
        .map_err(|e| ExperimentError::checkpoint(format!("serializing the checkpoint: {e}")))?;
    persist_atomic(path, json.as_bytes())
}

/// Durably and atomically replaces `path` with `contents`: write a sibling
/// temp file, fsync it, then rename it over the target and fsync the parent
/// directory, so neither a kill mid-write nor a power loss right after the
/// rename can corrupt or lose an existing checkpoint.
///
/// When the rename fails with `EXDEV` (`path` and the temp file ended up on
/// different filesystems — e.g. the checkpoint directory is a bind mount),
/// falls back to writing the target directly and syncing it. That loses
/// atomicity but keeps durability; the alternative was failing the sweep.
fn persist_atomic(path: &str, contents: &[u8]) -> Result<u64, ExperimentError> {
    persist_atomic_with(path, contents, |tmp, target| std::fs::rename(tmp, target))
}

/// [`persist_atomic`] with an injectable rename, so tests can force the
/// cross-device fallback without an actual second filesystem.
fn persist_atomic_with<F>(path: &str, contents: &[u8], rename: F) -> Result<u64, ExperimentError>
where
    F: Fn(&Path, &Path) -> std::io::Result<()>,
{
    let target = Path::new(path);
    let tmp = format!("{path}.tmp");
    let tmp_path = Path::new(&tmp);
    let write_synced = |dest: &Path| -> std::io::Result<()> {
        let mut file = std::fs::File::create(dest)?;
        file.write_all(contents)?;
        file.sync_all()
    };
    write_synced(tmp_path)
        .map_err(|e| ExperimentError::checkpoint(format!("writing {tmp}: {e}")))?;
    match rename(tmp_path, target) {
        Ok(()) => {}
        Err(e) if is_cross_device(&e) => {
            // Cross-filesystem rename: write the target in place instead.
            write_synced(target)
                .map_err(|e| ExperimentError::checkpoint(format!("writing {path}: {e}")))?;
            let _ = std::fs::remove_file(tmp_path);
        }
        Err(e) => {
            return Err(ExperimentError::checkpoint(format!(
                "replacing {path}: {e}"
            )));
        }
    }
    // Make the rename itself durable. Directory fsync is best-effort: some
    // filesystems refuse to open directories for syncing.
    let parent = match target.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir,
        _ => Path::new("."),
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
    Ok(contents.len() as u64)
}

/// Whether an I/O error is `EXDEV` (rename across filesystem boundaries).
fn is_cross_device(e: &std::io::Error) -> bool {
    let exdev = if cfg!(windows) { 17 } else { 18 };
    e.raw_os_error() == Some(exdev)
}

/// Loads and validates a checkpoint for resumption. A missing file is a
/// fresh start; anything else that does not match this campaign (version,
/// seed, config, sweep prefix) is an error — resuming someone else's
/// checkpoint would silently mix incompatible measurements.
fn load_checkpoint(
    path: &str,
    seed: u64,
    config_json: &str,
    voltages: &[Millivolts],
) -> Result<(Vec<SupervisedPoint>, Vec<QuarantineRecord>), ExperimentError> {
    if !Path::new(path).exists() {
        return Ok((Vec::new(), Vec::new()));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| ExperimentError::checkpoint(format!("reading {path}: {e}")))?;
    let checkpoint: SweepCheckpoint = serde_json::from_str(&text)
        .map_err(|e| ExperimentError::checkpoint(format!("parsing {path}: {e}")))?;
    if checkpoint.version != CHECKPOINT_VERSION {
        return Err(ExperimentError::checkpoint(format!(
            "{path} is format version {}, this binary writes version {CHECKPOINT_VERSION}",
            checkpoint.version
        )));
    }
    if checkpoint.experiment != "supervised-sweep" {
        return Err(ExperimentError::checkpoint(format!(
            "{path} belongs to experiment {:?}, not a supervised sweep",
            checkpoint.experiment
        )));
    }
    if checkpoint.seed != seed {
        return Err(ExperimentError::checkpoint(format!(
            "{path} was recorded with seed {}, the platform has seed {seed}",
            checkpoint.seed
        )));
    }
    if checkpoint.config_json != config_json {
        return Err(ExperimentError::checkpoint(format!(
            "{path} was recorded under a different sweep configuration"
        )));
    }
    if checkpoint.points.len() > voltages.len() {
        return Err(ExperimentError::checkpoint(format!(
            "{path} holds {} points but the sweep has only {}",
            checkpoint.points.len(),
            voltages.len()
        )));
    }
    for (expected, point) in voltages.iter().zip(&checkpoint.points) {
        if point.voltage != *expected {
            return Err(ExperimentError::checkpoint(format!(
                "{path} records {} where the sweep expects {expected}",
                point.voltage
            )));
        }
    }
    Ok((checkpoint.points, checkpoint.quarantined))
}

/// One-paragraph summary of a supervised run for logs and `hbmctl`.
#[must_use]
pub fn summarize(report: &SupervisedReport) -> String {
    let completed = report.completed_points().count();
    let skipped = report.points.len() - completed;
    let mut out = format!(
        "{} point(s): {completed} completed, {skipped} skipped, {} resumed from checkpoint, \
         {} power cycle(s)",
        report.points.len(),
        report.resumed_points,
        report.power_cycles
    );
    for q in &report.quarantined {
        write!(
            out,
            "\nquarantined port {} at {}: {}",
            q.port, q.voltage, q.reason
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::TestScope;
    use crate::sweep::VoltageSweep;
    use hbm_device::TransientCrashModel;
    use hbm_faults::FaultFieldMode;
    use hbm_traffic::DataPattern;

    fn tiny_config(from: u32, to: u32) -> ReliabilityConfig {
        let mut config = ReliabilityConfig::quick();
        config.sweep = VoltageSweep::new(Millivolts(from), Millivolts(to), Millivolts(10)).unwrap();
        config.batch_size = 1;
        config.words_per_pc = Some(16);
        config.patterns = vec![DataPattern::AllOnes];
        config
    }

    fn temp_path(stem: &str) -> String {
        std::env::temp_dir()
            .join(format!("hbm-supervisor-{stem}-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn backoff_schedule_is_bounded_exponential() {
        let policy = RetryPolicy {
            max_retries: 6,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
        };
        let delays: Vec<u64> = (0..7).map(|r| policy.delay_ms(r)).collect();
        assert_eq!(delays, [50, 100, 200, 400, 800, 1600, 2000]);
        // Deep retries saturate at the cap instead of overflowing.
        assert_eq!(policy.delay_ms(63), 2_000);
        assert_eq!(policy.delay_ms(200), 2_000);
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn transient_crashes_retry_with_recorded_backoff_then_skip() {
        // probability 1.0 inside the window: every attempt at 840 mV
        // crashes, so the supervisor must walk the full backoff schedule
        // and then record the point as skipped — never error out.
        let mut platform = Platform::builder()
            .seed(7)
            .transient_crashes(TransientCrashModel::new(1.0, Millivolts(50)))
            .build();
        let supervisor = SweepSupervisor::from_config(tiny_config(840, 840))
            .unwrap()
            .retry_policy(RetryPolicy {
                max_retries: 2,
                base_delay_ms: 50,
                max_delay_ms: 2_000,
            });
        let mut clock = TestClock::new();
        let report = supervisor
            .run_with_clock(&mut platform, &mut clock)
            .unwrap();

        assert_eq!(clock.sleeps, [50, 100], "one sleep per retry");
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].attempts, 3);
        let (voltage, reason) = report.skipped_points().next().unwrap();
        assert_eq!(voltage, Millivolts(840));
        assert!(reason.contains("crashed"), "reason: {reason}");
        // The supervisor left the platform recovered, not crashed.
        assert!(!platform.is_crashed());
        assert!(report.power_cycles >= 3);
    }

    #[test]
    fn point_deadline_discards_slow_attempts() {
        // Every now_ms reading advances 10 ms, so each attempt appears to
        // take 10 ms against a 5 ms deadline: the data is discarded and
        // the point eventually skipped.
        let mut platform = Platform::builder().seed(7).build();
        let supervisor = SweepSupervisor::from_config(tiny_config(900, 900))
            .unwrap()
            .retry_policy(RetryPolicy::new(1))
            .point_deadline_ms(5);
        let mut clock = TestClock::with_tick(10);
        let report = supervisor
            .run_with_clock(&mut platform, &mut clock)
            .unwrap();

        assert_eq!(clock.sleeps.len(), 1);
        let (_, reason) = report.skipped_points().next().unwrap();
        assert!(reason.contains("deadline"), "reason: {reason}");
        assert_eq!(report.points[0].attempts, 2);
    }

    #[test]
    fn disabled_port_is_quarantined_and_the_sweep_continues() {
        let mut platform = Platform::builder().seed(7).build();
        platform.enable_ports(2);
        let mut config = tiny_config(900, 890);
        config.scope = TestScope::Ports(vec![0, 1, 2]);
        let supervisor = SweepSupervisor::from_config(config).unwrap();
        let report = supervisor.run(&mut platform).unwrap();

        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].port, 2);
        assert_eq!(report.quarantined[0].voltage, Millivolts(900));
        assert!(report.quarantined[0].reason.contains("disabled"));
        // Both points completed over the surviving ports.
        assert_eq!(report.completed_points().count(), 2);
        for point in report.completed_points() {
            assert_eq!(point.outcomes[0].per_port.len(), 2);
        }
        // Quarantine attempts are not charged to the retry budget.
        assert_eq!(report.points[0].attempts, 1);
    }

    #[test]
    fn all_ports_quarantined_yields_skipped_points() {
        let mut platform = Platform::builder().seed(7).build();
        platform.enable_ports(1);
        let mut config = tiny_config(900, 900);
        config.scope = TestScope::Ports(vec![3, 4]);
        let supervisor = SweepSupervisor::from_config(config).unwrap();
        let report = supervisor.run(&mut platform).unwrap();
        assert_eq!(report.quarantined.len(), 2);
        let (_, reason) = report.skipped_points().next().unwrap();
        assert!(reason.contains("quarantined"), "reason: {reason}");
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let mut platform = Platform::builder().seed(7).build();
        let supervisor = SweepSupervisor::from_config(tiny_config(900, 880)).unwrap();
        let report = supervisor.run(&mut platform).unwrap();
        let checkpoint = SweepCheckpoint {
            version: CHECKPOINT_VERSION,
            experiment: "supervised-sweep".to_owned(),
            seed: 7,
            config_json: report_config_json(supervisor.tester().config()).unwrap(),
            kernel: supervisor.tester().config().kernel.as_token().to_owned(),
            points: report.points.clone(),
            quarantined: vec![QuarantineRecord {
                port: 3,
                voltage: Millivolts(890),
                reason: "port 3 is disabled".to_owned(),
            }],
        };
        let json = serde_json::to_string_pretty(&checkpoint).unwrap();
        let back: SweepCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn resume_validates_the_checkpoint_belongs_to_the_campaign() {
        let path = temp_path("validate");
        let _ = std::fs::remove_file(&path);

        let config = tiny_config(900, 880);
        let mut platform = Platform::builder().seed(7).build();
        let supervisor = SweepSupervisor::from_config(config.clone())
            .unwrap()
            .checkpoint(&path)
            .abort_after(1);
        let err = supervisor.run(&mut platform).unwrap_err();
        assert_eq!(
            err,
            ExperimentError::Interrupted {
                completed_points: 1
            }
        );

        // Wrong seed.
        let mut other_seed = Platform::builder().seed(8).build();
        let resumer = SweepSupervisor::from_config(config.clone())
            .unwrap()
            .checkpoint(&path)
            .resume(true);
        let err = resumer.run(&mut other_seed).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");

        // Drifted config.
        let mut drifted = config.clone();
        drifted.batch_size = 2;
        let err = SweepSupervisor::from_config(drifted)
            .unwrap()
            .checkpoint(&path)
            .resume(true)
            .run(&mut Platform::builder().seed(7).build())
            .unwrap_err();
        assert!(err.to_string().contains("configuration"), "{err}");

        // Foreign version.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut checkpoint: SweepCheckpoint = serde_json::from_str(&text).unwrap();
        checkpoint.version = 99;
        std::fs::write(&path, serde_json::to_string(&checkpoint).unwrap()).unwrap();
        let err = SweepSupervisor::from_config(config)
            .unwrap()
            .checkpoint(&path)
            .resume(true)
            .run(&mut Platform::builder().seed(7).build())
            .unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_and_resumed_run_matches_the_uninterrupted_run() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let config = tiny_config(850, 790); // crosses the crash cliff

        let mut reference_platform = Platform::builder().seed(7).build();
        let reference = SweepSupervisor::from_config(config.clone())
            .unwrap()
            .run(&mut reference_platform)
            .unwrap();

        let supervisor = SweepSupervisor::from_config(config)
            .unwrap()
            .checkpoint(&path)
            .resume(true);
        let mut platform = Platform::builder().seed(7).build();
        let err = supervisor
            .clone()
            .abort_after(2)
            .run(&mut platform)
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Interrupted { .. }));

        // A fresh process resumes from the checkpoint.
        let mut resumed_platform = Platform::builder().seed(7).build();
        let resumed = supervisor.run(&mut resumed_platform).unwrap();
        assert_eq!(resumed.resumed_points, 2);
        assert_eq!(resumed, reference, "resume must be bit-identical");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn coupled_killed_and_resumed_run_matches_the_uninterrupted_run() {
        // The incremental carry is process-local state that a checkpoint
        // cannot persist. A resumed coupled run starts with an empty carry
        // and must still be bit-identical to the uninterrupted one.
        let path = temp_path("resume-coupled");
        let _ = std::fs::remove_file(&path);
        let mut config = tiny_config(850, 790); // crosses the crash cliff
        config.fault_field = FaultFieldMode::MonotoneCoupled;

        let mut reference_platform = Platform::builder().seed(7).build();
        let reference = SweepSupervisor::from_config(config.clone())
            .unwrap()
            .run(&mut reference_platform)
            .unwrap();

        let supervisor = SweepSupervisor::from_config(config)
            .unwrap()
            .checkpoint(&path)
            .resume(true);
        let mut platform = Platform::builder().seed(7).build();
        let err = supervisor
            .clone()
            .abort_after(2)
            .run(&mut platform)
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Interrupted { .. }));

        let mut resumed_platform = Platform::builder().seed(7).build();
        let resumed = supervisor.run(&mut resumed_platform).unwrap();
        assert_eq!(resumed.resumed_points, 2);
        assert_eq!(resumed, reference, "coupled resume must be bit-identical");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_names_quarantines() {
        let mut platform = Platform::builder().seed(7).build();
        platform.enable_ports(2);
        let mut config = tiny_config(900, 900);
        config.scope = TestScope::Ports(vec![0, 2]);
        let report = SweepSupervisor::from_config(config)
            .unwrap()
            .run(&mut platform)
            .unwrap();
        let summary = summarize(&report);
        assert!(summary.contains("1 completed"), "{summary}");
        assert!(summary.contains("quarantined port 2"), "{summary}");
    }

    #[test]
    fn persist_atomic_replaces_durably_and_reports_bytes() {
        let path = temp_path("persist");
        std::fs::write(&path, "old contents").unwrap();
        let bytes = persist_atomic(&path, b"new contents").unwrap();
        assert_eq!(bytes, 12);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents");
        assert!(
            !Path::new(&format!("{path}.tmp")).exists(),
            "temp file must be consumed by the rename"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_atomic_falls_back_to_copy_on_cross_device_rename() {
        // Simulate a checkpoint path on another filesystem: the first
        // rename fails with EXDEV, which `persist_atomic` must survive by
        // writing the target directly.
        let path = temp_path("exdev");
        std::fs::write(&path, "old contents").unwrap();
        let exdev = if cfg!(windows) { 17 } else { 18 };
        let bytes = persist_atomic_with(&path, b"fallback contents", |_, _| {
            Err(std::io::Error::from_raw_os_error(exdev))
        })
        .unwrap();
        assert_eq!(bytes, 17);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "fallback contents");
        assert!(
            !Path::new(&format!("{path}.tmp")).exists(),
            "temp file must be cleaned up after the fallback"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persist_atomic_propagates_non_exdev_rename_errors() {
        let path = temp_path("rename-err");
        let err = persist_atomic_with(&path, b"data", |_, _| {
            Err(std::io::Error::from_raw_os_error(13)) // EACCES
        })
        .unwrap_err();
        assert!(matches!(err, ExperimentError::Checkpoint { .. }));
        let _ = std::fs::remove_file(format!("{path}.tmp"));
        let _ = std::fs::remove_file(&path);
    }
}
