//! Vendored `Serialize`/`Deserialize` derive macros for the serde stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available in
//! the offline build environment) and emits value-tree conversions:
//!
//! - named-field structs ↔ objects with declaration-ordered keys;
//! - newtype structs ↔ the inner value; other tuple structs ↔ arrays;
//! - unit enum variants ↔ `"Name"`, newtype variants ↔ `{"Name": value}`,
//!   tuple variants ↔ `{"Name": [..]}`, struct variants ↔ `{"Name": {..}}`
//!   (serde's externally-tagged convention).
//!
//! Generic types and `#[serde(...)]` attributes are not supported; the
//! workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the stand-in `serde::Serialize` (value-tree construction).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("derived Deserialize impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde stand-in derive supports structs and enums, found `{other}`"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Field names of a brace-delimited field list, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: everything up to the next top-level comma.
        let mut depth = 0u32;
        while let Some(tt) = tokens.get(pos) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    names
}

/// Number of fields in a paren-delimited (tuple) field list.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0u32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for tt in &tokens {
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while let Some(tt) = tokens.get(pos) {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|variant| {
            let v = &variant.name;
            match &variant.fields {
                Fields::Unit => format!(
                    "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{v}(field0) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(field0))]),"
                ),
                Fields::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|i| format!("field{i}")).collect();
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Value::Array(::std::vec![{}]))]),",
                        binders.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(field_names) => {
                    let entries: Vec<String> = field_names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Value::Object(::std::vec![{}]))]),",
                        field_names.join(", "),
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 #[allow(unreachable_patterns)]\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn named_struct_constructor(path: &str, field_names: &[String], source: &str) -> String {
    let fields: Vec<String> = field_names
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::field({source}, \"{f}\")?)?")
        })
        .collect();
    format!("{path} {{ {} }}", fields.join(", "))
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(field_names) => format!(
            "::std::result::Result::Ok({})",
            named_struct_constructor(name, field_names, "value")
        ),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong arity for tuple struct {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                v = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|variant| {
            let v = &variant.name;
            match &variant.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => format!(
                    "\"{v}\" => ::std::result::Result::Ok(\
                     {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for variant {v}\"))?;\n\
                             if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong arity for variant {v}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(field_names) => format!(
                    "\"{v}\" => ::std::result::Result::Ok({}),",
                    named_struct_constructor(&format!("{name}::{v}"), field_names, "inner")
                ),
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
