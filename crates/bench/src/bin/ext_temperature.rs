//! Extension experiment: temperature sensitivity of undervolting faults.
//!
//! The study holds the stacks at 35 ± 1 °C; this sweep shows how the fault
//! onset voltage and the mid-region fault rate move with operating
//! temperature under the model's 1 mV/°C weak-bit sensitivity.

use hbm_faults::FaultModelParams;
use hbm_undervolt::characterization::temperature_sweep;
use hbm_units::Celsius;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);
    let temps: Vec<Celsius> = [0.0, 25.0, 35.0, 45.0, 55.0, 70.0, 85.0]
        .into_iter()
        .map(Celsius)
        .collect();
    let points = temperature_sweep(&FaultModelParams::date21(), seed, &temps);

    println!("Temperature sensitivity (seed {seed}; study ambient: 35 °C)\n");
    println!("{:>8} {:>12} {:>16}", "T", "fault onset", "rate @ 0.90 V");
    for p in points {
        println!(
            "{:>8} {:>12} {:>16.3e}",
            format!("{}", p.temperature),
            p.onset.map_or("none".to_owned(), |v| v.to_string()),
            p.rate_at_900mv.as_f64(),
        );
    }
    println!("\nhotter silicon faults earlier: budget guardband for the worst case.");
}
