//! The top-level HBM device: two stacks, 32 AXI ports, a switching network
//! and the study's supply-voltage crash semantics.

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::address::{PcIndex, PortId, StackId, WordOffset};
use crate::axi::{PortSet, SwitchingNetwork};
use crate::error::DeviceError;
use crate::geometry::HbmGeometry;
use crate::stack::{HbmStack, PcStats, PseudoChannel};
use crate::word::Word256;

/// Operational state of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceState {
    /// Normal operation.
    Operational,
    /// The device stopped responding because the supply fell below the
    /// critical voltage. The study observes that restoring the voltage does
    /// *not* revive the device — only a power-down and restart does — so
    /// this state is latched until [`HbmDevice::power_cycle`].
    Crashed,
}

/// Nominal HBM supply voltage (V_nom = 1.20 V).
pub const NOMINAL_SUPPLY: Millivolts = Millivolts(1200);

/// Supply voltage below which the device stops responding. The study finds
/// V_critical = 0.81 V is the minimum working voltage: operation continues
/// *at* 0.81 V and the device crashes *below* it.
///
/// This is the *default* crash floor; a specimen's actual floor is
/// configurable via [`HbmDevice::set_crash_floor`].
pub const CRASH_FLOOR: Millivolts = Millivolts(810);

/// Optional stochastic transient-failure model near the crash cliff.
///
/// Real silicon driven just above its minimum working voltage does not fail
/// deterministically: the study power-cycled and re-ran points that hung or
/// crashed sporadically. This knob reproduces that nuisance regime for
/// fault-injection testing of the resilient sweep runtime: every time the
/// supply is commanded into the window `[crash_floor, crash_floor + window)`
/// while the device is operational, the device crashes with probability
/// `probability`.
///
/// Draws are deterministic: they are keyed by `(seed, voltage, attempt)`
/// where `attempt` counts the set-supply calls at that exact voltage over
/// the device's lifetime. A retry after a power cycle therefore sees a
/// *fresh* draw (the attempt index advanced), while two identical runs see
/// identical crash schedules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientCrashModel {
    /// Per-set-supply crash probability inside the window, in `[0, 1]`.
    pub probability: f64,
    /// Width of the fragile band above the crash floor.
    pub window: Millivolts,
}

impl TransientCrashModel {
    /// Creates a model after validating the probability.
    ///
    /// # Panics
    ///
    /// Panics unless `probability` is in `[0, 1]`.
    #[must_use]
    pub fn new(probability: f64, window: Millivolts) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "transient crash probability must be in [0, 1], got {probability}"
        );
        TransientCrashModel {
            probability,
            window,
        }
    }
}

/// SplitMix64: the device's local deterministic mixer for transient-crash
/// draws and power-up background content. Kept here (rather than depending
/// on the fault crate's ChaCha streams) so the device stays a leaf crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(seed, voltage, attempt)`.
fn unit_draw(seed: u64, voltage_mv: u32, attempt: u32) -> f64 {
    let key = (u64::from(voltage_mv) << 32) | u64::from(attempt);
    let mixed = splitmix64(seed.wrapping_add(splitmix64(key)));
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// The complete HBM-enabled device model.
///
/// Owns the memory-side hierarchy (stacks → channels → pseudo channels), the
/// user-side AXI ports with their optional switching network, and tracks the
/// supply voltage with the crash latch the study reports.
///
/// This model is *organizationally* faithful but fault-free: reduced-voltage
/// bit flips are layered on by the `hbm-faults` crate so each physical
/// concern stays in its own crate.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmDevice, HbmGeometry, PortId, Word256, WordOffset};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut device = HbmDevice::new(HbmGeometry::vcu128());
/// let port = PortId::new(0)?;
/// device.axi_write(port, WordOffset(42), Word256::ONES)?;
/// assert_eq!(device.axi_read(port, WordOffset(42))?, Word256::ONES);
///
/// // Below V_critical the device crashes and stays crashed …
/// device.set_supply(Millivolts(800));
/// assert!(device.is_crashed());
/// device.set_supply(Millivolts(1200));
/// assert!(device.axi_read(port, WordOffset(42)).is_err());
///
/// // … until a power cycle, which loses DRAM content.
/// device.power_cycle(Millivolts(1200));
/// assert_eq!(device.axi_read(port, WordOffset(42))?, Word256::ZERO);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HbmDevice {
    geometry: HbmGeometry,
    stacks: Vec<HbmStack>,
    ports: PortSet,
    switch: SwitchingNetwork,
    supply: Millivolts,
    state: DeviceState,
    crash_floor: Millivolts,
    transient: Option<TransientCrashModel>,
    transient_seed: u64,
    transient_attempts: std::collections::HashMap<u32, u32>,
    power_cycles: u32,
}

impl HbmDevice {
    /// Creates a device at the nominal supply voltage with all ports enabled
    /// and the switching network disabled (the study's configuration).
    #[must_use]
    pub fn new(geometry: HbmGeometry) -> Self {
        HbmDevice {
            geometry,
            stacks: (0..geometry.stacks())
                .map(|s| HbmStack::new(geometry, StackId(s)))
                .collect(),
            ports: PortSet::new(geometry),
            switch: SwitchingNetwork::disabled(),
            supply: NOMINAL_SUPPLY,
            state: DeviceState::Operational,
            crash_floor: CRASH_FLOOR,
            transient: None,
            transient_seed: 0,
            transient_attempts: std::collections::HashMap::new(),
            power_cycles: 0,
        }
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.geometry
    }

    /// Current supply voltage as last applied by the regulator.
    #[must_use]
    pub fn supply(&self) -> Millivolts {
        self.supply
    }

    /// The specimen's crash floor (`v_crash`): the supply below which the
    /// device stops responding. Defaults to [`CRASH_FLOOR`].
    #[must_use]
    pub fn crash_floor(&self) -> Millivolts {
        self.crash_floor
    }

    /// Reconfigures the crash floor. Takes effect at the next
    /// [`HbmDevice::set_supply`]; it does not retroactively crash or revive
    /// the device at the present supply.
    pub fn set_crash_floor(&mut self, floor: Millivolts) {
        self.crash_floor = floor;
    }

    /// Installs (or removes, with `None`) the stochastic transient-crash
    /// model; `seed` keys its deterministic draws.
    pub fn set_transient_crashes(&mut self, model: Option<TransientCrashModel>, seed: u64) {
        self.transient = model;
        self.transient_seed = seed;
    }

    /// The installed transient-crash model, if any.
    #[must_use]
    pub fn transient_crashes(&self) -> Option<TransientCrashModel> {
        self.transient
    }

    /// Number of power cycles this device has been through.
    #[must_use]
    pub fn power_cycle_count(&self) -> u32 {
        self.power_cycles
    }

    /// Applies a new supply voltage. Falling below the crash floor latches
    /// the crashed state; raising the voltage afterwards does not recover
    /// the device (see [`HbmDevice::power_cycle`]). With a
    /// [`TransientCrashModel`] installed, commanding a supply inside the
    /// fragile window above the floor may also crash the device
    /// stochastically (deterministic per `(seed, voltage, attempt)`).
    pub fn set_supply(&mut self, supply: Millivolts) {
        self.supply = supply;
        if supply < self.crash_floor {
            self.state = DeviceState::Crashed;
            return;
        }
        if self.state != DeviceState::Operational {
            return;
        }
        if let Some(model) = self.transient {
            if model.probability > 0.0 && supply < self.crash_floor + model.window {
                let attempt = self.transient_attempts.entry(supply.as_u32()).or_insert(0);
                let draw = unit_draw(self.transient_seed, supply.as_u32(), *attempt);
                *attempt += 1;
                if draw < model.probability {
                    self.state = DeviceState::Crashed;
                }
            }
        }
    }

    /// Current operational state.
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// `true` if the device has crashed and needs a power cycle.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.state == DeviceState::Crashed
    }

    /// Powers the device down and back up at `supply`. All DRAM content is
    /// lost (every word reads all-zeros afterwards) and access statistics
    /// reset. If `supply` is itself below the crash floor the device
    /// immediately crashes again.
    pub fn power_cycle(&mut self, supply: Millivolts) {
        self.restart(supply, None);
    }

    /// Powers the device down and back up at `supply`, re-randomizing the
    /// uninitialized DRAM content deterministically from `seed`: after the
    /// cycle every unwritten word of pseudo channel `pc` reads a fixed
    /// pseudo-random word derived from `(seed, power-cycle index, pc)` —
    /// the indeterminate state real DRAM powers up with, made reproducible.
    /// Access statistics reset as with [`HbmDevice::power_cycle`].
    pub fn power_cycle_with_seed(&mut self, supply: Millivolts, seed: u64) {
        self.restart(supply, Some(seed));
    }

    fn restart(&mut self, supply: Millivolts, seed: Option<u64>) {
        self.power_cycles += 1;
        let cycle = u64::from(self.power_cycles);
        let mut global: u64 = 0;
        for stack in &mut self.stacks {
            for pc in stack.pseudo_channels_mut() {
                let background = seed.map_or(Word256::ZERO, |s| {
                    let lane =
                        |i: u64| splitmix64(s ^ splitmix64((cycle << 40) | (global << 8) | i));
                    Word256([lane(0), lane(1), lane(2), lane(3)])
                });
                pc.clear_to(background);
                pc.reset_stats();
                global += 1;
            }
        }
        self.state = DeviceState::Operational;
        self.set_supply(supply);
    }

    /// The HBM stacks.
    #[must_use]
    pub fn stacks(&self) -> &[HbmStack] {
        &self.stacks
    }

    /// Mutable access to the HBM stacks (used by the per-PC sharding in
    /// [`HbmDevice::pc_shards`]).
    pub fn stacks_mut(&mut self) -> &mut [HbmStack] {
        &mut self.stacks
    }

    /// The AXI port set.
    #[must_use]
    pub fn ports(&self) -> &PortSet {
        &self.ports
    }

    /// Mutable access to the AXI port set (enable/disable ports).
    pub fn ports_mut(&mut self) -> &mut PortSet {
        &mut self.ports
    }

    /// The switching network configuration.
    #[must_use]
    pub fn switch(&self) -> SwitchingNetwork {
        self.switch
    }

    /// Replaces the switching network configuration.
    pub fn set_switch(&mut self, switch: SwitchingNetwork) {
        self.switch = switch;
    }

    /// Borrows the pseudo channel at global index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` exceeds this device's geometry (a [`PcIndex`] is
    /// always `< 32`, but a custom geometry may define fewer).
    #[must_use]
    pub fn pseudo_channel(&self, pc: PcIndex) -> &PseudoChannel {
        let (stack, channel, within) = pc.decompose(self.geometry);
        &self.stacks[usize::from(stack.0)].channels()[usize::from(channel.0)].pseudo_channels()
            [usize::from(within)]
    }

    fn pseudo_channel_mut(&mut self, pc: PcIndex) -> &mut PseudoChannel {
        let (stack, channel, within) = pc.decompose(self.geometry);
        &mut self.stacks[usize::from(stack.0)].channels_mut()[usize::from(channel.0)]
            .pseudo_channels_mut()[usize::from(within)]
    }

    fn check_operational(&self) -> Result<(), DeviceError> {
        match self.state {
            DeviceState::Operational => Ok(()),
            DeviceState::Crashed => Err(DeviceError::Crashed),
        }
    }

    fn check_pc(&self, pc: PcIndex) -> Result<(), DeviceError> {
        if pc.as_u8() < self.geometry.total_pcs() {
            Ok(())
        } else {
            Err(DeviceError::InvalidPseudoChannel { index: pc.as_u8() })
        }
    }

    /// Reads a word directly from a pseudo channel (memory-side access,
    /// bypassing the AXI ports — used by fault-injection wrappers).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Crashed`] if the device crashed,
    /// [`DeviceError::InvalidPseudoChannel`] or
    /// [`DeviceError::AddressOutOfRange`] for bad addresses.
    pub fn read_word(&mut self, pc: PcIndex, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.check_operational()?;
        self.check_pc(pc)?;
        self.pseudo_channel_mut(pc).read(offset)
    }

    /// Writes a word directly to a pseudo channel (memory-side access).
    ///
    /// # Errors
    ///
    /// Same as [`HbmDevice::read_word`].
    pub fn write_word(
        &mut self,
        pc: PcIndex,
        offset: WordOffset,
        word: Word256,
    ) -> Result<(), DeviceError> {
        self.check_operational()?;
        self.check_pc(pc)?;
        self.pseudo_channel_mut(pc).write(offset, word)
    }

    /// Reads through an AXI port (user-side access). With the switch
    /// disabled the port reaches its own pseudo channel.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::PortDisabled`] for disabled ports, plus any
    /// error of [`HbmDevice::read_word`].
    pub fn axi_read(&mut self, port: PortId, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.axi_read_routed(port, None, offset)
    }

    /// Writes through an AXI port (user-side access).
    ///
    /// # Errors
    ///
    /// Same as [`HbmDevice::axi_read`].
    pub fn axi_write(
        &mut self,
        port: PortId,
        offset: WordOffset,
        word: Word256,
    ) -> Result<(), DeviceError> {
        self.axi_write_routed(port, None, offset, word)
    }

    /// Reads through an AXI port with an explicit target pseudo channel,
    /// which requires the switching network when it differs from the port's
    /// own PC.
    ///
    /// # Errors
    ///
    /// Additionally returns [`DeviceError::RouteUnavailable`] if the switch
    /// is disabled and `target` is a foreign PC.
    pub fn axi_read_routed(
        &mut self,
        port: PortId,
        target: Option<PcIndex>,
        offset: WordOffset,
    ) -> Result<Word256, DeviceError> {
        self.check_operational()?;
        self.check_port(port)?;
        let pc = self.switch.route(port, target)?;
        self.check_pc(pc)?;
        self.pseudo_channel_mut(pc).read(offset)
    }

    /// Writes through an AXI port with an explicit target pseudo channel.
    ///
    /// # Errors
    ///
    /// Same as [`HbmDevice::axi_read_routed`].
    pub fn axi_write_routed(
        &mut self,
        port: PortId,
        target: Option<PcIndex>,
        offset: WordOffset,
        word: Word256,
    ) -> Result<(), DeviceError> {
        self.check_operational()?;
        self.check_port(port)?;
        let pc = self.switch.route(port, target)?;
        self.check_pc(pc)?;
        self.pseudo_channel_mut(pc).write(offset, word)
    }

    fn check_port(&self, port: PortId) -> Result<(), DeviceError> {
        if port.as_u8() >= self.geometry.total_pcs() {
            return Err(DeviceError::InvalidPort {
                index: port.as_u8(),
            });
        }
        if self.ports.is_enabled(port) {
            Ok(())
        } else {
            Err(DeviceError::PortDisabled {
                index: port.as_u8(),
            })
        }
    }

    /// Aggregated access statistics across all pseudo channels.
    #[must_use]
    pub fn total_stats(&self) -> PcStats {
        let mut total = PcStats::default();
        for stack in &self.stacks {
            for pc in stack.pseudo_channels() {
                total.reads += pc.stats().reads;
                total.writes += pc.stats().writes;
            }
        }
        total
    }

    /// Resets per-PC access statistics (the study's `reset_axi_ports()`).
    pub fn reset_stats(&mut self) {
        for stack in &mut self.stacks {
            for pc in stack.pseudo_channels_mut() {
                pc.reset_stats();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port(i: u8) -> PortId {
        PortId::new(i).unwrap()
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn device_starts_nominal_and_operational() {
        let device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        assert_eq!(device.supply(), NOMINAL_SUPPLY);
        assert_eq!(device.state(), DeviceState::Operational);
        assert_eq!(device.stacks().len(), 2);
        assert!(!device.switch().is_enabled());
        assert_eq!(device.ports().enabled_count(), 32);
    }

    #[test]
    fn axi_round_trip_all_ports() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        for i in 0..32 {
            let w = Word256::splat(u64::from(i) + 1);
            device.axi_write(port(i), WordOffset(0), w).unwrap();
        }
        for i in 0..32 {
            let w = Word256::splat(u64::from(i) + 1);
            assert_eq!(device.axi_read(port(i), WordOffset(0)).unwrap(), w);
        }
    }

    #[test]
    fn ports_isolate_pseudo_channels() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .axi_write(port(0), WordOffset(5), Word256::ONES)
            .unwrap();
        assert_eq!(
            device.axi_read(port(1), WordOffset(5)).unwrap(),
            Word256::ZERO
        );
    }

    #[test]
    fn disabled_port_rejects_traffic() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.ports_mut().set_enabled(port(9), false);
        assert_eq!(
            device.axi_read(port(9), WordOffset(0)).unwrap_err(),
            DeviceError::PortDisabled { index: 9 }
        );
        assert_eq!(
            device
                .axi_write(port(9), WordOffset(0), Word256::ZERO)
                .unwrap_err(),
            DeviceError::PortDisabled { index: 9 }
        );
    }

    #[test]
    fn crash_is_latched_until_power_cycle() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .axi_write(port(0), WordOffset(0), Word256::ONES)
            .unwrap();

        // 0.81 V is still the minimum *working* voltage.
        device.set_supply(Millivolts(810));
        assert!(!device.is_crashed());

        // Below it the device stops responding …
        device.set_supply(Millivolts(800));
        assert!(device.is_crashed());
        assert_eq!(
            device.axi_read(port(0), WordOffset(0)).unwrap_err(),
            DeviceError::Crashed
        );

        // … and restoring the voltage does not help (paper §III-B).
        device.set_supply(NOMINAL_SUPPLY);
        assert!(device.is_crashed());

        // A power cycle revives it but loses content.
        device.power_cycle(NOMINAL_SUPPLY);
        assert!(!device.is_crashed());
        assert_eq!(
            device.axi_read(port(0), WordOffset(0)).unwrap(),
            Word256::ZERO
        );
    }

    #[test]
    fn power_cycle_into_undervoltage_crashes_again() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.power_cycle(Millivolts(790));
        assert!(device.is_crashed());
    }

    #[test]
    fn crash_floor_is_configurable() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        assert_eq!(device.crash_floor(), CRASH_FLOOR);
        device.set_crash_floor(Millivolts(850));
        device.set_supply(Millivolts(850));
        assert!(!device.is_crashed(), "operation continues at the floor");
        device.set_supply(Millivolts(840));
        assert!(device.is_crashed(), "below the raised floor must crash");
        // A lowered floor tolerates what the default would not.
        let mut tough = HbmDevice::new(HbmGeometry::vcu128_reduced());
        tough.set_crash_floor(Millivolts(780));
        tough.set_supply(Millivolts(800));
        assert!(!tough.is_crashed());
    }

    #[test]
    fn seeded_power_cycle_rerandomizes_content_deterministically() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .axi_write(port(0), WordOffset(0), Word256::ONES)
            .unwrap();
        device.power_cycle_with_seed(NOMINAL_SUPPLY, 42);
        let after_first = device.axi_read(port(0), WordOffset(0)).unwrap();
        assert_ne!(after_first, Word256::ONES, "content must be lost");
        assert_ne!(after_first, Word256::ZERO, "content must be noise");
        // Different PCs power up with different noise.
        let other_pc = device.axi_read(port(1), WordOffset(0)).unwrap();
        assert_ne!(after_first, other_pc);
        // The same cycle index on a fresh device reproduces the content
        // exactly; a different seed does not.
        let mut twin = HbmDevice::new(HbmGeometry::vcu128_reduced());
        twin.power_cycle_with_seed(NOMINAL_SUPPLY, 42);
        assert_eq!(twin.axi_read(port(0), WordOffset(0)).unwrap(), after_first);
        let mut stranger = HbmDevice::new(HbmGeometry::vcu128_reduced());
        stranger.power_cycle_with_seed(NOMINAL_SUPPLY, 43);
        assert_ne!(
            stranger.axi_read(port(0), WordOffset(0)).unwrap(),
            after_first
        );
        // Successive cycles re-randomize.
        device.power_cycle_with_seed(NOMINAL_SUPPLY, 42);
        assert_ne!(
            device.axi_read(port(0), WordOffset(0)).unwrap(),
            after_first
        );
        assert_eq!(device.power_cycle_count(), 2);
    }

    #[test]
    fn transient_crashes_are_deterministic_and_redrawn_per_attempt() {
        let model = TransientCrashModel::new(0.5, Millivolts(40));
        let run = |seed: u64| {
            let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
            device.set_transient_crashes(Some(model), seed);
            let mut crashes = Vec::new();
            for attempt in 0..32 {
                device.set_supply(Millivolts(830));
                crashes.push(device.is_crashed());
                if device.is_crashed() {
                    device.power_cycle(NOMINAL_SUPPLY);
                }
                let _ = attempt;
            }
            crashes
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same crash schedule");
        assert!(a.iter().any(|&c| c), "p = 0.5 must crash sometimes");
        assert!(!a.iter().all(|&c| c), "p = 0.5 must also survive sometimes");
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn transient_model_spares_voltages_outside_the_window() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device.set_transient_crashes(Some(TransientCrashModel::new(1.0, Millivolts(40))), 7);
        // Above floor + window: certain-crash probability never fires.
        for _ in 0..16 {
            device.set_supply(Millivolts(850));
            assert!(!device.is_crashed());
        }
        // Inside the window with p = 1: the very first attempt crashes.
        device.set_supply(Millivolts(849));
        assert!(device.is_crashed());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn transient_model_rejects_bad_probability() {
        let _ = TransientCrashModel::new(1.5, Millivolts(40));
    }

    #[test]
    fn routed_access_needs_switch() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        assert_eq!(
            device
                .axi_write_routed(port(0), Some(pc(4)), WordOffset(0), Word256::ONES)
                .unwrap_err(),
            DeviceError::RouteUnavailable { port: 0, target: 4 }
        );
        device.set_switch(SwitchingNetwork::enabled());
        device
            .axi_write_routed(port(0), Some(pc(4)), WordOffset(0), Word256::ONES)
            .unwrap();
        assert_eq!(
            device
                .axi_read_routed(port(4), None, WordOffset(0))
                .unwrap(),
            Word256::ONES
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .axi_write(port(0), WordOffset(0), Word256::ONES)
            .unwrap();
        device.axi_read(port(0), WordOffset(0)).unwrap();
        device.axi_read(port(1), WordOffset(0)).unwrap();
        assert_eq!(
            device.total_stats(),
            PcStats {
                reads: 2,
                writes: 1
            }
        );
        device.reset_stats();
        assert_eq!(device.total_stats(), PcStats::default());
    }

    #[test]
    fn custom_small_geometry_rejects_large_pc() {
        // One stack, one channel, two PCs.
        let g = HbmGeometry::custom(1, 1, 2, 4, 16, 8);
        let mut device = HbmDevice::new(g);
        assert_eq!(g.total_pcs(), 2);
        device
            .write_word(pc(1), WordOffset(0), Word256::ONES)
            .unwrap();
        assert_eq!(
            device
                .write_word(pc(2), WordOffset(0), Word256::ONES)
                .unwrap_err(),
            DeviceError::InvalidPseudoChannel { index: 2 }
        );
        assert_eq!(
            device.axi_read(port(2), WordOffset(0)).unwrap_err(),
            DeviceError::InvalidPort { index: 2 }
        );
    }

    #[test]
    fn memory_side_word_round_trip() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .write_word(pc(17), WordOffset(1), Word256::ONES)
            .unwrap();
        assert_eq!(
            device.read_word(pc(17), WordOffset(1)).unwrap(),
            Word256::ONES
        );
        // Memory-side access shows up on the same PC as AXI-side access.
        assert_eq!(device.pseudo_channel(pc(17)).stats().writes, 1);
    }
}
