//! The AVX2 tier of the bit-sliced kernel: four 64-bit hash lanes per
//! instruction, with the SplitMix64 finalizer's 64×64 multiplies built from
//! 32-bit partial products (`vpmuludq`) and the comparison results
//! extracted four flags at a time through the sign-bit movemask.
//!
//! This is the only unsafe code in the crate, confined to this module and
//! reached exclusively through [`bit_planes_avx2`], which is only called
//! with [`InstructionSet::Avx2`](super::InstructionSet::Avx2) — a value
//! [`InstructionSet::detect`](super::InstructionSet::detect) constructs
//! after the runtime CPUID probe. All comparison operands fit in 32 bits
//! (hash halves) or 33 bits (cutoffs, at most `2³²`), so the signed
//! `vpcmpgtq` compare is exact for the unsigned quantities involved.

use std::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_castsi256_pd,
    _mm256_cmpgt_epi64, _mm256_movemask_pd, _mm256_mul_epu32, _mm256_set1_epi64x,
    _mm256_set_epi64x, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_xor_si256,
};

use hbm_device::Word256;

/// The AVX2 [`super::bitsliced::bit_planes`] tier. Safe wrapper: the
/// target-feature entry is only reached after the caller's runtime probe,
/// re-checked here in debug builds.
pub(crate) fn bit_planes_avx2(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
) -> (Word256, Word256) {
    debug_assert!(
        std::arch::is_x86_feature_detected!("avx2"),
        "AVX2 kernel dispatched without hardware support"
    );
    // SAFETY: this path is only selected when `InstructionSet::detect`
    // observed AVX2 support on the running CPU.
    unsafe { bit_planes_avx2_inner(prefix, class_cut, cut0, cut1) }
}

/// # Safety
///
/// The running CPU must support AVX2.
#[target_feature(enable = "avx2")]
unsafe fn bit_planes_avx2_inner(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
) -> (Word256, Word256) {
    // SAFETY: every intrinsic below is an AVX2 register operation (no
    // memory access beyond the local arrays), valid under the function's
    // AVX2 requirement.
    unsafe {
        let prefix_v = _mm256_set1_epi64x(prefix as i64);
        let class_v = _mm256_set1_epi64x(class_cut as i64);
        let cut0_v = _mm256_set1_epi64x(cut0 as i64);
        let cut1_v = _mm256_set1_epi64x(cut1 as i64);
        let lo_mask = _mm256_set1_epi64x(0xFFFF_FFFF);
        let step = _mm256_set_epi64x(3, 2, 1, 0);

        let mut plane0 = [0u64; 4];
        let mut plane1 = [0u64; 4];
        for (lane, (p0, p1)) in plane0.iter_mut().zip(plane1.iter_mut()).enumerate() {
            let base = lane as u64 * 64;
            let (mut m0, mut m1) = (0u64, 0u64);
            let mut b = 0u64;
            while b < 64 {
                let idx = _mm256_add_epi64(step, _mm256_set1_epi64x((base + b) as i64));
                let h = mix64x4(_mm256_xor_si256(prefix_v, idx));
                let lo = _mm256_and_si256(h, lo_mask);
                let hi = _mm256_srli_epi64(h, 32);
                // Unsigned `<` via signed compare: both sides are < 2³³.
                let is0 = _mm256_cmpgt_epi64(class_v, lo);
                let f0 = _mm256_and_si256(is0, _mm256_cmpgt_epi64(cut0_v, hi));
                let f1 = _mm256_andnot_si256(is0, _mm256_cmpgt_epi64(cut1_v, hi));
                // Lane k's flag (its sign bit) lands in movemask bit k, so
                // the four flags pack directly into plane bits b..b+3.
                m0 |= (_mm256_movemask_pd(_mm256_castsi256_pd(f0)) as u64 & 0xF) << b;
                m1 |= (_mm256_movemask_pd(_mm256_castsi256_pd(f1)) as u64 & 0xF) << b;
                b += 4;
            }
            *p0 = m0;
            *p1 = m1;
        }
        (Word256(plane0), Word256(plane1))
    }
}

/// Four SplitMix64 finalizers at once; lane-for-lane identical to
/// [`crate::hash::mix64`].
#[target_feature(enable = "avx2")]
unsafe fn mix64x4(x: __m256i) -> __m256i {
    // SAFETY: register-only AVX2 intrinsics under the AVX2 requirement.
    unsafe {
        let mut x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9E37_79B9_7F4A_7C15_u64 as i64));
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
        x = mul64(x, 0xBF58_476D_1CE4_E5B9);
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
        x = mul64(x, 0x94D0_49BB_1331_11EB);
        _mm256_xor_si256(x, _mm256_srli_epi64(x, 31))
    }
}

/// Lane-wise wrapping 64×64→64 multiply by a constant. AVX2 has no 64-bit
/// multiply, so build it from 32-bit partial products: with `a = a_hi·2³² +
/// a_lo` and `b` likewise, the low 64 bits of `a·b` are
/// `a_lo·b_lo + ((a_lo·b_hi + a_hi·b_lo) << 32)`.
#[target_feature(enable = "avx2")]
unsafe fn mul64(a: __m256i, b: u64) -> __m256i {
    // Register-only AVX2 intrinsics: safe calls inside a matching
    // `#[target_feature]` function (the `unsafe fn` records the caller's
    // obligation that the CPU supports AVX2).
    let b_lo = _mm256_set1_epi64x((b & 0xFFFF_FFFF) as i64);
    let b_hi = _mm256_set1_epi64x((b >> 32) as i64);
    let a_hi = _mm256_srli_epi64(a, 32);
    let low = _mm256_mul_epu32(a, b_lo);
    let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b_lo));
    _mm256_add_epi64(low, _mm256_slli_epi64(cross, 32))
}

#[cfg(test)]
mod tests {
    use super::super::bitsliced::bit_planes_portable;
    use super::*;
    use crate::hash::combine;

    #[test]
    fn avx2_planes_match_portable_planes() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to check on this host
        }
        for seed in 0..64u64 {
            let prefix = combine(&[seed, seed % 7, seed * 31, 0x6269_7400]);
            for (class_cut, cut0, cut1) in [
                (0, 0, 0),
                (1 << 32, 1 << 32, 1 << 32),
                (1 << 31, 1 << 20, 1 << 28),
                (u64::from(u32::MAX), 1, 1 << 31),
                (
                    seed.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF,
                    seed << 20,
                    seed << 24,
                ),
            ] {
                assert_eq!(
                    bit_planes_avx2(prefix, class_cut, cut0, cut1),
                    bit_planes_portable(prefix, class_cut, cut0, cut1),
                    "diverged at seed {seed}, cuts ({class_cut}, {cut0}, {cut1})"
                );
            }
        }
    }
}
