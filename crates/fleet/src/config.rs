//! Fleet sweep configuration and per-device identity derivation.
//!
//! A fleet run is fully determined by one [`FleetConfig`]: every device's
//! fault universe derives from `(base_seed, device_id)` through the same
//! counter-based hash discipline the injector uses for `pc_stream`, so the
//! fleet is reproducible from the config alone — no per-device state is
//! ever carried between runs.

use std::fmt;

use hbm_device::HbmGeometry;
use hbm_faults::{hash, FaultModelParams, KernelBackend};
use hbm_units::Millivolts;

/// Domain tag folded into every per-device seed derivation so fleet seeds
/// can never collide with other consumers of the shared hash (`b"flee"`).
const SEED_DOMAIN: u64 = 0x666c_6565;

/// Domain tag for the per-device crash-floor jitter draw (`b"vcrs"`).
const CRASH_DOMAIN: u64 = 0x7663_7273;

/// The study's crash floor: below 810 mV the board no longer responds
/// (paper §V). Fleet devices jitter around this landmark to model the
/// chip-to-chip spread Chang et al. report for reduced-voltage DRAM.
const CRASH_FLOOR_MV: u32 = 810;

/// Errors raised by fleet configuration, sweeps and artifact handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The configuration is internally inconsistent.
    Config(String),
    /// An artifact could not be decoded (truncated, bad magic, bad bounds).
    Artifact(String),
    /// The artifact's format version is not the one this build writes.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A device ID was not present in the artifact.
    UnknownDevice(u32),
    /// Artifact I/O failed.
    Io(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "fleet config: {msg}"),
            FleetError::Artifact(msg) => write!(f, "fleet artifact: {msg}"),
            FleetError::Version { found, expected } => write!(
                f,
                "fleet artifact version {found} is not supported (expected {expected})"
            ),
            FleetError::UnknownDevice(id) => write!(f, "device {id} not present in artifact"),
            FleetError::Io(msg) => write!(f, "fleet artifact I/O: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One device's derived identity: everything a worker needs to
/// characterize it, computed from the fleet config and the device ID alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Position in the fleet, `0..devices`.
    pub device_id: u32,
    /// Seed of this device's fault universe (drives `variation.rs`).
    pub seed: u64,
    /// This device's crash floor: supplies strictly below it crash the
    /// device instead of returning data.
    pub crash_floor: Millivolts,
}

/// Configuration of one fleet characterization run.
///
/// The defaults sweep the guardband region the paper maps (1.00 V down to
/// 0.82 V in 10 mV steps) over a word sample per pseudo channel that keeps
/// a multi-thousand-device fleet tractable.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of devices to characterize.
    pub devices: u32,
    /// Base seed all per-device seeds derive from.
    pub base_seed: u64,
    /// Worker threads; `0` means one worker per available CPU.
    pub workers: usize,
    /// Per-device geometry (the study's reduced VCU128 footprint).
    pub geometry: HbmGeometry,
    /// Fault-model calibration shared by every device.
    pub params: FaultModelParams,
    /// Highest sweep voltage (inclusive).
    pub from: Millivolts,
    /// Lowest sweep voltage (inclusive if on the step grid).
    pub down_to: Millivolts,
    /// Step between knots.
    pub step: Millivolts,
    /// Words sampled per pseudo channel (1..=255 so per-knot fault-bit
    /// counts fit the artifact's `u16` column next to its crash sentinel).
    pub words_per_pc: u64,
    /// Nominal supply the guardband is measured against.
    pub nominal: Millivolts,
    /// Knot at which a pseudo channel's fault rate is compared against
    /// [`FleetConfig::weak_rate_threshold`] for the weak-PC bitmap. Must be
    /// on the knot grid and above every possible crash floor.
    pub weak_reference: Millivolts,
    /// Union fault-rate threshold at the reference knot above which a
    /// pseudo channel is counted weak.
    pub weak_rate_threshold: f64,
    /// Mask-generation backend for the per-device descents.
    pub backend: KernelBackend,
    /// Half-width of the crash-floor jitter: device floors are drawn
    /// uniformly from `810 ± crash_jitter` mV.
    pub crash_jitter: Millivolts,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 64,
            base_seed: 7,
            workers: 0,
            geometry: HbmGeometry::vcu128_reduced(),
            params: FaultModelParams::date21(),
            from: Millivolts(1000),
            down_to: Millivolts(820),
            step: Millivolts(10),
            words_per_pc: 64,
            nominal: Millivolts(1200),
            weak_reference: Millivolts(900),
            weak_rate_threshold: 1e-4,
            backend: KernelBackend::Auto,
            crash_jitter: Millivolts(15),
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] when any field is out of range or
    /// the weak reference knot is not reachable by every device.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.devices == 0 {
            return Err(FleetError::Config("devices must be at least 1".into()));
        }
        if self.step == Millivolts::ZERO {
            return Err(FleetError::Config("step must be positive".into()));
        }
        if self.from < self.down_to {
            return Err(FleetError::Config(format!(
                "sweep must descend: from {} is below down-to {}",
                self.from, self.down_to
            )));
        }
        if self.words_per_pc == 0 || self.words_per_pc > 255 {
            return Err(FleetError::Config(format!(
                "words-per-pc must be in 1..=255, got {}",
                self.words_per_pc
            )));
        }
        if self.words_per_pc > self.geometry.words_per_pc() {
            return Err(FleetError::Config(format!(
                "words-per-pc {} exceeds the geometry's {}",
                self.words_per_pc,
                self.geometry.words_per_pc()
            )));
        }
        if !(0.0..=1.0).contains(&self.weak_rate_threshold) {
            return Err(FleetError::Config(format!(
                "weak-rate threshold must be in [0, 1], got {}",
                self.weak_rate_threshold
            )));
        }
        let knots = self.knots();
        if !knots.contains(&self.weak_reference) {
            return Err(FleetError::Config(format!(
                "weak reference {} is not on the {}..{} step {} knot grid",
                self.weak_reference, self.from, self.down_to, self.step
            )));
        }
        let crash_ceiling = Millivolts(CRASH_FLOOR_MV) + self.crash_jitter;
        if self.weak_reference <= crash_ceiling {
            return Err(FleetError::Config(format!(
                "weak reference {} must sit above the highest possible crash floor {}",
                self.weak_reference, crash_ceiling
            )));
        }
        Ok(())
    }

    /// The descending knot grid `from, from−step, …` down to `down_to`.
    #[must_use]
    pub fn knots(&self) -> Vec<Millivolts> {
        let mut knots = Vec::new();
        let mut v = self.from;
        while v >= self.down_to {
            knots.push(v);
            if v < self.step {
                break;
            }
            v = v.saturating_sub(self.step);
        }
        knots
    }

    /// Index of the weak-reference knot in [`FleetConfig::knots`].
    #[must_use]
    pub fn weak_knot_index(&self) -> usize {
        self.knots()
            .iter()
            .position(|&v| v == self.weak_reference)
            .expect("validated weak reference is on the knot grid")
    }

    /// Bits checked per pseudo channel per knot.
    #[must_use]
    pub fn bits_per_pc(&self) -> u64 {
        self.words_per_pc * 256
    }

    /// Derives device `device_id`'s identity.
    ///
    /// Seeds come from the shared counter-based hash under a fleet domain
    /// tag, so distinct devices get statistically independent fault
    /// universes and the mapping never changes across releases.
    #[must_use]
    pub fn device_spec(&self, device_id: u32) -> DeviceSpec {
        let seed = hash::combine(&[SEED_DOMAIN, self.base_seed, u64::from(device_id)]);
        let jitter_span = 2 * self.crash_jitter.as_u32() + 1;
        let draw = hash::combine(&[CRASH_DOMAIN, self.base_seed, u64::from(device_id)]);
        let offset = (draw % u64::from(jitter_span)) as u32;
        let crash_floor = Millivolts(CRASH_FLOOR_MV - self.crash_jitter.as_u32() + offset);
        DeviceSpec {
            device_id,
            seed,
            crash_floor,
        }
    }

    /// Reconstructs the run configuration an artifact was swept under,
    /// from its header and knot table alone.
    ///
    /// This is what lets a compressed (model-only) store fall back to an
    /// on-demand exact rescan: every per-device seed and crash floor is a
    /// pure function of the config, and the config is a pure function of
    /// the header. The geometry, calibration and backend are not stamped
    /// into the header — artifacts are always swept under the study's
    /// reduced VCU128 footprint with the DATE'21 calibration, and the
    /// backend cannot change results (every backend is bit-identical to
    /// the scalar oracle), so `Auto` is always faithful.
    ///
    /// # Errors
    ///
    /// [`FleetError::Artifact`] when the knot table is not a uniform
    /// descending grid or the header's PC count does not match the study
    /// geometry.
    pub fn from_meta(
        meta: &crate::artifact::ArtifactMeta,
        knots: &[Millivolts],
    ) -> Result<FleetConfig, FleetError> {
        let geometry = HbmGeometry::vcu128_reduced();
        if meta.pc_count != u32::from(geometry.total_pcs()) {
            return Err(FleetError::Artifact(format!(
                "artifact PC count {} does not match the study geometry's {}",
                meta.pc_count,
                geometry.total_pcs()
            )));
        }
        let (first, last) = match (knots.first(), knots.last()) {
            (Some(&first), Some(&last)) => (first, last),
            _ => return Err(FleetError::Artifact("artifact has no knots".into())),
        };
        let step = if knots.len() >= 2 {
            let step = knots[0].saturating_sub(knots[1]);
            if step == Millivolts::ZERO
                || knots.windows(2).any(|w| w[0].saturating_sub(w[1]) != step)
            {
                return Err(FleetError::Artifact(
                    "artifact knots are not a uniform descending grid".into(),
                ));
            }
            step
        } else {
            // A single-knot grid regenerates from any positive step.
            Millivolts(10)
        };
        let cfg = FleetConfig {
            devices: meta.device_count,
            base_seed: meta.base_seed,
            workers: 1,
            geometry,
            params: FaultModelParams::date21(),
            from: first,
            down_to: last,
            step,
            words_per_pc: meta.words_per_pc,
            nominal: Millivolts(u32::from(meta.nominal_mv)),
            weak_reference: Millivolts(u32::from(meta.weak_reference_mv)),
            weak_rate_threshold: meta.weak_rate_threshold,
            backend: KernelBackend::Auto,
            crash_jitter: Millivolts(u32::from(meta.crash_jitter_mv)),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Effective worker count: `workers`, or available parallelism when 0,
    /// never more than one worker per device.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        requested.clamp(1, self.devices as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        FleetConfig::default().validate().unwrap();
    }

    #[test]
    fn knot_grid_is_descending_and_inclusive() {
        let cfg = FleetConfig::default();
        let knots = cfg.knots();
        assert_eq!(knots.first(), Some(&Millivolts(1000)));
        assert_eq!(knots.last(), Some(&Millivolts(820)));
        assert_eq!(knots.len(), 19);
        assert!(knots.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = FleetConfig::default();
        for (label, cfg) in [
            (
                "zero devices",
                FleetConfig {
                    devices: 0,
                    ..base.clone()
                },
            ),
            (
                "zero step",
                FleetConfig {
                    step: Millivolts::ZERO,
                    ..base.clone()
                },
            ),
            (
                "ascending sweep",
                FleetConfig {
                    from: Millivolts(800),
                    ..base.clone()
                },
            ),
            (
                "oversized words",
                FleetConfig {
                    words_per_pc: 256,
                    ..base.clone()
                },
            ),
            (
                "off-grid weak reference",
                FleetConfig {
                    weak_reference: Millivolts(905),
                    ..base.clone()
                },
            ),
            (
                "weak reference below crash ceiling",
                FleetConfig {
                    weak_reference: Millivolts(820),
                    ..base.clone()
                },
            ),
        ] {
            assert!(cfg.validate().is_err(), "{label} must be rejected");
        }
    }

    #[test]
    fn device_specs_are_distinct_and_stable() {
        let cfg = FleetConfig::default();
        let a = cfg.device_spec(0);
        let b = cfg.device_spec(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a, cfg.device_spec(0), "derivation must be pure");
        let lo = Millivolts(CRASH_FLOOR_MV).saturating_sub(cfg.crash_jitter);
        let hi = Millivolts(CRASH_FLOOR_MV) + cfg.crash_jitter;
        for id in 0..64 {
            let spec = cfg.device_spec(id);
            assert!(spec.crash_floor >= lo && spec.crash_floor <= hi);
        }
    }

    #[test]
    fn crash_floors_spread_across_the_jitter_band() {
        let cfg = FleetConfig::default();
        let floors: std::collections::BTreeSet<u32> = (0..256)
            .map(|id| cfg.device_spec(id).crash_floor.as_u32())
            .collect();
        assert!(floors.len() > 10, "jitter draw collapsed: {floors:?}");
    }
}
