//! DRAM core timing and an access-pattern efficiency estimator.
//!
//! The organizational model treats memory accesses as instantaneous; this
//! module adds the DRAM core timing parameters (row activate/precharge,
//! CAS latency, refresh) and estimates what fraction of the pin bandwidth
//! different access patterns can sustain. It explains the two derates the
//! study's bandwidth numbers embody:
//!
//! - refresh and protocol overhead take the 460.8 GB/s raw pin rate to the
//!   ≈429 GB/s datasheet figure;
//! - controller/arbitration overhead of the traffic-generator design takes
//!   it further to the ≈310 GB/s the authors report reaching.

use hbm_units::Megahertz;
use serde::{Deserialize, Serialize};

use crate::geometry::HbmGeometry;
use crate::timing::ClockConfig;

/// DRAM core timing parameters, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Row-to-column delay (activate → first read), ns.
    pub t_rcd_ns: f64,
    /// Row precharge time, ns.
    pub t_rp_ns: f64,
    /// CAS latency, ns.
    pub t_cl_ns: f64,
    /// Minimum row-active time, ns.
    pub t_ras_ns: f64,
    /// Refresh cycle time, ns (one all-bank refresh).
    pub t_rfc_ns: f64,
    /// Average refresh interval, ns (tREFI).
    pub t_refi_ns: f64,
}

impl DramTimings {
    /// Representative HBM2 timings at the study's 900 MHz clock.
    #[must_use]
    pub fn hbm2() -> Self {
        DramTimings {
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_cl_ns: 14.0,
            t_ras_ns: 33.0,
            t_rfc_ns: 260.0,
            t_refi_ns: 3_900.0,
        }
    }

    /// Row cycle time tRC = tRAS + tRP.
    #[must_use]
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Fraction of time lost to refresh: tRFC / tREFI.
    #[must_use]
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc_ns / self.t_refi_ns
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::hbm2()
    }
}

/// Memory access patterns whose sustainable bandwidth the model estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Long sequential streams: every row fully consumed, row switches
    /// overlapped across banks.
    SequentialStream,
    /// One AXI word per row before moving on (worst-case row locality) but
    /// still interleaving across all banks.
    StridedSingleWord,
    /// Uniformly random words: row misses with limited overlap.
    RandomWord,
}

/// The efficiency estimator.
///
/// # Examples
///
/// ```
/// use hbm_device::{AccessPattern, AccessTimingModel};
///
/// let model = AccessTimingModel::vcu128();
/// let seq = model.efficiency(AccessPattern::SequentialStream);
/// let rnd = model.efficiency(AccessPattern::RandomWord);
/// assert!(seq > 0.85, "sequential streams sustain most of the pin rate");
/// assert!(rnd < seq / 2.0, "random access pays the row-miss penalty");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessTimingModel {
    geometry: HbmGeometry,
    clock: ClockConfig,
    timings: DramTimings,
}

impl AccessTimingModel {
    /// The study platform's model.
    #[must_use]
    pub fn vcu128() -> Self {
        AccessTimingModel::new(
            HbmGeometry::vcu128(),
            ClockConfig::vcu128(),
            DramTimings::hbm2(),
        )
    }

    /// Creates a model from explicit parameters.
    #[must_use]
    pub fn new(geometry: HbmGeometry, clock: ClockConfig, timings: DramTimings) -> Self {
        AccessTimingModel {
            geometry,
            clock,
            timings,
        }
    }

    /// The timing parameters.
    #[must_use]
    pub fn timings(&self) -> DramTimings {
        self.timings
    }

    /// Transfer time of one 256-bit AXI word on a 64-bit pseudo channel:
    /// four beats at the data rate.
    #[must_use]
    pub fn word_transfer_ns(&self) -> f64 {
        4.0 / (self.clock.data_rate_mts() * 1e-3)
    }

    /// Service time of one full row (all its words back to back).
    #[must_use]
    pub fn row_service_ns(&self) -> f64 {
        f64::from(self.geometry.words_per_row()) * self.word_transfer_ns()
    }

    /// Estimated fraction of the pin bandwidth a pattern sustains,
    /// including refresh overhead.
    #[must_use]
    pub fn efficiency(&self, pattern: AccessPattern) -> f64 {
        let banks = f64::from(self.geometry.banks_per_pc());
        let data_ns = match pattern {
            AccessPattern::SequentialStream => self.row_service_ns(),
            AccessPattern::StridedSingleWord | AccessPattern::RandomWord => self.word_transfer_ns(),
        };
        // Row-cycle cost per visited row; overlapped across the other banks
        // for patterns that interleave (sequential and strided do; random
        // achieves only partial overlap).
        let overlap_banks = match pattern {
            AccessPattern::SequentialStream | AccessPattern::StridedSingleWord => banks - 1.0,
            AccessPattern::RandomWord => (banks - 1.0) / 4.0,
        };
        let row_overhead = self.timings.t_rcd_ns + self.timings.t_rp_ns;
        let visible_stall = (row_overhead - overlap_banks * data_ns).max(0.0);
        let busy = data_ns / (data_ns + visible_stall);
        busy * (1.0 - self.timings.refresh_overhead())
    }

    /// The datasheet-level derate (sequential streams): matches the
    /// 429/460.8 ≈ 0.93 figure of the study platform.
    #[must_use]
    pub fn datasheet_derate(&self) -> f64 {
        self.efficiency(AccessPattern::SequentialStream)
    }

    /// The memory clock the model assumes.
    #[must_use]
    pub fn memory_clock(&self) -> Megahertz {
        self.clock.memory_clock()
    }
}

impl Default for AccessTimingModel {
    fn default() -> Self {
        AccessTimingModel::vcu128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2_timings_plausible() {
        let t = DramTimings::hbm2();
        assert_eq!(t.t_rc_ns(), 47.0);
        assert!((t.refresh_overhead() - 0.0667).abs() < 1e-3);
    }

    #[test]
    fn word_and_row_times() {
        let m = AccessTimingModel::vcu128();
        // 4 beats at 1800 MT/s ≈ 2.22 ns.
        assert!((m.word_transfer_ns() - 2.222).abs() < 0.01);
        // 32 words per row ≈ 71.1 ns.
        assert!((m.row_service_ns() - 71.1).abs() < 0.2);
    }

    #[test]
    fn sequential_matches_datasheet_derate() {
        let m = AccessTimingModel::vcu128();
        let derate = m.datasheet_derate();
        // The study's datasheet figure: 429/460.8 ≈ 0.931. With full bank
        // overlap the only sequential loss is refresh (≈6.7 %).
        assert!((derate - 0.9309).abs() < 0.01, "derate {derate}");
    }

    #[test]
    fn pattern_ordering() {
        let m = AccessTimingModel::vcu128();
        let seq = m.efficiency(AccessPattern::SequentialStream);
        let strided = m.efficiency(AccessPattern::StridedSingleWord);
        let random = m.efficiency(AccessPattern::RandomWord);
        // With 16 banks the strided pattern fully hides the row cost, so it
        // matches sequential; random cannot.
        assert!(seq >= strided, "{seq} vs {strided}");
        assert!(strided > random, "{strided} vs {random}");
        assert!(random > 0.0);
    }

    #[test]
    fn strided_interleaving_hides_most_of_the_row_cost() {
        // 16 banks × 2.22 ns words cover 33 ns of the 28 ns row overhead.
        let m = AccessTimingModel::vcu128();
        let strided = m.efficiency(AccessPattern::StridedSingleWord);
        assert!(strided > 0.9, "strided efficiency {strided}");
    }

    #[test]
    fn random_access_is_row_bound() {
        let m = AccessTimingModel::vcu128();
        let random = m.efficiency(AccessPattern::RandomWord);
        // data 2.22 ns vs visible stall ≈ 28 − 3.75×2.22 ≈ 19.7 ns.
        assert!((0.05..0.2).contains(&random), "random efficiency {random}");
    }

    #[test]
    fn fewer_banks_hurt() {
        let small = AccessTimingModel::new(
            HbmGeometry::custom(1, 1, 2, 2, 64, 32),
            ClockConfig::vcu128(),
            DramTimings::hbm2(),
        );
        let large = AccessTimingModel::vcu128();
        assert!(
            small.efficiency(AccessPattern::StridedSingleWord)
                < large.efficiency(AccessPattern::StridedSingleWord)
        );
    }
}
