//! Closed-form expected fault rates under the model.
//!
//! Fault *rates* are intensive quantities, so they can be evaluated
//! analytically at the full 8 GB geometry even though exhaustive bit-level
//! simulation at that scale is impractical. The predictor averages the
//! class-conditional curves over the variation structure (banks × row
//! regions) of each pseudo channel — exactly the expectation of what the
//! sampling injector produces.

use hbm_device::{BankId, HbmGeometry, PcIndex, RowId, StackId};
use hbm_units::{Celsius, Millivolts, Ratio, Volts};
use serde::{Deserialize, Serialize};

use crate::params::FaultModelParams;
use crate::variation::ShiftTable;

/// Expected fault rates of one pseudo channel at one voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcRates {
    /// Expected fraction of bits observed flipped 1→0 under an all-ones
    /// pattern (stuck-at-0 bits).
    pub rate_1to0: Ratio,
    /// Expected fraction of bits observed flipped 0→1 under an all-zeros
    /// pattern (stuck-at-1 bits).
    pub rate_0to1: Ratio,
}

impl PcRates {
    /// The union rate: the fraction of bits faulty under either pattern.
    /// Classes are disjoint, so this is the plain sum (≤ 1 by construction).
    #[must_use]
    pub fn union(self) -> Ratio {
        Ratio(self.rate_1to0.as_f64() + self.rate_0to1.as_f64()).clamp_unit()
    }
}

/// Analytic rate evaluator for a `(params, geometry, seed)` specimen.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex};
/// use hbm_faults::{FaultModelParams, RatePredictor};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let predictor = RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7);
/// let pc = PcIndex::new(0)?;
/// // Guardband: zero expected faults.
/// assert_eq!(predictor.pc_rates(pc, Millivolts(980)).union().as_f64(), 0.0);
/// // Total failure at 0.82 V.
/// assert!(predictor.pc_rates(pc, Millivolts(820)).union().as_f64() > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RatePredictor {
    params: FaultModelParams,
    geometry: HbmGeometry,
    seed: u64,
    temperature: Celsius,
    shift_table: ShiftTable,
}

impl RatePredictor {
    /// Creates a predictor for a specimen.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: FaultModelParams, geometry: HbmGeometry, seed: u64) -> Self {
        params.validate();
        let shift_table = ShiftTable::new(&params.variation, seed, geometry);
        RatePredictor {
            params,
            geometry,
            seed,
            temperature: Celsius::STUDY_AMBIENT,
            shift_table,
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &FaultModelParams {
        &self.params
    }

    /// The geometry rates are evaluated at.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.geometry
    }

    /// The device seed of the specimen.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the operating temperature.
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
    }

    /// Expected per-pattern fault rates of a pseudo channel at a supply
    /// voltage, averaged over the channel's banks and row regions.
    #[must_use]
    pub fn pc_rates(&self, pc: PcIndex, supply: Millivolts) -> PcRates {
        if supply >= self.params.landmarks.v_min {
            return PcRates {
                rate_1to0: Ratio::ZERO,
                rate_0to1: Ratio::ZERO,
            };
        }
        let v = supply.to_volts();
        let var = &self.params.variation;
        let banks = u32::from(self.geometry.banks_per_pc());
        let regions_per_bank = (self.geometry.rows_per_bank() / var.region_rows.max(1)).max(1);

        let common =
            self.shift_table.pc_shift_volts(pc) + var.temperature_shift_volts(self.temperature);

        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        for bank in 0..banks {
            let bank_id = BankId(bank as u16);
            let bank_shift = var.bank_shift_volts(self.seed, pc, bank_id);
            for region in 0..regions_per_bank {
                let row = RowId(region * var.region_rows.max(1));
                let shift =
                    common + bank_shift + var.region_shift_volts(self.seed, pc, bank_id, row);
                sum0 += self
                    .params
                    .class_probability(&self.params.curve_stuck0, v, Volts(shift));
                sum1 += self
                    .params
                    .class_probability(&self.params.curve_stuck1, v, Volts(shift));
            }
        }
        let cells = f64::from(banks * regions_per_bank);
        PcRates {
            rate_1to0: Ratio(self.params.stuck0_share * sum0 / cells),
            rate_0to1: Ratio(self.params.stuck1_share() * sum1 / cells),
        }
    }

    /// Expected number of faulty bits in a pseudo channel (union of both
    /// polarities) at this predictor's geometry.
    #[must_use]
    pub fn expected_faulty_bits(&self, pc: PcIndex, supply: Millivolts) -> f64 {
        self.pc_rates(pc, supply).union().as_f64() * self.geometry.bits_per_pc() as f64
    }

    /// Mean union fault rate of one stack (average over its PCs).
    #[must_use]
    pub fn stack_rate(&self, stack: StackId, supply: Millivolts) -> Ratio {
        let pcs: Vec<PcIndex> = PcIndex::all(self.geometry)
            .filter(|pc| pc.stack(self.geometry) == stack)
            .collect();
        let sum: f64 = pcs
            .iter()
            .map(|&pc| self.pc_rates(pc, supply).union().as_f64())
            .sum();
        Ratio(sum / pcs.len() as f64)
    }

    /// Mean union fault rate of the whole device.
    #[must_use]
    pub fn device_rate(&self, supply: Millivolts) -> Ratio {
        let total = f64::from(self.geometry.total_pcs());
        let sum: f64 = PcIndex::all(self.geometry)
            .map(|pc| self.pc_rates(pc, supply).union().as_f64())
            .sum();
        Ratio(sum / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> RatePredictor {
        RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128(), 7)
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn guardband_rates_are_zero() {
        let p = predictor();
        for v in [1200u32, 1000, 980] {
            assert_eq!(p.device_rate(Millivolts(v)), Ratio::ZERO);
        }
    }

    #[test]
    fn rates_grow_monotonically_below_guardband() {
        let p = predictor();
        let mut last = -1.0;
        let mut v = Millivolts(970);
        while v >= Millivolts(820) {
            let rate = p.device_rate(v).as_f64();
            assert!(rate >= last, "rate shrank at {v}");
            last = rate;
            v = v.saturating_sub(Millivolts(10));
        }
    }

    #[test]
    fn total_failure_at_all_faulty_voltage() {
        let p = predictor();
        let rate = p.device_rate(Millivolts(830)).as_f64();
        assert!(rate > 0.99, "rate at 0.83 V = {rate}");
    }

    #[test]
    fn exponential_growth_region() {
        // Rate should grow by orders of magnitude across the unsafe region.
        let p = predictor();
        let high = p.device_rate(Millivolts(960)).as_f64();
        let low = p.device_rate(Millivolts(860)).as_f64();
        assert!(high > 0.0);
        assert!(low / high > 1e4, "growth {high:e} → {low:e}");
    }

    #[test]
    fn hbm1_is_weaker_than_hbm0() {
        let p = predictor();
        // Average the ratio over the mid unsafe region.
        let mut ratios = Vec::new();
        for mv in (850..=950).step_by(10) {
            let r0 = p.stack_rate(StackId(0), Millivolts(mv)).as_f64();
            let r1 = p.stack_rate(StackId(1), Millivolts(mv)).as_f64();
            if r0 > 0.0 {
                ratios.push(r1 / r0);
            }
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 1.0, "HBM1 must be weaker on average, ratio {mean}");
    }

    #[test]
    fn sensitive_pcs_have_elevated_rates() {
        let p = predictor();
        let v = Millivolts(930);
        let normal: Vec<f64> = (0..32u8)
            .filter(|i| ![4, 5, 18, 19, 20].contains(i))
            .map(|i| p.pc_rates(pc(i), v).union().as_f64())
            .collect();
        let median_normal = {
            let mut s = normal.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        for i in [4u8, 5, 18, 19, 20] {
            let rate = p.pc_rates(pc(i), v).union().as_f64();
            assert!(
                rate > median_normal,
                "PC{i} rate {rate:e} vs median {median_normal:e}"
            );
        }
    }

    #[test]
    fn polarity_average_ratio_near_21_percent() {
        // The study: 0→1 flips on average 21 % more frequent than 1→0.
        let p = predictor();
        let mut sum10 = 0.0;
        let mut sum01 = 0.0;
        let mut v = Millivolts(970);
        while v >= Millivolts(850) {
            let r = p.pc_rates(pc(0), v);
            sum10 += r.rate_1to0.as_f64();
            sum01 += r.rate_0to1.as_f64();
            v = v.saturating_sub(Millivolts(10));
        }
        let ratio = sum01 / sum10;
        assert!(
            (1.05..1.45).contains(&ratio),
            "average 0→1 / 1→0 ratio = {ratio}, expected ≈1.21"
        );
    }

    #[test]
    fn first_flip_voltages_match_paper_at_full_scale() {
        // Expected device-wide faulty bits under each pattern.
        let p = predictor();
        let bits = HbmGeometry::vcu128().total_bits() as f64;
        let expected = |mv: u32, pattern_1to0: bool| -> f64 {
            let mut sum = 0.0;
            for i in 0..32 {
                let r = p.pc_rates(pc(i), Millivolts(mv));
                sum += if pattern_1to0 {
                    r.rate_1to0.as_f64()
                } else {
                    r.rate_0to1.as_f64()
                };
            }
            sum / 32.0 * bits
        };
        // 1→0: first flips at 0.97 V — expected count order of a few.
        let e10_970 = expected(970, true);
        assert!((0.3..60.0).contains(&e10_970), "1→0 at 0.97 V: {e10_970}");
        // 0→1: not yet detectable at 0.97 V relative to 1→0, detectable at 0.96 V.
        let e01_970 = expected(970, false);
        let e01_960 = expected(960, false);
        assert!(
            e01_970 < e10_970,
            "0→1 must onset later: {e01_970} vs {e10_970}"
        );
        assert!(e01_960 > 1.0, "0→1 detectable at 0.96 V: {e01_960}");
    }

    #[test]
    fn expected_faulty_bits_scale_with_geometry() {
        let full = predictor();
        let reduced =
            RatePredictor::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 7);
        let v = Millivolts(880);
        let f = full.expected_faulty_bits(pc(0), v);
        let r = reduced.expected_faulty_bits(pc(0), v);
        // Same seed, same per-PC/bank structure; 1024× fewer rows. Rates
        // differ slightly (region sampling), counts by roughly the scale.
        let ratio = f / r;
        assert!((200.0..5000.0).contains(&ratio), "count ratio {ratio}");
    }
}
