//! Reproduces the §III headline numbers: 19 % guardband, 1.5× savings at
//! the guardband edge, 2.3× at 0.85 V, idle ≈ ⅓ of full load, −14 %
//! effective capacitance at 0.85 V.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);
    let metrics = hbm_bench::headlines(seed).expect("headline pipeline");
    println!("Headline metrics (seed {seed})");
    println!("{metrics}");
    println!("paper targets: 19% | 1.5x | 2.3x | ~0.33 | 14%");
}
