//! Integration tests of the crash semantics across the vreg/device/platform
//! stack: below V_critical the device stops responding, restoring the
//! voltage does not help, and a power cycle (regulator off/on) recovers it
//! at the cost of all DRAM content — exactly the behaviour §III-B reports.

use hbm_undervolt_suite::device::{PortId, Word256, WordOffset};
use hbm_undervolt_suite::traffic::MemoryPort;
use hbm_undervolt_suite::undervolt::{ExperimentError, Platform};
use hbm_units::{Millivolts, Ratio};

fn platform() -> Platform {
    Platform::builder().seed(3).build()
}

#[test]
fn device_operates_at_exactly_v_critical() {
    let mut p = platform();
    p.set_voltage(Millivolts(810)).unwrap();
    assert!(!p.is_crashed());
    let port = PortId::new(0).unwrap();
    let mut access = p.port(port);
    // Operations succeed (they are just massively faulty at 0.81 V).
    access.write(WordOffset(0), Word256::ONES).unwrap();
    let observed = access.read(WordOffset(0)).unwrap();
    assert!(
        observed.diff_bits(Word256::ONES) > 0,
        "0.81 V is fully faulty"
    );
}

#[test]
fn crash_is_latched_across_voltage_restore() {
    let mut p = platform();
    p.set_voltage(Millivolts(800)).unwrap();
    assert!(p.is_crashed());

    // All port traffic fails with the crash error.
    let port = PortId::new(5).unwrap();
    let err = p.port(port).read(WordOffset(0)).unwrap_err();
    assert!(ExperimentError::from(err).is_crash());

    // Raising the supply does nothing (paper: "Even restoring the supply
    // voltage does not re-enable operation").
    for mv in [810u32, 980, 1200] {
        p.set_voltage(Millivolts(mv)).unwrap();
        assert!(p.is_crashed(), "still crashed after raising to {mv} mV");
    }
}

#[test]
fn power_cycle_recovers_but_loses_content() {
    let mut p = platform();
    let port = PortId::new(7).unwrap();
    p.port(port).write(WordOffset(42), Word256::ONES).unwrap();

    p.set_voltage(Millivolts(790)).unwrap();
    assert!(p.is_crashed());

    p.power_cycle(Millivolts(1200)).unwrap();
    assert!(!p.is_crashed());
    assert_eq!(p.voltage(), Millivolts(1200));
    // DRAM content is gone: the array holds the seeded power-up background,
    // not the written pattern.
    let after = p.port(port).read(WordOffset(42)).unwrap();
    assert_ne!(after, Word256::ONES);
    // The background is deterministic per (seed, cycle): a second platform
    // with the same seed and history reads the same uninitialized word.
    let mut twin = platform();
    twin.set_voltage(Millivolts(790)).unwrap();
    twin.power_cycle(Millivolts(1200)).unwrap();
    assert_eq!(twin.port(port).read(WordOffset(42)).unwrap(), after);
    // And the platform is fully functional again.
    p.port(port).write(WordOffset(42), Word256::ONES).unwrap();
    assert_eq!(p.port(port).read(WordOffset(42)).unwrap(), Word256::ONES);
}

#[test]
fn power_cycle_into_undervoltage_crashes_again() {
    let mut p = platform();
    p.set_voltage(Millivolts(800)).unwrap();
    p.power_cycle(Millivolts(795)).unwrap();
    assert!(p.is_crashed());
    p.power_cycle(Millivolts(810)).unwrap();
    assert!(!p.is_crashed());
}

#[test]
fn power_measurement_survives_crash_cycles() {
    // The INA226/ISL68301 plumbing keeps working through crash cycles.
    let mut p = platform();
    let before = p.measure_power(Ratio::ONE).unwrap().power;
    p.set_voltage(Millivolts(790)).unwrap();
    p.power_cycle(Millivolts(1200)).unwrap();
    let after = p.measure_power(Ratio::ONE).unwrap().power;
    assert!((before.as_f64() - after.as_f64()).abs() < 0.1);
}

#[test]
fn regulator_rejects_overvoltage_but_allows_deep_undervoltage() {
    let mut p = platform();
    // Overvolting beyond VOUT_MAX is NACKed and leaves the state unchanged.
    let err = p.set_voltage(Millivolts(1400)).unwrap_err();
    assert!(matches!(err, ExperimentError::Pmbus(_)));
    assert_eq!(p.voltage(), Millivolts(1200));
    // Deep undervolting is electrically allowed (the study deliberately
    // crosses the crash threshold).
    p.set_voltage(Millivolts(700)).unwrap();
    assert!(p.is_crashed());
}
