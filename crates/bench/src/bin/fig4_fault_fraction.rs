//! Regenerates Fig. 4: fraction of faulty bits in each HBM stack at
//! different supply voltages (0.98 V down to 0.81 V).

fn main() {
    let seed = seed_from_args();
    let (series, rendered) = hbm_bench::fig4(seed).expect("fig4 pipeline");
    println!("Fig. 4 — faulty fraction per stack (seed {seed})\n");
    print!("{rendered}");
    let mid = series
        .iter()
        .find(|p| p.voltage == hbm_units::Millivolts(900))
        .expect("0.90 V swept");
    println!(
        "\nvariation: at 0.90 V HBM1/HBM0 = {:.2} (paper: HBM0 ~13% lower)",
        mid.hbm1.as_f64() / mid.hbm0.as_f64()
    );
}

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED)
}
