//! Resilient sweep: a reliability campaign that survives crashes, flaky
//! transients and a process kill. A transiently-crashing specimen is swept
//! under the [`SweepSupervisor`]; the run is "killed" partway through
//! (exactly what SIGKILL between two voltage points would do), then a
//! fresh process resumes from the checkpoint and the final report is
//! verified bit-identical to an uninterrupted campaign.
//!
//! Run with: `cargo run --release --example resilient_sweep [seed]`

use hbm_undervolt_suite::device::TransientCrashModel;
use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::report::Render;
use hbm_undervolt_suite::undervolt::{
    summarize, ExperimentError, ReliabilityConfig, RetryPolicy, SweepConfig, TestScope,
    VoltageSweep,
};
use hbm_units::Millivolts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let checkpoint = std::env::temp_dir().join(format!("resilient-sweep-{seed}.json"));
    let _ = std::fs::remove_file(&checkpoint);

    // A campaign across the cliff on a specimen that also crashes
    // transiently in the 40 mV band above the 810 mV floor.
    let mut measurement = ReliabilityConfig::quick();
    measurement.sweep = VoltageSweep::new(Millivolts(860), Millivolts(790), Millivolts(10))?;
    measurement.batch_size = 1;
    measurement.words_per_pc = Some(64);
    measurement.patterns = vec![DataPattern::AllOnes, DataPattern::AllZeros];
    measurement.scope = TestScope::EntireHbm;

    let campaign = SweepConfig::from_reliability(measurement)
        .seed(seed)
        .transient_crashes(TransientCrashModel::new(0.4, Millivolts(40)))
        .retry_policy(RetryPolicy::new(3))
        .checkpoint(checkpoint.to_string_lossy().into_owned())
        .resume(true);

    // The reference: the same campaign run uninterrupted (no checkpoint).
    let reference = SweepConfig::from_reliability(campaign.reliability().clone())
        .seed(seed)
        .transient_crashes(TransientCrashModel::new(0.4, Millivolts(40)))
        .retry_policy(RetryPolicy::new(3))
        .run()?;

    // "Kill" the campaign after three checkpointed points.
    println!("running the campaign, killing it after 3 points ...");
    let kill = campaign
        .build_supervisor()?
        .abort_after(3)
        .run(&mut campaign.build_platform());
    match kill {
        Err(ExperimentError::Interrupted { completed_points }) => {
            println!("  killed with {completed_points} points checkpointed");
        }
        other => panic!("expected the injected kill, got {other:?}"),
    }

    // A fresh process picks the campaign back up from the file.
    println!("resuming from {} ...", checkpoint.display());
    let report = campaign.run()?;
    println!("{}", report.to_text());
    println!("{}", summarize(&report));

    assert_eq!(
        report, reference,
        "resumed campaign must be bit-identical to the uninterrupted run"
    );
    println!("resumed report is bit-identical to the uninterrupted campaign");

    let _ = std::fs::remove_file(&checkpoint);
    Ok(())
}
