//! The per-device characterization record and the shared assembly logic
//! that turns a raw per-knot fault-count matrix into one.
//!
//! Keeping the V_min / weak-PC / guardband derivations in one place is
//! what lets two independent measurement paths — the fleet's coupled-carry
//! kernel descent and core's supervised traffic sweep — produce
//! bit-identical records: both hand the same count matrix to
//! [`DeviceRecord::assemble`].

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::config::{DeviceSpec, FleetConfig};

/// Sentinel fault count for a knot the device could not measure because
/// the supply sat below its crash floor.
pub const CRASHED_KNOT: u16 = u16::MAX;

/// V_min sentinel for a device that showed faults even at the highest
/// swept knot (no fault-free voltage was observed).
pub const NO_VMIN: u16 = 0;

/// One device's characterization: fixed-width scalars plus the per-PC
/// fault-count curve, exactly the columns the binary artifact stores.
///
/// Counts are exact fault-bit counts over `words_per_pc × 256` bits, knot
/// denominators shared fleet-wide, so records survive a binary→JSON→binary
/// round trip without any floating-point re-quantization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Fleet position, `0..devices`.
    pub device_id: u32,
    /// Seed of this device's fault universe.
    pub seed: u64,
    /// Lowest fault-free knot in millivolts ([`NO_VMIN`] when even the
    /// highest knot faulted).
    pub v_min_mv: u16,
    /// This device's crash floor in millivolts.
    pub crash_mv: u16,
    /// Bit `p` set when pseudo channel `p`'s union fault rate at the weak
    /// reference knot reached the configured threshold.
    pub weak_pcs: u32,
    /// Fault-bit counts, pseudo-channel-major: entry `pc × knots + k` is
    /// the union count (both polarities) at knot `k`, or [`CRASHED_KNOT`].
    pub faults: Vec<u16>,
}

impl DeviceRecord {
    /// Builds a record from a raw count matrix.
    ///
    /// `faults` must be pseudo-channel-major with one entry per
    /// `(pc, knot)`; crashed knots carry [`CRASHED_KNOT`]. V_min is the
    /// lowest knot at which every pseudo channel measured zero faults —
    /// well defined because the coupled fault field is inclusion-monotone
    /// in descending voltage.
    ///
    /// # Panics
    ///
    /// Panics when the matrix shape disagrees with the config.
    #[must_use]
    pub fn assemble(cfg: &FleetConfig, spec: DeviceSpec, faults: Vec<u16>) -> DeviceRecord {
        let knots = cfg.knots();
        let pcs = usize::from(cfg.geometry.total_pcs());
        assert_eq!(faults.len(), pcs * knots.len(), "count matrix shape");

        let mut v_min_mv = NO_VMIN;
        for (k, &knot) in knots.iter().enumerate() {
            let clean = (0..pcs).all(|pc| faults[pc * knots.len() + k] == 0);
            if clean {
                v_min_mv = knot.as_u32() as u16;
            } else {
                break;
            }
        }

        let weak_k = cfg.weak_knot_index();
        let bits = cfg.bits_per_pc() as f64;
        let mut weak_pcs = 0u32;
        for pc in 0..pcs {
            let count = faults[pc * knots.len() + weak_k];
            if count != CRASHED_KNOT && f64::from(count) / bits >= cfg.weak_rate_threshold {
                weak_pcs |= 1 << pc;
            }
        }

        DeviceRecord {
            device_id: spec.device_id,
            seed: spec.seed,
            v_min_mv,
            crash_mv: spec.crash_floor.as_u32() as u16,
            weak_pcs,
            faults,
        }
    }

    /// Union fault rate of `(pc, knot)`, `None` when the knot crashed.
    ///
    /// `bits_per_pc` is the fleet-wide denominator
    /// ([`FleetConfig::bits_per_pc`]).
    #[must_use]
    pub fn rate(&self, pc: usize, knot: usize, knot_count: usize, bits_per_pc: u64) -> Option<f64> {
        let count = self.faults[pc * knot_count + knot];
        if count == CRASHED_KNOT {
            None
        } else {
            Some(f64::from(count) / bits_per_pc as f64)
        }
    }

    /// Guardband this device proves against `nominal`, `None` when no
    /// fault-free knot was observed.
    #[must_use]
    pub fn guardband(&self, nominal: Millivolts) -> Option<Millivolts> {
        if self.v_min_mv == NO_VMIN {
            None
        } else {
            Some(nominal.saturating_sub(Millivolts(u32::from(self.v_min_mv))))
        }
    }

    /// `true` when bit `pc` of the weak-PC bitmap is set.
    #[must_use]
    pub fn is_weak(&self, pc: u8) -> bool {
        self.weak_pcs & (1u32 << pc) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> FleetConfig {
        FleetConfig {
            from: Millivolts(980),
            down_to: Millivolts(900),
            step: Millivolts(40),
            weak_reference: Millivolts(900),
            words_per_pc: 4,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn assemble_derives_v_min_and_weak_bitmap() {
        let cfg = tiny_cfg();
        let knots = cfg.knots();
        assert_eq!(knots.len(), 3);
        let pcs = usize::from(cfg.geometry.total_pcs());
        // Clean at 980 and 940 everywhere; at 900, PC 2 shows a dense
        // fault cluster and PC 5 a single bit.
        let mut faults = vec![0u16; pcs * 3];
        faults[2 * 3 + 2] = 300;
        faults[5 * 3 + 2] = 1;
        let spec = cfg.device_spec(0);
        let rec = DeviceRecord::assemble(&cfg, spec, faults);
        assert_eq!(rec.v_min_mv, 940);
        // bits = 1024: 300/1024 clears the 1e-4 threshold, 1/1024 too.
        assert!(rec.is_weak(2));
        assert!(rec.is_weak(5));
        assert!(!rec.is_weak(0));
        assert_eq!(rec.guardband(Millivolts(1200)), Some(Millivolts(260)));
    }

    #[test]
    fn faulty_top_knot_yields_no_vmin() {
        let cfg = tiny_cfg();
        let pcs = usize::from(cfg.geometry.total_pcs());
        let mut faults = vec![0u16; pcs * 3];
        faults[0] = 7; // PC 0 faulty at the very top knot
        let rec = DeviceRecord::assemble(&cfg, cfg.device_spec(1), faults);
        assert_eq!(rec.v_min_mv, NO_VMIN);
        assert_eq!(rec.guardband(Millivolts(1200)), None);
    }

    #[test]
    fn crashed_knots_do_not_extend_v_min() {
        let cfg = tiny_cfg();
        let pcs = usize::from(cfg.geometry.total_pcs());
        let mut faults = vec![0u16; pcs * 3];
        for pc in 0..pcs {
            faults[pc * 3 + 2] = CRASHED_KNOT;
        }
        let rec = DeviceRecord::assemble(&cfg, cfg.device_spec(2), faults);
        assert_eq!(rec.v_min_mv, 940, "crashed knot is not fault-free");
        assert_eq!(rec.rate(0, 2, 3, cfg.bits_per_pc()), None);
        assert_eq!(rec.rate(0, 0, 3, cfg.bits_per_pc()), Some(0.0));
    }
}
