//! Process-variation model: deterministic voltage shifts per stack, pseudo
//! channel, bank and row region.
//!
//! All variation is expressed in the voltage domain: an entity with shift
//! `+s` behaves at supply `v` the way the base model behaves at `v − s`
//! (more sensitive). Shifts compose additively, which in the exponential
//! regime corresponds to multiplicative fault-rate factors — a shift of
//! `log10(r)/D` volts multiplies the rate by `r`.
//!
//! # Per-stack normalization
//!
//! Raw Gaussian per-PC shifts would do two unwanted things: (i) the convex
//! exponential turns zero-mean voltage noise into a large positive rate bias
//! (a log-normal mean), and (ii) with only 16 PCs per stack, sampling noise
//! would swamp the small deliberate inter-stack skew, so whether HBM1 ends
//! up weaker than HBM0 would depend on the seed. The model therefore
//! normalizes each stack's PC shifts so that the stack's *mean rate
//! multiplier* (log-mean-exp at the reference slope) is exactly one before
//! the inter-stack skew and the sensitive-PC boosts are applied. The paper's
//! qualitative observations — HBM1 ≈13 % weaker, specific sensitive PCs —
//! then hold for every seed.

use hbm_device::{BankId, HbmGeometry, PcIndex, RowId, StackId};
use hbm_units::Celsius;
use serde::{Deserialize, Serialize};

use crate::hash::{combine, unit};
use crate::math::probit;

/// Deterministic process-variation model (the parameters; see
/// [`ShiftTable`] for the precomputed per-PC shifts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Half the inter-stack skew in volts: HBM1 gets `+skew`, HBM0 `−skew`.
    /// Calibrated so HBM1's average fault rate is ≈13 % above HBM0's.
    pub stack_skew_volts: f64,
    /// 1-σ of the per-pseudo-channel Gaussian shift, in volts.
    pub pc_sigma_volts: f64,
    /// Extra positive shift applied to the study's sensitive PCs.
    pub sensitive_pc_boost_volts: f64,
    /// Global indices of the sensitive PCs (PC4, PC5 on HBM0 and PC18–PC20
    /// on HBM1 in the study).
    pub sensitive_pcs: Vec<u8>,
    /// 1-σ of the per-bank Gaussian shift, in volts.
    pub bank_sigma_volts: f64,
    /// Number of consecutive rows forming one variation region.
    pub region_rows: u32,
    /// Probability that a region is "weak" (a fault cluster seed).
    pub weak_region_probability: f64,
    /// Positive shift of weak regions, in volts.
    pub weak_region_boost_volts: f64,
    /// Small negative shift of all other regions, in volts.
    pub normal_region_relief_volts: f64,
    /// Sensitivity to operating temperature, volts per °C above the study's
    /// 35 °C ambient.
    pub temperature_volts_per_degree: f64,
    /// Reference slope (decades per volt) used by the per-stack log-mean-exp
    /// normalization; matches the stuck-at-0 tail curve.
    pub normalization_decades_per_volt: f64,
}

impl VariationModel {
    /// The variation model calibrated to the study's observations.
    #[must_use]
    pub fn date21() -> Self {
        VariationModel {
            // Tuned so the deterministic stack fault-rate ratio (skew plus
            // the 2-vs-3 sensitive-PC imbalance) lands at the paper's ≈13 %:
            // boosts alone give ≈1.10×, the skew contributes the rest.
            stack_skew_volts: 7.5e-5,
            pc_sigma_volts: 0.008,
            sensitive_pc_boost_volts: 0.006,
            sensitive_pcs: vec![4, 5, 18, 19, 20],
            bank_sigma_volts: 0.002,
            region_rows: 64,
            weak_region_probability: 0.03,
            weak_region_boost_volts: 0.018,
            normal_region_relief_volts: 0.002,
            temperature_volts_per_degree: 0.001,
            normalization_decades_per_volt: 79.2,
        }
    }

    /// A variation-free model (every shift zero except temperature) for
    /// ablation studies.
    #[must_use]
    pub fn uniform() -> Self {
        VariationModel {
            stack_skew_volts: 0.0,
            pc_sigma_volts: 0.0,
            sensitive_pc_boost_volts: 0.0,
            sensitive_pcs: Vec::new(),
            bank_sigma_volts: 0.0,
            region_rows: 64,
            weak_region_probability: 0.0,
            weak_region_boost_volts: 0.0,
            normal_region_relief_volts: 0.0,
            temperature_volts_per_degree: 0.001,
            normalization_decades_per_volt: 79.2,
        }
    }

    /// Gaussian draw with standard deviation `sigma` from a hash, via the
    /// probit of a uniform.
    fn gaussian(hash: u64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 0.0;
        }
        // Keep the uniform strictly inside (0, 1).
        let u = unit(hash).clamp(1e-12, 1.0 - 1e-12);
        probit(u) * sigma
    }

    /// Raw (un-normalized) per-PC Gaussian draw.
    fn raw_pc_shift_volts(&self, seed: u64, pc: PcIndex) -> f64 {
        Self::gaussian(
            combine(&[seed, 0x7063, u64::from(pc.as_u8())]),
            self.pc_sigma_volts,
        )
    }

    /// The per-bank shift.
    #[must_use]
    pub fn bank_shift_volts(&self, seed: u64, pc: PcIndex, bank: BankId) -> f64 {
        Self::gaussian(
            combine(&[seed, 0x626B, u64::from(pc.as_u8()), u64::from(bank.0)]),
            self.bank_sigma_volts,
        )
    }

    /// The region index a row belongs to.
    #[must_use]
    pub fn region_of(&self, row: RowId) -> u32 {
        row.0 / self.region_rows.max(1)
    }

    /// The per-region shift implementing fault clustering: a few regions are
    /// strongly weak, the rest slightly relieved.
    #[must_use]
    pub fn region_shift_volts(&self, seed: u64, pc: PcIndex, bank: BankId, row: RowId) -> f64 {
        self.region_shift_volts_by_index(seed, pc, bank, self.region_of(row))
    }

    /// [`VariationModel::region_shift_volts`] addressed by region index
    /// directly — the form the injector's tile cache iterates with (one call
    /// per region instead of one per row).
    #[must_use]
    pub fn region_shift_volts_by_index(
        &self,
        seed: u64,
        pc: PcIndex,
        bank: BankId,
        region: u32,
    ) -> f64 {
        if self.weak_region_probability == 0.0 {
            return 0.0;
        }
        let u = unit(combine(&[
            seed,
            0x7267,
            u64::from(pc.as_u8()),
            u64::from(bank.0),
            u64::from(region),
        ]));
        if u < self.weak_region_probability {
            self.weak_region_boost_volts
        } else {
            -self.normal_region_relief_volts
        }
    }

    /// The temperature shift relative to the study's 35 °C ambient.
    #[must_use]
    pub fn temperature_shift_volts(&self, temperature: Celsius) -> f64 {
        (temperature.as_f64() - Celsius::STUDY_AMBIENT.as_f64()) * self.temperature_volts_per_degree
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel::date21()
    }
}

/// Precomputed per-pseudo-channel shifts for one device specimen: stack skew
/// plus the normalized Gaussian draw plus the sensitive-PC boost.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex};
/// use hbm_faults::{ShiftTable, VariationModel};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let table = ShiftTable::new(&VariationModel::date21(), 7, HbmGeometry::vcu128());
/// // Sensitive PC18 carries at least the configured boost.
/// assert!(table.pc_shift_volts(PcIndex::new(18)?) >= 0.006);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftTable {
    shifts: Vec<f64>,
}

impl ShiftTable {
    /// Computes the table for a specimen.
    #[must_use]
    pub fn new(var: &VariationModel, seed: u64, geometry: HbmGeometry) -> Self {
        let total = geometry.total_pcs();
        let k = var.normalization_decades_per_volt * std::f64::consts::LN_10;
        let mut shifts = vec![0.0f64; usize::from(total)];

        for stack in 0..geometry.stacks() {
            let stack_id = StackId(stack);
            let skew = if stack == 0 {
                -var.stack_skew_volts
            } else {
                var.stack_skew_volts
            };
            // Normalize over the non-sensitive members only; sensitive PCs
            // are pinned to exactly the boost, so the inter-stack fault-rate
            // ratio is a deterministic function of the parameters (skew plus
            // the 2-vs-3 sensitive-PC imbalance), independent of the seed.
            let normal: Vec<PcIndex> = PcIndex::all(geometry)
                .filter(|pc| {
                    pc.stack(geometry) == stack_id && !var.sensitive_pcs.contains(&pc.as_u8())
                })
                .collect();
            let raw: Vec<f64> = normal
                .iter()
                .map(|&pc| var.raw_pc_shift_volts(seed, pc))
                .collect();
            // Log-mean-exp at the reference slope: the voltage shift whose
            // rate multiplier equals the group's mean multiplier.
            let lme = if var.pc_sigma_volts == 0.0 || raw.is_empty() {
                0.0
            } else {
                let mean: f64 = raw.iter().map(|&g| (k * g).exp()).sum::<f64>() / raw.len() as f64;
                mean.ln() / k
            };
            for (&pc, &g) in normal.iter().zip(&raw) {
                shifts[pc.as_usize()] = g - lme + skew;
            }
            for pc in PcIndex::all(geometry).filter(|pc| {
                pc.stack(geometry) == stack_id && var.sensitive_pcs.contains(&pc.as_u8())
            }) {
                shifts[pc.as_usize()] = var.sensitive_pc_boost_volts + skew;
            }
        }
        ShiftTable { shifts }
    }

    /// The combined stack + normalized-PC + boost shift of a pseudo channel.
    ///
    /// # Panics
    ///
    /// Panics if `pc` exceeds the geometry the table was built for.
    #[must_use]
    pub fn pc_shift_volts(&self, pc: PcIndex) -> f64 {
        self.shifts[pc.as_usize()]
    }

    /// Iterates over `(pc index, shift)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, f64)> + '_ {
        self.shifts.iter().enumerate().map(|(i, &s)| (i as u8, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    fn table(seed: u64) -> ShiftTable {
        ShiftTable::new(&VariationModel::date21(), seed, HbmGeometry::vcu128())
    }

    #[test]
    fn shifts_are_deterministic() {
        assert_eq!(table(7), table(7));
        assert_ne!(table(7), table(8), "different seeds differ");
    }

    #[test]
    fn normalization_pins_stack_rate_multiplier() {
        let var = VariationModel::date21();
        let k = var.normalization_decades_per_volt * std::f64::consts::LN_10;
        for seed in [1u64, 7, 42, 99] {
            let t = table(seed);
            for stack in 0..2u8 {
                // Remove the skew: non-sensitive PCs of each stack must
                // average to a rate multiplier of exactly one.
                let skew = if stack == 0 {
                    -var.stack_skew_volts
                } else {
                    var.stack_skew_volts
                };
                let multipliers: Vec<f64> = (0..16u8)
                    .map(|i| i + stack * 16)
                    .filter(|i| !var.sensitive_pcs.contains(i))
                    .map(|i| (k * (t.pc_shift_volts(pc(i)) - skew)).exp())
                    .collect();
                let mean: f64 = multipliers.iter().sum::<f64>() / multipliers.len() as f64;
                assert!(
                    (mean - 1.0).abs() < 1e-9,
                    "seed {seed} stack {stack}: mean multiplier {mean}"
                );
            }
        }
    }

    #[test]
    fn sensitive_pcs_carry_exactly_the_boost() {
        let var = VariationModel::date21();
        for seed in 0..20u64 {
            let t = table(seed);
            for &i in &[4u8, 5] {
                assert_eq!(
                    t.pc_shift_volts(pc(i)),
                    var.sensitive_pc_boost_volts - var.stack_skew_volts,
                    "sensitive PC{i} (seed {seed})"
                );
            }
            for &i in &[18u8, 19, 20] {
                assert_eq!(
                    t.pc_shift_volts(pc(i)),
                    var.sensitive_pc_boost_volts + var.stack_skew_volts,
                    "sensitive PC{i} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn stack_rate_ratio_is_deterministic_13_percent() {
        // With the normalization, the stack mean-rate ratio is a pure
        // function of the parameters: the 2-vs-3 sensitive-PC imbalance plus
        // the skew, tuned to the paper's ≈13 %.
        let var = VariationModel::date21();
        let k = var.normalization_decades_per_volt * std::f64::consts::LN_10;
        for seed in [3u64, 17, 2026] {
            let t = table(seed);
            let mean_multiplier = |stack: u8| {
                let ms: Vec<f64> = (0..16u8)
                    .map(|i| i + stack * 16)
                    .map(|i| (k * t.pc_shift_volts(pc(i))).exp())
                    .collect();
                ms.iter().sum::<f64>() / ms.len() as f64
            };
            let ratio = mean_multiplier(1) / mean_multiplier(0);
            assert!(
                (1.10..1.16).contains(&ratio),
                "seed {seed}: stack rate ratio {ratio}, expected ≈1.13"
            );
        }
    }

    #[test]
    fn weak_regions_occur_at_roughly_the_configured_rate() {
        let var = VariationModel::date21();
        let mut weak = 0;
        let total = 4096;
        for bank in 0..16u16 {
            for region in 0..(total / 16) {
                let row = RowId(region * var.region_rows);
                if var.region_shift_volts(9, pc(0), BankId(bank), row) > 0.0 {
                    weak += 1;
                }
            }
        }
        let rate = f64::from(weak) / f64::from(total);
        assert!((0.015..0.05).contains(&rate), "weak-region rate {rate}");
    }

    #[test]
    fn rows_in_same_region_share_shift() {
        let var = VariationModel::date21();
        let a = var.region_shift_volts(1, pc(2), BankId(3), RowId(0));
        let b = var.region_shift_volts(1, pc(2), BankId(3), RowId(63));
        assert_eq!(a, b);
        assert_eq!(var.region_of(RowId(63)), 0);
        assert_eq!(var.region_of(RowId(64)), 1);
    }

    #[test]
    fn region_shift_by_index_matches_row_addressing() {
        let var = VariationModel::date21();
        for row in [0u32, 1, 63, 64, 640, 4095] {
            assert_eq!(
                var.region_shift_volts(11, pc(7), BankId(2), RowId(row)),
                var.region_shift_volts_by_index(11, pc(7), BankId(2), row / var.region_rows),
                "row {row}"
            );
        }
    }

    #[test]
    fn temperature_shift_sign() {
        let var = VariationModel::date21();
        assert_eq!(var.temperature_shift_volts(Celsius::STUDY_AMBIENT), 0.0);
        assert!(var.temperature_shift_volts(Celsius(45.0)) > 0.0);
        assert!(var.temperature_shift_volts(Celsius(25.0)) < 0.0);
    }

    #[test]
    fn uniform_model_has_no_spatial_variation() {
        let var = VariationModel::uniform();
        let t = ShiftTable::new(&var, 3, HbmGeometry::vcu128());
        for i in [0u8, 5, 18, 31] {
            assert_eq!(t.pc_shift_volts(pc(i)), 0.0);
            assert_eq!(var.bank_shift_volts(3, pc(i), BankId(1)), 0.0);
            assert_eq!(var.region_shift_volts(3, pc(i), BankId(1), RowId(7)), 0.0);
        }
    }

    #[test]
    fn table_iteration_covers_all_pcs() {
        let t = table(5);
        let entries: Vec<(u8, f64)> = t.iter().collect();
        assert_eq!(entries.len(), 32);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[31].0, 31);
    }
}
