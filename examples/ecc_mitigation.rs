//! ECC mitigation: how much further can you undervolt when every 64-bit
//! lane is protected by SEC-DED, and how much capacity does fault-map-guided
//! region remapping retain compared to the paper's PC-granular trade-off?
//!
//! Run with: `cargo run --release --example ecc_mitigation`

use hbm_undervolt_suite::device::{PcIndex, PortId, Word256, WordOffset};
use hbm_undervolt_suite::ecc::{EccPort, HealthMap};
use hbm_undervolt_suite::traffic::MemoryPort;
use hbm_undervolt_suite::undervolt::Platform;
use hbm_units::{Millivolts, Ratio};

const WORDS: u64 = 2048;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::builder().seed(7).build();
    let port = PortId::new(4)?; // a sensitive PC: the hardest case
    let nominal = platform.measure_power(Ratio::ONE)?.power;

    println!("SEC-DED (72,64) over {WORDS} words of sensitive PC4 (seed 7)\n");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12}",
        "V", "saving", "raw flips", "corrected", "uncorrectable"
    );

    for mv in [980u32, 950, 930, 920, 910, 900, 890, 880, 870] {
        platform.set_voltage(Millivolts(mv))?;
        let saving = nominal / platform.measure_power(Ratio::ONE)?.power;

        // Raw (unprotected) flips over the same span.
        let mut raw_flips = 0u64;
        {
            let mut access = platform.port(port);
            for w in 0..WORDS {
                access.write(WordOffset(w), Word256::ONES)?;
            }
            for w in 0..WORDS {
                let observed = access.read(WordOffset(w))?;
                raw_flips += u64::from(observed.diff_bits(Word256::ONES));
            }
        }

        // The same span behind the ECC port.
        let mut ecc = EccPort::new(platform.port(port), WORDS);
        for w in 0..WORDS {
            ecc.write(WordOffset(w), Word256::ONES)?;
        }
        let mut post_ecc_flips = 0u64;
        for w in 0..WORDS {
            let observed = ecc.read(WordOffset(w))?;
            post_ecc_flips += u64::from(observed.diff_bits(Word256::ONES));
        }
        let stats = ecc.stats();

        println!(
            "{:>8} {:>8.2}x {:>12} {:>12} {:>12}",
            format!("{:.2}", f64::from(mv) / 1000.0),
            saving,
            raw_flips,
            stats.corrected_lanes,
            format!("{} ({} flips)", stats.detected_lanes, post_ecc_flips),
        );
    }

    // Region remapping: retain capacity by avoiding weak regions entirely.
    println!("\nRegion remapping on PC4 (capacity retained at zero faults):");
    println!(
        "{:>8} {:>16} {:>18}",
        "V", "healthy regions", "capacity retained"
    );
    let injector = platform.injector().clone();
    for mv in [950u32, 930, 910, 890, 870] {
        let map = HealthMap::scan(&injector, PcIndex::new(4)?, Millivolts(mv));
        let plan = map.plan(injector.geometry());
        println!(
            "{:>8} {:>15.0}% {:>17.0}%",
            format!("{:.2}", f64::from(mv) / 1000.0),
            map.healthy_fraction() * 100.0,
            plan.capacity_fraction() * 100.0,
        );
    }
    println!("\nPC-granular trade-off would discard all 100% of PC4 as soon as it");
    println!("shows a single fault; region remapping keeps the healthy majority.");
    Ok(())
}
