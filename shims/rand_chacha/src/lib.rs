//! Vendored stand-in for `rand_chacha`: a real ChaCha8 block generator
//! behind the `rand` shim's traits. Deterministic for a given seed, which
//! is the property the workspace relies on; the exact output stream is not
//! required to match the upstream crate bit-for-bit.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word within `block`; 16 forces a refill.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        // Expand the convenience seed with SplitMix64, as upstream rand does.
        let mut x = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.cursor];
        let hi = self.block[self.cursor + 1];
        self.cursor += 2;
        (u64::from(hi) << 32) | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let y = rng.gen_range(-100i32..=100);
        assert!((-100..=100).contains(&y));
    }

    #[test]
    fn output_is_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits total; a fair stream stays near 2048.
        assert!((1700..2400).contains(&ones), "ones = {ones}");
    }
}
