//! Criterion bench for the Fig. 5 pipeline: the 32-PC × 14-voltage fault
//! table for both patterns at the full-scale geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use hbm_traffic::DataPattern;
use hbm_undervolt::{characterization::PcFaultTable, Platform, VoltageSweep};
use hbm_units::Millivolts;

fn bench_fig5(c: &mut Criterion) {
    let platform = Platform::builder().seed(7).build();
    let sweep =
        VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10)).expect("sweep valid");

    let mut group = c.benchmark_group("fig5_pc_table");
    group.sample_size(20);
    group.bench_function("both_patterns", |b| {
        b.iter(|| {
            for pattern in [DataPattern::AllOnes, DataPattern::AllZeros] {
                std::hint::black_box(PcFaultTable::from_predictor(
                    platform.full_scale_predictor(),
                    sweep,
                    pattern,
                ));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
