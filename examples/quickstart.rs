//! Quickstart: assemble the simulated VCU128 platform, undervolt the HBM,
//! measure power, and probe for reduced-voltage bit flips.
//!
//! Run with: `cargo run --release --example quickstart`

use hbm_traffic::{DataPattern, MacroProgram, TrafficGenerator};
use hbm_undervolt_suite::device::PortId;
use hbm_undervolt_suite::undervolt::Platform;
use hbm_units::{Millivolts, Ratio};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The seed identifies the simulated silicon specimen.
    let mut platform = Platform::builder().seed(7).build();
    println!(
        "platform: {} pseudo channels, {:.0} achieved peak",
        platform.pseudo_channel_count(),
        platform.achieved_bandwidth()
    );

    // 1. Power at nominal voltage, full bandwidth.
    let nominal = platform.measure_power(Ratio::ONE)?;
    println!("at {}: {:.2}", nominal.voltage, nominal.power);

    // 2. Undervolt to the guardband edge: same bandwidth, 1.5x less power,
    //    zero faults.
    platform.set_voltage(Millivolts(980))?;
    let guardband = platform.measure_power(Ratio::ONE)?;
    println!(
        "at {}: {:.2} ({:.2}x saving, still {:.0})",
        guardband.voltage,
        guardband.power,
        nominal.power / guardband.power,
        platform.achieved_bandwidth()
    );

    // 3. Verify the guardband really is fault-free with a write/read probe.
    let port = PortId::new(0)?;
    let program = MacroProgram::write_then_check(0..4096, DataPattern::AllOnes);
    let mut tg = TrafficGenerator::new(port);
    let stats = tg.run(&program, &mut platform.port(port))?;
    println!(
        "guardband probe: {} bit flips in 4096 words",
        stats.total_flips()
    );

    // 4. Push below the guardband: more savings, but bit flips appear.
    platform.set_voltage(Millivolts(860))?;
    let deep = platform.measure_power(Ratio::ONE)?;
    let mut tg = TrafficGenerator::new(port);
    let stats = tg.run(&program, &mut platform.port(port))?;
    println!(
        "at {}: {:.2} ({:.2}x saving) with {} bit flips ({} 1->0, {} 0->1)",
        deep.voltage,
        deep.power,
        nominal.power / deep.power,
        stats.total_flips(),
        stats.flips_1to0,
        stats.flips_0to1,
    );

    // 5. Below the critical voltage the device crashes; only a power cycle
    //    revives it (losing memory content).
    platform.set_voltage(Millivolts(800))?;
    assert!(platform.is_crashed());
    platform.power_cycle(Millivolts(1200))?;
    println!("crashed below V_critical and recovered by power cycle");
    Ok(())
}
