//! Property-based tests for the unit newtypes.

use hbm_units::{Amperes, GigabytesPerSecond, Millivolts, Ohms, Ratio, Volts, Watts};
use proptest::prelude::*;

proptest! {
    /// Millivolts ↔ Volts round trips exactly for any representable value.
    #[test]
    fn millivolt_volt_round_trip(mv in 0u32..10_000_000) {
        let v = Millivolts(mv);
        prop_assert_eq!(v.to_volts().to_millivolts(), v);
    }

    /// from_volts rounds to the nearest millivolt.
    #[test]
    fn from_volts_rounds(volts in 0.0f64..100.0) {
        let mv = Millivolts::from_volts(volts);
        let error = (f64::from(mv.as_u32()) / 1000.0 - volts).abs();
        prop_assert!(error <= 0.0005 + 1e-12, "error {} V", error);
    }

    /// Saturating subtraction never underflows and ordinary arithmetic is
    /// consistent with the raw integers.
    #[test]
    fn millivolt_arithmetic(a in 0u32..2_000_000, b in 0u32..2_000_000) {
        let (x, y) = (Millivolts(a), Millivolts(b));
        prop_assert_eq!(x.saturating_sub(y), Millivolts(a.saturating_sub(b)));
        prop_assert_eq!(x.abs_diff(y), Millivolts(a.abs_diff(b)));
        prop_assert_eq!(x + y, Millivolts(a + b));
        prop_assert_eq!((x < y), (a < b));
    }

    /// Ohm's law and the power relation are mutually consistent.
    #[test]
    fn electrical_relations(
        current in 0.001f64..100.0,
        resistance in 0.0001f64..10.0,
    ) {
        let i = Amperes(current);
        let r = Ohms(resistance);
        let v = i * r;
        let p = v * i;
        // P = I²R within floating-point tolerance.
        let expected = current * current * resistance;
        prop_assert!((p.as_f64() - expected).abs() < expected * 1e-12 + 1e-15);
        // Round-trips: P/V = I, P/I = V, V/R = I.
        prop_assert!(((p / v).as_f64() - current).abs() < current * 1e-9);
        prop_assert!(((p / i).as_f64() - v.as_f64()).abs() < v.as_f64() * 1e-9 + 1e-15);
        prop_assert!(((v / r).as_f64() - current).abs() < current * 1e-9);
    }

    /// Ratio percent conversions invert each other and clamping is sound.
    #[test]
    fn ratio_round_trips(fraction in -2.0f64..3.0) {
        let r = Ratio(fraction);
        prop_assert!((Ratio::from_percent(r.as_percent()).as_f64() - fraction).abs() < 1e-12);
        let clamped = r.clamp_unit().as_f64();
        prop_assert!((0.0..=1.0).contains(&clamped));
        if (0.0..=1.0).contains(&fraction) {
            prop_assert_eq!(clamped, fraction);
        }
    }

    /// Bandwidth conversions round trip within one byte/second.
    #[test]
    fn bandwidth_round_trip(gbps in 0.0f64..1000.0) {
        let rate = GigabytesPerSecond(gbps);
        let back = rate.to_bytes_per_second().to_gigabytes_per_second();
        prop_assert!((back.as_f64() - gbps).abs() < 1e-9 + gbps * 1e-12);
    }

    /// Parsing inverts Display for every representable voltage, in all
    /// three accepted spellings (the `Display` volts form, bare
    /// millivolts, and the `mV` suffix).
    #[test]
    fn millivolt_parse_display_round_trip(mv in 0u32..=u32::MAX) {
        let v = Millivolts(mv);
        prop_assert_eq!(v.to_string().parse::<Millivolts>().unwrap(), v);
        prop_assert_eq!(mv.to_string().parse::<Millivolts>().unwrap(), v);
        prop_assert_eq!(format!("{mv}mV").parse::<Millivolts>().unwrap(), v);
    }

    /// A negated spelling of any voltage never parses — including `-0`,
    /// which is the regression case for the negative-zero hole.
    #[test]
    fn negated_voltages_never_parse(mv in 0u32..=u32::MAX) {
        prop_assert!(format!("-{mv}").parse::<Millivolts>().is_err());
        prop_assert!(format!("-{}", Millivolts(mv)).parse::<Millivolts>().is_err());
    }

    /// Watts sums are order-independent (within fp) and Display precision
    /// formatting never panics.
    #[test]
    fn watt_sums_and_display(values in prop::collection::vec(0.0f64..100.0, 1..20)) {
        let forward: Watts = values.iter().map(|&w| Watts(w)).sum();
        let backward: Watts = values.iter().rev().map(|&w| Watts(w)).sum();
        prop_assert!((forward.as_f64() - backward.as_f64()).abs() < 1e-9);
        let _ = format!("{forward:.3}");
        let _ = format!("{}", Volts(values[0]));
    }
}
