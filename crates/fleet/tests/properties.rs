//! Property tests pinning the fleet layer's determinism contract: every
//! per-device record, the encoded artifact, and the population percentiles
//! are bit-identical across worker counts and device scheduling orders,
//! the columnar artifact round-trips losslessly, and the compressed
//! parametric models answer queries identically to the exact columns.

use hbm_fleet::{
    artifact, characterize_device, model, sweep, ArtifactMeta, FleetConfig, FleetCostModel,
    FleetError, FleetExport, FleetRequest, FleetService, FleetStore, PopulationSummary,
    ARTIFACT_VERSION, CRASHED_KNOT,
};
use hbm_units::Millivolts;
use proptest::prelude::*;

/// A small fleet whose knot grid straddles the crash-floor band
/// (810 ± 15 mV), so schedules cover crashed and clean knots alike.
fn small_config(devices: u32, base_seed: u64) -> FleetConfig {
    FleetConfig {
        devices,
        base_seed,
        workers: 1,
        words_per_pc: 4,
        from: Millivolts(960),
        down_to: Millivolts(820),
        step: Millivolts(20),
        weak_reference: Millivolts(900),
        ..FleetConfig::default()
    }
}

/// Deterministic Fisher–Yates driven by an LCG, so shuffled schedules are
/// reproducible from the proptest seed alone.
fn shuffled_schedule(devices: u32, mut state: u64) -> Vec<u32> {
    let mut schedule: Vec<u32> = (0..devices).collect();
    for i in (1..schedule.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        schedule.swap(i, j);
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn records_artifact_and_percentiles_are_scheduling_invariant(
        devices in 3u32..12,
        base_seed in 0u64..1_000_000,
        shuffle in any::<u64>(),
    ) {
        let mut cfg = small_config(devices, base_seed);
        let baseline = sweep::run(&cfg).unwrap();
        let baseline_bytes = artifact::encode(&cfg, &baseline.records);
        let meta = ArtifactMeta::from_config(&cfg);
        let cost = FleetCostModel::default();
        let baseline_summary =
            PopulationSummary::from_records(&meta, &baseline.records, &cost);

        for workers in [2usize, 4, 8] {
            cfg.workers = workers;
            let report = sweep::run(&cfg).unwrap();
            prop_assert_eq!(&report.records, &baseline.records, "workers {}", workers);
            prop_assert_eq!(
                artifact::encode(&cfg, &report.records),
                baseline_bytes.clone(),
                "artifact bytes diverged at {} workers",
                workers
            );
            prop_assert_eq!(
                PopulationSummary::from_records(&meta, &report.records, &cost),
                baseline_summary.clone(),
                "percentiles diverged at {} workers",
                workers
            );
        }

        // An adversarially shuffled schedule under a worker count that
        // does not divide the fleet must still merge to the same records.
        cfg.workers = 3;
        let schedule = shuffled_schedule(devices, shuffle);
        let shuffled = sweep::run_scheduled(&cfg, &schedule, characterize_device).unwrap();
        prop_assert_eq!(&shuffled.records, &baseline.records);
        prop_assert_eq!(
            artifact::encode(&cfg, &shuffled.records),
            baseline_bytes
        );
    }

    #[test]
    fn artifact_write_read_export_round_trips(
        devices in 1u32..8,
        base_seed in 0u64..1_000_000,
    ) {
        let cfg = small_config(devices, base_seed);
        let report = sweep::run(&cfg).unwrap();

        let path = std::env::temp_dir().join(format!(
            "fleet-prop-{}-{base_seed}-{devices}.hbfa",
            std::process::id()
        ));
        let written = artifact::write_to_path(&path, &cfg, &report.records).unwrap();
        let store = FleetStore::open(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(written, artifact::encode(&cfg, &report.records).len() as u64);
        prop_assert_eq!(store.meta(), &ArtifactMeta::from_config(&cfg));
        prop_assert_eq!(store.records(), report.records.clone());
        prop_assert_eq!(
            store.export().to_json(),
            FleetExport::from_records(&cfg, &report.records).to_json()
        );
    }

    /// Every recommendation served from a compressed (model-only) store
    /// equals the one served from the exact store, for any target/width —
    /// the fidelity envelope either proves the exact answer or the
    /// service falls back to a rescan that recomputes it.
    #[test]
    fn compressed_serving_agrees_with_exact_serving(
        devices in 2u32..6,
        base_seed in 0u64..1_000_000,
        target_log in -5.0f64..-0.1,
        min_pcs in 1u32..33,
    ) {
        let cfg = small_config(devices, base_seed);
        let report = sweep::run(&cfg).unwrap();
        let exact =
            FleetStore::from_bytes(artifact::encode(&cfg, &report.records)).unwrap();
        let compressed =
            FleetStore::from_bytes(model::compress_store(&exact, false).unwrap()).unwrap();
        prop_assert!(!compressed.has_exact_counts());
        prop_assert!(compressed.has_model());

        let exact_service = FleetService::new(exact);
        let compressed_service = FleetService::new(compressed);
        let target_rate = 10f64.powf(target_log);
        for device_id in 0..devices {
            let request = FleetRequest::Recommend { device_id, target_rate, min_pcs };
            prop_assert_eq!(
                compressed_service.handle(&request),
                exact_service.handle(&request),
                "device {} target {:.3e} min_pcs {}",
                device_id, target_rate, min_pcs
            );
        }
        // Summaries come from the scalar columns both stores share.
        prop_assert_eq!(
            compressed_service.handle(&FleetRequest::Summary),
            exact_service.handle(&FleetRequest::Summary)
        );
    }

    /// The stored fidelity envelope is sound: every non-crashed exact
    /// count lies inside the model's declared `[lo, hi]` band.
    #[test]
    fn fidelity_envelope_covers_every_exact_cell(
        devices in 1u32..5,
        base_seed in 0u64..1_000_000,
    ) {
        let cfg = small_config(devices, base_seed);
        let report = sweep::run(&cfg).unwrap();
        let exact =
            FleetStore::from_bytes(artifact::encode(&cfg, &report.records)).unwrap();
        let compressed = FleetStore::from_bytes(
            model::compress_store(&exact, true).unwrap()
        ).unwrap();
        let meta = *compressed.meta();
        let knots = compressed.knots().to_vec();
        let bits = meta.bits_per_pc() as f64;
        for i in 0..compressed.len() {
            let device_model = compressed.model(i).unwrap();
            for pc in 0..meta.pc_count as usize {
                for k in 0..knots.len() {
                    let count = exact.fault(i, pc, k);
                    if count == CRASHED_KNOT {
                        continue;
                    }
                    let m = device_model.predicted_count(&meta, &knots, pc, k);
                    let (lo, hi) = device_model.count_bounds(m, bits);
                    let e = f64::from(count);
                    prop_assert!(
                        lo <= e && e <= hi,
                        "device {} pc {} knot {}: exact {} outside [{}, {}]",
                        i, pc, k, e, lo, hi
                    );
                }
            }
        }
    }

    /// A v2 artifact that keeps its exact columns carries byte-identical
    /// data to what a v1 reader saw: same records, and every v1 column's
    /// raw bytes unchanged — only the header version, the column count and
    /// the appended MODEL column differ.
    #[test]
    fn v2_with_exact_matches_v1_column_bytes(
        devices in 1u32..6,
        base_seed in 0u64..1_000_000,
    ) {
        let cfg = small_config(devices, base_seed);
        let report = sweep::run(&cfg).unwrap();
        let v1 = FleetStore::from_bytes(
            artifact::encode_legacy_v1(&cfg, &report.records)
        ).unwrap();
        let v2 = FleetStore::from_bytes(
            artifact::encode(&cfg, &report.records)
        ).unwrap();
        prop_assert_eq!(v1.meta().version, 1);
        prop_assert_eq!(v2.meta().version, ARTIFACT_VERSION);
        prop_assert_eq!(v1.records(), v2.records());
        for column in [
            artifact::Column::DeviceId,
            artifact::Column::Seed,
            artifact::Column::VMin,
            artifact::Column::Crash,
            artifact::Column::WeakPcs,
            artifact::Column::Faults,
        ] {
            prop_assert_eq!(
                v1.column_bytes(column),
                v2.column_bytes(column),
                "column {:?} diverged between v1 and v2",
                column
            );
        }
        // And compressing the v2 store keeps those same exact bytes when
        // asked to.
        let kept = FleetStore::from_bytes(
            model::compress_store(&v2, true).unwrap()
        ).unwrap();
        prop_assert_eq!(kept.records(), v1.records());
    }

    #[test]
    fn future_artifact_versions_are_rejected(bump in 1u32..1000) {
        let cfg = small_config(2, 7);
        let report = sweep::run(&cfg).unwrap();
        let mut bytes = artifact::encode(&cfg, &report.records);
        let future = ARTIFACT_VERSION + bump;
        bytes[4..8].copy_from_slice(&future.to_le_bytes());
        match FleetStore::from_bytes(bytes) {
            Err(FleetError::Version { found, expected }) => {
                prop_assert_eq!(found, future);
                prop_assert_eq!(expected, ARTIFACT_VERSION);
            }
            Err(other) => return Err(TestCaseError::fail(format!(
                "expected a version error, got {other}"
            ))),
            Ok(_) => return Err(TestCaseError::fail(
                "a future-versioned artifact must not load",
            )),
        }
    }
}
