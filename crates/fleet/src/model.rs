//! Compressed parametric fault models: the MoRS-style approximation that
//! lets a fleet store answer queries without its exact per-knot columns.
//!
//! # Model parameterization
//!
//! The injector's underlying response curve follows a Gaussian weak-cell
//! tail: log₁₀ of the fault rate is locally linear in the voltage drop
//! but curves upward approaching saturation (the log of a Gaussian tail
//! is quadratic). One device's whole `pc × knot` count matrix therefore
//! compresses to a shared log-quadratic rate curve plus a per-PC onset
//! shift:
//!
//! ```text
//! rate(pc, v) = min(1, 10^(A + B·t + C·t²))      t = drop(v) + δ_pc
//!                                                drop(v) = v₀ − v
//! ```
//!
//! with `v₀` the top knot, `A` the quantized log₁₀-rate intercept
//! (1/256 decade), `B` the slope in decades per millivolt (1/4096),
//! `C ≥ 0` the curvature in decades per millivolt² (1/2²⁰) capturing the
//! pre-saturation cliff, and `δ_pc` a per-PC voltage shift in whole
//! millivolts (i8) capturing the process-variation knee. Alongside the
//! curve the model stores a two-sided *fidelity envelope*: the smallest
//! quantized coefficients such that every non-crashed cell of the exact
//! matrix satisfies
//!
//! ```text
//! exact ≤ model + a⁺ + r⁺·model     when model ≤ m_cap   (upper)
//! exact ≥ model − a⁻ − r⁻·model     when model ≤ m_cap   (lower)
//! exact ≥ model·(1 − r_w)           when model > m_cap   (lower, wall)
//! ```
//!
//! in counts, computed against the *quantized* curve so quantization
//! error is part of the bound. Both sides split at the stored prediction
//! cap `m_cap`: past it sits the per-PC saturation wall, where exact
//! counts jump to full saturation faster than any smooth curve. The
//! upper side claims nothing there (no realistic target could be proven
//! usable on the wall anyway), and the lower side switches to its own
//! wall coefficient `r_w` — without the split, one wall cell would
//! inflate `r⁻` for the whole device and erase every unusable proof in
//! the decision region. A query served from the model alone first
//! proves, through this envelope, that the exact answer could not differ
//! — otherwise the serving layer falls back to exact evidence.
//!
//! Everything here is deterministic `f64` arithmetic: the same artifact
//! always fits bit-identical models, which is what lets `compress` results
//! be golden-tested.

use serde::{Deserialize, Serialize};

use crate::artifact::{
    write_artifact, ArtifactMeta, Column, FleetStore, RawColumn, ARTIFACT_VERSION,
};
use crate::config::FleetError;
use crate::query;
use crate::record::CRASHED_KNOT;
use hbm_units::Millivolts;

/// Quantization step of the intercept: 1/256 decade.
const Q_INTERCEPT: f64 = 256.0;
/// Quantization step of the slope: 1/4096 decade per millivolt.
const Q_SLOPE: f64 = 4096.0;
/// Quantization step of the curvature: 1/2²⁰ decade per millivolt².
const Q_CURVE: f64 = 1_048_576.0;
/// Quantization step of the relative envelope coefficients: 1/256.
const Q_REL: f64 = 256.0;
/// Absolute/relative split of the envelope fit: cells predicted below
/// this many counts feed the absolute terms, cells at or above it the
/// relative terms.
const ENV_SPLIT: f64 = 4.0;
/// Fixed per-device header of the model blob: A, B, C, a⁺, r⁺, a⁻, r⁻,
/// r_w, m_cap (2 bytes each).
const MODEL_SCALAR_BYTES: usize = 18;

/// The canonical operating-point query fidelity reports score
/// recommendation agreement at: a 1% tolerable union fault rate, the
/// regime the paper's Fig. 4 power/reliability trade-off targets.
pub const OPERATING_TARGET_RATE: f64 = 1e-2;

/// One device's compressed parametric fault model.
///
/// Fixed-width blob of `18 + pc_count` bytes (see
/// [`DeviceModel::encode`]), stored one per device in the artifact's
/// MODEL column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    /// Quantized log₁₀-rate intercept at zero drop, in 1/256 decades.
    pub intercept_q: i16,
    /// Quantized rate slope, in 1/4096 decades per millivolt (≥ 0).
    pub slope_q: u16,
    /// Quantized rate curvature, in 1/2²⁰ decades per millivolt² (≥ 0).
    pub curve_q: u16,
    /// Absolute upper-envelope term `a⁺`, in whole fault-bit counts.
    pub up_abs_q: u16,
    /// Relative upper-envelope coefficient `r⁺`, in 1/256 per count.
    pub up_rel_q: u16,
    /// Absolute lower-envelope term `a⁻`, in whole fault-bit counts.
    pub lo_abs_q: u16,
    /// Relative lower-envelope coefficient `r⁻`, in 1/256 per count.
    pub lo_rel_q: u16,
    /// Wall-band lower-envelope coefficient `r_w`, in 1/256 per count,
    /// applied to predictions above `m_cap`.
    pub lo_wall_q: u16,
    /// Envelope prediction cap, in counts: cells the model predicts above
    /// this sit on the saturation wall — no upper claim, wall-band lower
    /// claim.
    pub m_cap: u16,
    /// Per-PC onset shift `δ_pc` in millivolts.
    pub pc_shift_mv: Vec<i8>,
}

/// Per-PC weighted least-squares accumulator for the log-quadratic fit,
/// over the regressors `u = drop` and `v = drop²`.
#[derive(Default, Clone, Copy)]
struct PcAccum {
    w: f64,
    su: f64,
    sv: f64,
    sy: f64,
    suu: f64,
    suv: f64,
    svv: f64,
    suy: f64,
    svy: f64,
}

impl DeviceModel {
    /// Byte width of one device's model blob.
    #[must_use]
    pub fn elem_bytes(pc_count: usize) -> usize {
        MODEL_SCALAR_BYTES + pc_count
    }

    /// Fits a model to one device's exact count row (`pc`-major,
    /// [`CRASHED_KNOT`] for crashed knots) — deterministic in the inputs.
    ///
    /// The fit is a pooled within-PC log-quadratic regression,
    /// count-weighted (inverse variance for Poisson counts on a log
    /// scale) and restricted to the region below half saturation: one
    /// shared slope and curvature from the pooled within-PC covariances,
    /// per-PC intercepts folded into the voltage shifts along each PC's
    /// local slope, then the envelope measured against the quantized
    /// curve so the stored bound is sound by construction.
    ///
    /// # Panics
    ///
    /// Panics when `faults` is not a `pc_count × knot_count` matrix.
    #[must_use]
    pub fn fit(meta: &ArtifactMeta, knots: &[Millivolts], faults: &[u16]) -> DeviceModel {
        let pcs = meta.pc_count as usize;
        let kn = knots.len();
        assert_eq!(faults.len(), pcs * kn, "count matrix shape");
        let bits = meta.bits_per_pc() as f64;
        let drop_of = |k: usize| f64::from(knots[0].as_u32() - knots[k].as_u32());

        let mut acc = vec![PcAccum::default(); pcs];
        for (pc, a) in acc.iter_mut().enumerate() {
            for k in 0..kn {
                let count = faults[pc * kn + k];
                if count == CRASHED_KNOT || count == 0 {
                    continue;
                }
                // Cells at or past half saturation sit on the rate-1
                // plateau's shoulder where clamping takes over; they carry
                // no usable curve information — the model clamps up there
                // anyway — and would only flatten the pooled fit.
                if f64::from(count) >= bits / 2.0 {
                    continue;
                }
                // Inverse-variance weighting for Poisson counts on a log
                // scale: var(log rate) ∝ 1/count, so weight by the count.
                // Single-bit cells then stop whipsawing the intercept while
                // the dense decision-region cells dominate the fit.
                let w = f64::from(count);
                let u = drop_of(k);
                let v = u * u;
                let y = (f64::from(count) / bits).log10();
                a.w += w;
                a.su += w * u;
                a.sv += w * v;
                a.sy += w * y;
                a.suu += w * u * u;
                a.suv += w * u * v;
                a.svv += w * v * v;
                a.suy += w * u * y;
                a.svy += w * v * y;
            }
        }

        // Shared slope and curvature from the pooled within-PC (weighted,
        // centered) covariances: solve the 2×2 normal equations
        // [Suu Suv; Suv Svv]·[B C]ᵀ = [Suy Svy].
        let (mut suu, mut suv, mut svv, mut suy, mut svy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for a in &acc {
            if a.w > 0.0 {
                suu += a.suu - a.su * a.su / a.w;
                suv += a.suv - a.su * a.sv / a.w;
                svv += a.svv - a.sv * a.sv / a.w;
                suy += a.suy - a.su * a.sy / a.w;
                svy += a.svy - a.sv * a.sy / a.w;
            }
        }
        let det = suu * svv - suv * suv;
        let (slope, curve) = if det > 1e-9 * suu.max(1.0) * svv.max(1.0) {
            let b = (suy * svv - svy * suv) / det;
            let c = (svy * suu - suy * suv) / det;
            if c >= 0.0 && b >= 0.0 {
                (b, c)
            } else {
                // A degenerate quadrant (downward curvature or negative
                // slope) is outside the physical model: fall back to the
                // pure log-linear fit.
                (if suu > 0.0 { (suy / suu).max(0.0) } else { 0.0 }, 0.0)
            }
        } else {
            (if suu > 0.0 { (suy / suu).max(0.0) } else { 0.0 }, 0.0)
        };

        // Per-PC intercepts of the residual after the shared curve,
        // averaged into the device intercept; the residual per-PC offset
        // becomes a voltage shift along the PC's local slope B + 2C·s̄.
        let offsets: Vec<Option<f64>> = acc
            .iter()
            .map(|a| (a.w > 0.0).then(|| (a.sy - slope * a.su - curve * a.sv) / a.w))
            .collect();
        let observed: Vec<f64> = offsets.iter().filter_map(|&o| o).collect();
        let (intercept_q, slope_q, curve_q, pc_shift_mv) = if observed.is_empty() {
            // Fully clean (or fully crashed) device: pin the curve to a
            // vanishing rate everywhere.
            (i16::MIN, 0u16, 0u16, vec![0i8; pcs])
        } else {
            let intercept = observed.iter().sum::<f64>() / observed.len() as f64;
            let shifts: Vec<i8> = offsets
                .iter()
                .zip(&acc)
                .map(|(o, a)| match o {
                    Some(c_pc) => {
                        let local = slope + 2.0 * curve * (a.su / a.w.max(1.0));
                        if local > 0.0 {
                            (((c_pc - intercept) / local).round()).clamp(-127.0, 127.0) as i8
                        } else {
                            0
                        }
                    }
                    // A PC that never faulted in the swept window: push its
                    // onset far below the grid.
                    None => -127,
                })
                .collect();
            let iq = (intercept * Q_INTERCEPT)
                .round()
                .clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16;
            let sq = (slope * Q_SLOPE).round().clamp(0.0, f64::from(u16::MAX)) as u16;
            let cq = (curve * Q_CURVE).round().clamp(0.0, f64::from(u16::MAX)) as u16;
            (iq, sq, cq, shifts)
        };

        // The upper envelope is only claimed where the prediction stays
        // below 1/32 of saturation: comfortably above any realistic
        // target's count threshold, comfortably below the saturation wall.
        let m_cap = (bits / 32.0).min(f64::from(u16::MAX)) as u16;
        let mut model = DeviceModel {
            intercept_q,
            slope_q,
            curve_q,
            up_abs_q: 0,
            up_rel_q: 0,
            lo_abs_q: 0,
            lo_rel_q: 0,
            lo_wall_q: 0,
            m_cap,
            pc_shift_mv,
        };

        // Two-sided envelope against the quantized curve: absolute terms
        // from near-clean predictions, relative terms from the rest, each
        // ceil-quantized so the stored bound is sound by construction.
        let m_cap_f = f64::from(m_cap);
        let (mut up_abs, mut lo_abs) = (0.0f64, 0.0f64);
        for pc in 0..pcs {
            for k in 0..kn {
                let count = faults[pc * kn + k];
                if count == CRASHED_KNOT {
                    continue;
                }
                let m = model.predicted_count(meta, knots, pc, k);
                if m < ENV_SPLIT {
                    up_abs = up_abs.max(f64::from(count) - m);
                    lo_abs = lo_abs.max(m - f64::from(count));
                }
            }
        }
        model.up_abs_q = up_abs.max(0.0).ceil().clamp(0.0, f64::from(u16::MAX)) as u16;
        model.lo_abs_q = lo_abs.max(0.0).ceil().clamp(0.0, f64::from(u16::MAX)) as u16;
        let (mut up_rel, mut lo_rel, mut lo_wall) = (0.0f64, 0.0f64, 0.0f64);
        for pc in 0..pcs {
            for k in 0..kn {
                let count = faults[pc * kn + k];
                if count == CRASHED_KNOT {
                    continue;
                }
                let m = model.predicted_count(meta, knots, pc, k);
                if m < ENV_SPLIT {
                    continue;
                }
                if m > m_cap_f {
                    lo_wall = lo_wall.max((m - f64::from(count)) / m);
                } else {
                    up_rel = up_rel.max((f64::from(count) - m - model.up_abs()) / m);
                    lo_rel = lo_rel.max((m - f64::from(count) - model.lo_abs()) / m);
                }
            }
        }
        model.up_rel_q = (up_rel.max(0.0) * Q_REL)
            .ceil()
            .clamp(0.0, f64::from(u16::MAX)) as u16;
        model.lo_rel_q = (lo_rel.max(0.0) * Q_REL)
            .ceil()
            .clamp(0.0, f64::from(u16::MAX)) as u16;
        model.lo_wall_q = (lo_wall.max(0.0) * Q_REL)
            .ceil()
            .clamp(0.0, f64::from(u16::MAX)) as u16;
        model
    }

    /// The dequantized intercept in decades.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        f64::from(self.intercept_q) / Q_INTERCEPT
    }

    /// The dequantized slope in decades per millivolt.
    #[must_use]
    pub fn slope(&self) -> f64 {
        f64::from(self.slope_q) / Q_SLOPE
    }

    /// The dequantized curvature in decades per millivolt².
    #[must_use]
    pub fn curve(&self) -> f64 {
        f64::from(self.curve_q) / Q_CURVE
    }

    /// The absolute upper-envelope term `a⁺` in counts.
    #[must_use]
    pub fn up_abs(&self) -> f64 {
        f64::from(self.up_abs_q)
    }

    /// The relative upper-envelope coefficient `r⁺`.
    #[must_use]
    pub fn up_rel(&self) -> f64 {
        f64::from(self.up_rel_q) / Q_REL
    }

    /// The absolute lower-envelope term `a⁻` in counts.
    #[must_use]
    pub fn lo_abs(&self) -> f64 {
        f64::from(self.lo_abs_q)
    }

    /// The relative lower-envelope coefficient `r⁻`.
    #[must_use]
    pub fn lo_rel(&self) -> f64 {
        f64::from(self.lo_rel_q) / Q_REL
    }

    /// The wall-band lower-envelope coefficient `r_w`.
    #[must_use]
    pub fn lo_wall(&self) -> f64 {
        f64::from(self.lo_wall_q) / Q_REL
    }

    /// Model-predicted fault-bit count of `(pc, knot)`, clamped to
    /// `[0, bits_per_pc]`.
    #[must_use]
    pub fn predicted_count(
        &self,
        meta: &ArtifactMeta,
        knots: &[Millivolts],
        pc: usize,
        k: usize,
    ) -> f64 {
        let bits = meta.bits_per_pc() as f64;
        let drop = f64::from(knots[0].as_u32() - knots[k].as_u32());
        let shifted = drop + f64::from(self.pc_shift_mv[pc]);
        // The parabola's left branch would turn back up at shallow drops;
        // clamp at the vertex so the curve stays monotone in the drop.
        let t = if self.curve_q > 0 {
            shifted.max(-self.slope() / (2.0 * self.curve()))
        } else {
            shifted
        };
        let y = self.intercept() + self.slope() * t + self.curve() * t * t;
        if y >= 0.0 {
            return bits;
        }
        let count = (10.0f64.powf(y) * bits).min(bits);
        // A vanishing prediction is exactly zero, so clean devices carry a
        // zero envelope instead of a ceil-ed 10⁻¹²⁸ residual. The envelope
        // is measured through this same function, so the floor is
        // self-consistent.
        if count < 1e-9 {
            0.0
        } else {
            count
        }
    }

    /// The envelope interval `[lo, hi]` the exact count of a cell with
    /// model prediction `m` is guaranteed to lie in. Past the prediction
    /// cap the upper side claims nothing (`hi = bits`) and the lower side
    /// switches to the wall-band coefficient: those cells sit on the
    /// saturation wall, where only a coarse lower bound is meaningful.
    #[must_use]
    pub fn count_bounds(&self, m: f64, bits: f64) -> (f64, f64) {
        if m > f64::from(self.m_cap) {
            ((m * (1.0 - self.lo_wall())).max(0.0), bits)
        } else {
            let lo = (m - self.lo_abs() - self.lo_rel() * m).max(0.0);
            let hi = (m + self.up_abs() + self.up_rel() * m).min(bits);
            (lo, hi)
        }
    }

    /// Serializes the model into its fixed-width little-endian blob.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::elem_bytes(self.pc_shift_mv.len()));
        out.extend_from_slice(&self.intercept_q.to_le_bytes());
        out.extend_from_slice(&self.slope_q.to_le_bytes());
        out.extend_from_slice(&self.curve_q.to_le_bytes());
        out.extend_from_slice(&self.up_abs_q.to_le_bytes());
        out.extend_from_slice(&self.up_rel_q.to_le_bytes());
        out.extend_from_slice(&self.lo_abs_q.to_le_bytes());
        out.extend_from_slice(&self.lo_rel_q.to_le_bytes());
        out.extend_from_slice(&self.lo_wall_q.to_le_bytes());
        out.extend_from_slice(&self.m_cap.to_le_bytes());
        out.extend(self.pc_shift_mv.iter().map(|&d| d as u8));
        out
    }

    /// Decodes a blob produced by [`DeviceModel::encode`].
    ///
    /// # Panics
    ///
    /// Panics when `bytes` is not `18 + pc_count` long.
    #[must_use]
    pub fn decode(bytes: &[u8], pc_count: usize) -> DeviceModel {
        assert_eq!(bytes.len(), Self::elem_bytes(pc_count), "model blob size");
        DeviceModel {
            intercept_q: i16::from_le_bytes(bytes[0..2].try_into().expect("fixed width")),
            slope_q: u16::from_le_bytes(bytes[2..4].try_into().expect("fixed width")),
            curve_q: u16::from_le_bytes(bytes[4..6].try_into().expect("fixed width")),
            up_abs_q: u16::from_le_bytes(bytes[6..8].try_into().expect("fixed width")),
            up_rel_q: u16::from_le_bytes(bytes[8..10].try_into().expect("fixed width")),
            lo_abs_q: u16::from_le_bytes(bytes[10..12].try_into().expect("fixed width")),
            lo_rel_q: u16::from_le_bytes(bytes[12..14].try_into().expect("fixed width")),
            lo_wall_q: u16::from_le_bytes(bytes[14..16].try_into().expect("fixed width")),
            m_cap: u16::from_le_bytes(bytes[16..18].try_into().expect("fixed width")),
            pc_shift_mv: bytes[18..].iter().map(|&b| b as i8).collect(),
        }
    }
}

/// Fits a model for every device row of an exact-column store.
///
/// # Errors
///
/// [`FleetError::Artifact`] when the store has no exact columns to fit
/// from.
pub fn fit_store(store: &FleetStore) -> Result<Vec<DeviceModel>, FleetError> {
    if !store.has_exact_counts() {
        return Err(FleetError::Artifact(
            "model fitting requires the exact FAULTS column".into(),
        ));
    }
    let meta = *store.meta();
    let knots = store.knots().to_vec();
    let kn = knots.len();
    let pcs = meta.pc_count as usize;
    Ok((0..store.len())
        .map(|i| {
            let row: Vec<u16> = (0..pcs * kn)
                .map(|j| store.fault(i, j / kn, j % kn))
                .collect();
            DeviceModel::fit(&meta, &knots, &row)
        })
        .collect())
}

/// Re-encodes an exact-column store as a v2 compressed artifact: the five
/// scalar columns (byte-identical), a MODEL column fitted from the exact
/// counts, and — when `keep_exact` — the FAULTS column too.
///
/// # Errors
///
/// [`FleetError::Artifact`] when the store has no exact columns.
pub fn compress_store(store: &FleetStore, keep_exact: bool) -> Result<Vec<u8>, FleetError> {
    let models = fit_store(store)?;
    let pcs = store.meta().pc_count as usize;
    let mut model_data = Vec::with_capacity(models.len() * DeviceModel::elem_bytes(pcs));
    for model in &models {
        model_data.extend_from_slice(&model.encode());
    }
    let mut columns: Vec<RawColumn> = [
        Column::DeviceId,
        Column::Seed,
        Column::VMin,
        Column::Crash,
        Column::WeakPcs,
    ]
    .into_iter()
    .map(|tag| {
        let data = store.column_bytes(tag).to_vec();
        let elem = data.len() / store.len().max(1);
        RawColumn { tag, elem, data }
    })
    .collect();
    if keep_exact {
        columns.push(RawColumn {
            tag: Column::Faults,
            elem: 2,
            data: store.column_bytes(Column::Faults).to_vec(),
        });
    }
    columns.push(RawColumn {
        tag: Column::Model,
        elem: DeviceModel::elem_bytes(pcs),
        data: model_data,
    });
    Ok(write_artifact(
        store.meta(),
        store.knots(),
        ARTIFACT_VERSION,
        &columns,
    ))
}

/// First-class fidelity quantification of the compressed models against
/// the exact map they were fitted from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Devices compared.
    pub devices: u32,
    /// Pseudo channels per device.
    pub pc_count: u32,
    /// Knots per curve.
    pub knot_count: u32,
    /// Non-crashed cells compared.
    pub cells_compared: u64,
    /// Largest absolute fault-rate error over all cells.
    pub max_abs_rate_error: f64,
    /// Mean absolute fault-rate error over all cells.
    pub mean_abs_rate_error: f64,
    /// Largest relative fault-rate error over cells with a non-zero exact
    /// rate (denominator floored at one count to keep it finite).
    pub max_rel_rate_error: f64,
    /// Fraction of exact weak-PC flags the model reproduces (1.0 when the
    /// fleet has none).
    pub weak_recall: f64,
    /// Fraction of model weak-PC flags that are exact flags (1.0 when the
    /// model raises none).
    pub weak_precision: f64,
    /// Fraction of devices whose model-only recommendation at the
    /// V_min-style query (target = weak-rate threshold, full PC width)
    /// matches the exact recommendation.
    pub v_min_agreement: f64,
    /// Largest voltage disagreement of the V_min-style query, in mV.
    pub v_min_max_delta_mv: u16,
    /// Fraction of devices whose model-only recommendation at the
    /// operating-point query ([`OPERATING_TARGET_RATE`], half PC width)
    /// matches the exact recommendation.
    pub operating_agreement: f64,
    /// Exact FAULTS column size in bytes.
    pub exact_bytes: u64,
    /// MODEL column size in bytes.
    pub model_bytes: u64,
    /// `exact_bytes / model_bytes`.
    pub compression_ratio: f64,
}

impl FidelityReport {
    /// Compares `models` (one per device row) against the exact columns of
    /// `store`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Artifact`] when the store has no exact columns.
    ///
    /// # Panics
    ///
    /// Panics when `models` does not hold one model per device row.
    pub fn compute(
        store: &FleetStore,
        models: &[DeviceModel],
    ) -> Result<FidelityReport, FleetError> {
        if !store.has_exact_counts() {
            return Err(FleetError::Artifact(
                "fidelity requires the exact FAULTS column".into(),
            ));
        }
        assert_eq!(models.len(), store.len(), "one model per device");
        let meta = *store.meta();
        let knots = store.knots().to_vec();
        let kn = knots.len();
        let pcs = meta.pc_count as usize;
        let bits = meta.bits_per_pc() as f64;
        let weak_k = knots
            .iter()
            .position(|&v| v.as_u32() as u16 == meta.weak_reference_mv);

        let mut cells = 0u64;
        let mut abs_sum = 0.0f64;
        let mut abs_max = 0.0f64;
        let mut rel_max = 0.0f64;
        let (mut weak_tp, mut weak_fn, mut weak_fp) = (0u64, 0u64, 0u64);
        let mut v_min_agree = 0u32;
        let mut v_min_delta_max = 0u16;
        let mut operating_agree = 0u32;

        for (i, model) in models.iter().enumerate() {
            for pc in 0..pcs {
                for k in 0..kn {
                    let count = store.fault(i, pc, k);
                    if count == CRASHED_KNOT {
                        continue;
                    }
                    let exact = f64::from(count) / bits;
                    let m = model.predicted_count(&meta, &knots, pc, k) / bits;
                    let err = (m - exact).abs();
                    cells += 1;
                    abs_sum += err;
                    abs_max = abs_max.max(err);
                    if count > 0 {
                        rel_max = rel_max.max(err / exact.max(1.0 / bits));
                    }
                }
                if let Some(weak_k) = weak_k {
                    let exact_weak = store.weak_pcs(i) & (1u32 << pc) != 0;
                    let rate = model.predicted_count(&meta, &knots, pc, weak_k) / bits;
                    let model_weak = rate >= meta.weak_rate_threshold
                        && store.fault(i, pc, weak_k) != CRASHED_KNOT;
                    match (exact_weak, model_weak) {
                        (true, true) => weak_tp += 1,
                        (true, false) => weak_fn += 1,
                        (false, true) => weak_fp += 1,
                        (false, false) => {}
                    }
                }
            }

            let v_min_query = (meta.weak_rate_threshold, pcs);
            let operating_query = (OPERATING_TARGET_RATE, pcs.div_ceil(2));
            for (slot, &(target, min_pcs)) in [v_min_query, operating_query].iter().enumerate() {
                let exact = query::recommend_exact(store, i, target, min_pcs);
                let approx = query::recommend_model_raw(store, i, model, target, min_pcs);
                if exact == approx {
                    if slot == 0 {
                        v_min_agree += 1;
                    } else {
                        operating_agree += 1;
                    }
                } else if slot == 0 {
                    v_min_delta_max =
                        v_min_delta_max.max(exact.voltage_mv.abs_diff(approx.voltage_mv));
                }
            }
        }

        let n = store.len() as f64;
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        let exact_bytes = (store.len() * pcs * kn * 2) as u64;
        let model_bytes = (store.len() * DeviceModel::elem_bytes(pcs)) as u64;
        Ok(FidelityReport {
            devices: meta.device_count,
            pc_count: meta.pc_count,
            knot_count: meta.knot_count,
            cells_compared: cells,
            max_abs_rate_error: abs_max,
            mean_abs_rate_error: if cells == 0 {
                0.0
            } else {
                abs_sum / cells as f64
            },
            max_rel_rate_error: rel_max,
            weak_recall: ratio(weak_tp, weak_tp + weak_fn),
            weak_precision: ratio(weak_tp, weak_tp + weak_fp),
            v_min_agreement: f64::from(v_min_agree) / n,
            v_min_max_delta_mv: v_min_delta_max,
            operating_agreement: f64::from(operating_agree) / n,
            exact_bytes,
            model_bytes,
            compression_ratio: exact_bytes as f64 / model_bytes as f64,
        })
    }

    /// Renders the report as aligned human-readable text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fidelity             {} devices x {} PCs x {} knots ({} cells)\n",
            self.devices, self.pc_count, self.knot_count, self.cells_compared
        ));
        out.push_str(&format!(
            "rate error           max {:.3e} abs / {:.3e} mean / {:.2} rel\n",
            self.max_abs_rate_error, self.mean_abs_rate_error, self.max_rel_rate_error
        ));
        out.push_str(&format!(
            "weak-PC bitmap       recall {:.3} precision {:.3}\n",
            self.weak_recall, self.weak_precision
        ));
        out.push_str(&format!(
            "recommendation agree v_min {:.3} (max delta {} mV) / operating {:.3}\n",
            self.v_min_agreement, self.v_min_max_delta_mv, self.operating_agreement
        ));
        out.push_str(&format!(
            "compression          {} -> {} bytes ({:.1}x)\n",
            self.exact_bytes, self.model_bytes, self.compression_ratio
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode;
    use crate::config::FleetConfig;
    use crate::sweep;

    fn exact_store() -> FleetStore {
        let cfg = FleetConfig {
            devices: 6,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(860),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        FleetStore::from_bytes(encode(&cfg, &records)).unwrap()
    }

    #[test]
    fn model_blob_round_trips() {
        let store = exact_store();
        for model in fit_store(&store).unwrap() {
            let blob = model.encode();
            assert_eq!(blob.len(), DeviceModel::elem_bytes(model.pc_shift_mv.len()));
            assert_eq!(DeviceModel::decode(&blob, model.pc_shift_mv.len()), model);
        }
    }

    #[test]
    fn envelope_covers_every_cell() {
        let store = exact_store();
        let meta = *store.meta();
        let knots = store.knots().to_vec();
        let bits = meta.bits_per_pc() as f64;
        for (i, model) in fit_store(&store).unwrap().iter().enumerate() {
            for pc in 0..meta.pc_count as usize {
                for k in 0..knots.len() {
                    let count = store.fault(i, pc, k);
                    if count == CRASHED_KNOT {
                        continue;
                    }
                    let m = model.predicted_count(&meta, &knots, pc, k);
                    let (lo, hi) = model.count_bounds(m, bits);
                    let e = f64::from(count);
                    assert!(
                        lo <= e && e <= hi,
                        "device {i} pc {pc} knot {k}: {e} outside [{lo}, {hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn fitting_is_deterministic() {
        let store = exact_store();
        assert_eq!(fit_store(&store).unwrap(), fit_store(&store).unwrap());
        let a = compress_store(&store, false).unwrap();
        let b = compress_store(&store, false).unwrap();
        assert_eq!(a, b, "compression must be byte-deterministic");
    }

    #[test]
    fn clean_device_model_predicts_zero() {
        let cfg = FleetConfig {
            devices: 1,
            workers: 1,
            words_per_pc: 8,
            from: Millivolts(1040),
            down_to: Millivolts(1000),
            step: Millivolts(20),
            weak_reference: Millivolts(1000),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        let store = FleetStore::from_bytes(encode(&cfg, &records)).unwrap();
        let model = &fit_store(&store).unwrap()[0];
        assert_eq!(model.intercept_q, i16::MIN);
        assert_eq!(model.up_abs_q, 0);
        assert_eq!(model.lo_abs_q, 0);
        assert_eq!(model.up_rel_q, 0);
        assert_eq!(model.lo_rel_q, 0);
        assert_eq!(model.lo_wall_q, 0);
        let meta = *store.meta();
        let knots = store.knots().to_vec();
        for k in 0..knots.len() {
            assert_eq!(model.predicted_count(&meta, &knots, 0, k), 0.0);
        }
    }

    #[test]
    fn fidelity_report_is_sane() {
        let store = exact_store();
        let models = fit_store(&store).unwrap();
        let report = FidelityReport::compute(&store, &models).unwrap();
        assert_eq!(report.devices, 6);
        assert!(report.cells_compared > 0);
        // ~10.2× on this 8-knot toy grid; the production 17-knot grid's
        // ≥20× claim is pinned by `benches/fleet_compress.rs`.
        assert!(
            report.compression_ratio > 10.0,
            "{}",
            report.compression_ratio
        );
        assert!((0.0..=1.0).contains(&report.weak_recall));
        assert!((0.0..=1.0).contains(&report.weak_precision));
        assert!((0.0..=1.0).contains(&report.v_min_agreement));
        assert!((0.0..=1.0).contains(&report.operating_agreement));
        let text = report.to_text();
        assert!(text.contains("compression"), "{text}");
    }
}
