//! Approximate storage: the class of application the paper's §III-C
//! motivates — error-tolerant data (here an 8-bit grayscale image) stored
//! in aggressively undervolted HBM.
//!
//! For each voltage the example stores the image, reads it back through the
//! fault model, and reports the quality degradation (PSNR) next to the
//! power saving, reproducing the power/quality trade-off that motivates
//! heterogeneous-reliability memory.
//!
//! Run with: `cargo run --release --example approximate_storage`

use hbm_undervolt_suite::device::{PortId, Word256, WordOffset};
use hbm_undervolt_suite::traffic::MemoryPort;
use hbm_undervolt_suite::undervolt::Platform;
use hbm_units::{Millivolts, Ratio};

/// A synthetic 64×128 8-bit grayscale image: smooth gradient + texture.
fn make_image() -> Vec<u8> {
    (0..64 * 128)
        .map(|i| {
            let (x, y) = (i % 128, i / 128);
            let gradient = (x * 2) as u8;
            let texture = (((x ^ y) & 0xF) * 4) as u8;
            gradient.wrapping_add(texture)
        })
        .collect()
}

fn pack(image: &[u8]) -> Vec<Word256> {
    image
        .chunks(32)
        .map(|chunk| {
            let mut lanes = [0u64; 4];
            for (i, &byte) in chunk.iter().enumerate() {
                lanes[i / 8] |= u64::from(byte) << ((i % 8) * 8);
            }
            Word256(lanes)
        })
        .collect()
}

fn unpack(words: &[Word256], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for word in words {
        for i in 0..32 {
            if out.len() == len {
                break;
            }
            out.push((word.0[i / 8] >> ((i % 8) * 8)) as u8);
        }
    }
    out
}

fn psnr(original: &[u8], degraded: &[u8]) -> f64 {
    let mse: f64 = original
        .iter()
        .zip(degraded)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / original.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0_f64 * 255.0 / mse).log10()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut platform = Platform::builder().seed(7).build();
    let image = make_image();
    let words = pack(&image);
    let port = PortId::new(2)?;

    let nominal = platform.measure_power(Ratio::ONE)?.power;
    println!(
        "image: {} bytes; nominal power {:.2}\n",
        image.len(),
        nominal
    );
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "V", "saving", "bit flips", "PSNR (dB)"
    );

    for mv in [1200u32, 980, 950, 920, 900, 880, 870, 860, 850] {
        platform.set_voltage(Millivolts(mv))?;

        // Store and read back through the undervolted port.
        let mut flips = 0u64;
        let mut readback = Vec::with_capacity(words.len());
        {
            let mut access = platform.port(port);
            for (i, &w) in words.iter().enumerate() {
                access.write(WordOffset(i as u64), w)?;
            }
            for (i, &w) in words.iter().enumerate() {
                let observed = access.read(WordOffset(i as u64))?;
                flips += u64::from(observed.diff_bits(w));
                readback.push(observed);
            }
        }
        let degraded = unpack(&readback, image.len());
        let quality = psnr(&image, &degraded);
        let saving = nominal / platform.measure_power(Ratio::ONE)?.power;

        println!(
            "{:>8} {:>9.2}x {:>10} {:>12}",
            format!("{:.2}", f64::from(mv) / 1000.0),
            saving,
            flips,
            if quality.is_infinite() {
                "lossless".to_owned()
            } else {
                format!("{quality:.1}")
            },
        );
    }

    println!("\nreading: within the guardband storage is lossless at 1.5x savings;");
    println!("below it, applications that tolerate noise can trade dBs for watts.");
    Ok(())
}
