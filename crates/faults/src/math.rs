//! Small numerical helpers: inverse normal CDF for deterministic Gaussian
//! draws.

/// Acklam's rational approximation of the inverse standard normal CDF
/// (probit function), accurate to ≈1.15e-9 over the open unit interval.
///
/// Used to turn deterministic per-entity uniform hashes into Gaussian
/// process-variation shifts without consuming an RNG stream.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use hbm_faults::math::probit;
///
/// assert!(probit(0.5).abs() < 1e-9);
/// assert!((probit(0.975) - 1.959964).abs() < 1e-4);
/// assert!((probit(0.025) + 1.959964).abs() < 1e-4);
/// ```
#[must_use]
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The standard normal CDF via `erfc`-free Abramowitz–Stegun 7.1.26-style
/// approximation (max error ≈7.5e-8), used for analytic calibration tests.
///
/// # Examples
///
/// ```
/// use hbm_faults::math::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs() / std::f64::consts::SQRT_2;

    // Abramowitz & Stegun erf approximation 7.1.26.
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    0.5 * (1.0 + sign * y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_symmetry() {
        for p in [0.001, 0.01, 0.1, 0.3, 0.49] {
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-7, "p = {p}");
        }
    }

    #[test]
    fn probit_known_quantiles() {
        assert!((probit(0.8413447) - 1.0).abs() < 1e-4);
        assert!((probit(0.9986501) - 3.0).abs() < 1e-4);
        assert!((probit(0.0013499) + 3.0).abs() < 1e-4);
    }

    #[test]
    fn probit_inverts_cdf() {
        for x in [-3.0, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0] {
            let p = normal_cdf(x);
            assert!((probit(p) - x).abs() < 1e-4, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "probit requires p in (0, 1)")]
    fn probit_rejects_zero() {
        let _ = probit(0.0);
    }

    #[test]
    fn normal_cdf_tails() {
        assert!(normal_cdf(-8.0) < 1e-12);
        assert!(normal_cdf(8.0) > 1.0 - 1e-12);
    }
}
