//! Criterion bench for the fault injector: per-word mask throughput across
//! the fault-density regimes (guardband, onset, exponential, saturation),
//! driven through the unified [`MaskKernel`] backend API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_device::{HbmGeometry, PcIndex, WordOffset};
use hbm_faults::{FaultFieldMode, FaultInjector, FaultModelParams, KernelBackend, MaskKernel};
use hbm_units::Millivolts;

fn bench_injector(c: &mut Criterion) {
    let injector = FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 7);
    let pc = PcIndex::new(0).expect("valid pc");
    let words = 4096u64;

    for backend in [KernelBackend::Scalar, KernelBackend::BitSliced] {
        let kernel = injector.kernel(FaultFieldMode::PerVoltage, backend);
        let mut group = c.benchmark_group(format!("injector_masks/{}", backend.as_token()));
        group.throughput(Throughput::Elements(words));
        for mv in [1000u32, 950, 900, 860, 830] {
            group.bench_with_input(BenchmarkId::from_parameter(mv), &mv, |b, &mv| {
                let v = Millivolts(mv);
                b.iter(|| {
                    let mut acc = 0u64;
                    for w in 0..words {
                        let (s0, s1) = kernel.masks(pc, WordOffset(w), v);
                        acc += u64::from(s0.count_ones() + s1.count_ones());
                    }
                    acc
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_injector);
criterion_main!(benches);
