//! AXI traffic generation for the HBM undervolting experiments.
//!
//! The study's §II-B instruments each HBM stack with a controller holding
//! one **AXI Traffic Generator** (TG) per AXI port. The controller
//! configures each TG, sends *macro commands*, receives responses, checks
//! status and reports statistics back to the host. This crate models that
//! layer:
//!
//! - [`DataPattern`]: the test patterns (the paper uses all-ones and
//!   all-zeros to separate 1→0 from 0→1 flips; extensions like
//!   checkerboard and PRBS are included for the pattern-sensitivity
//!   exploration);
//! - [`MacroCommand`] / [`MacroProgram`]: the TG command language
//!   (sequential writes, read-checks, raw reads);
//! - [`TrafficGenerator`]: executes a program against a [`MemoryPort`] and
//!   gathers [`PortStats`] (word counts, fault counts split by polarity);
//! - [`StackController`]: drives the 16 TGs of one stack;
//! - [`MemoryPort`]: the access abstraction the platform layer implements
//!   (with fault injection) and [`DirectPort`] implements (fault-free).
//!
//! # Examples
//!
//! ```
//! use hbm_device::{HbmDevice, HbmGeometry, PortId};
//! use hbm_traffic::{DataPattern, DirectPort, MacroProgram, TrafficGenerator};
//!
//! # fn main() -> Result<(), hbm_device::DeviceError> {
//! let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
//! let port = PortId::new(0)?;
//! let program = MacroProgram::write_then_check(0..1024, DataPattern::AllOnes);
//!
//! let mut tg = TrafficGenerator::new(port);
//! let stats = tg.run(&program, &mut DirectPort::new(&mut device, port))?;
//! // Fault-free device: everything written, nothing flipped.
//! assert_eq!(stats.words_written, 1024);
//! assert_eq!(stats.total_flips(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod exec;
mod generator;
mod march;
mod pattern;
mod program;
mod stats;

pub use controller::StackController;
pub use exec::{merge_shard_results, run_sharded, ShardJob};
pub use generator::{DirectPort, MemoryPort, PortProvider, TrafficGenerator};
pub use march::{AddressOrder, MarchElement, MarchOp, MarchTest};
pub use pattern::DataPattern;
pub use program::{MacroCommand, MacroProgram};
pub use stats::PortStats;
