//! Error type for fault-model configuration.

use std::error::Error;
use std::fmt;

use crate::landmarks::VoltageLandmarks;

/// Errors reported when a fault-model parameter set is inconsistent.
///
/// # Examples
///
/// ```
/// use hbm_faults::{FaultModelError, FaultModelParams};
///
/// let mut params = FaultModelParams::date21();
/// params.stuck0_share = 1.5;
/// let err = params.try_validate().unwrap_err();
/// assert!(matches!(err, FaultModelError::InvalidStuck0Share { .. }));
/// assert!(err.to_string().contains("stuck0_share"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultModelError {
    /// The landmark voltages violate the ordering
    /// `v_critical ≤ v_all_faulty ≤ v_min ≤ v_nom`.
    MisorderedLandmarks {
        /// The offending landmark set.
        landmarks: VoltageLandmarks,
    },
    /// The stuck-at-0 share lies outside the open interval `(0, 1)`.
    InvalidStuck0Share {
        /// The offending share.
        share: f64,
    },
    /// A response curve saturates at or above V_min, which would leak faults
    /// into the guardband even before gating.
    CurveSaturatesAboveVmin {
        /// The curve's saturation voltage in volts.
        v_saturation_volts: f64,
        /// V_min in volts.
        v_min_volts: f64,
    },
}

impl fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModelError::MisorderedLandmarks { landmarks } => {
                write!(f, "landmark ordering violated: {landmarks:?}")
            }
            FaultModelError::InvalidStuck0Share { share } => {
                write!(f, "stuck0_share must be in (0, 1), got {share}")
            }
            FaultModelError::CurveSaturatesAboveVmin {
                v_saturation_volts,
                v_min_volts,
            } => write!(
                f,
                "curves must saturate below V_min: saturation {v_saturation_volts} V \
                 vs V_min {v_min_volts} V"
            ),
        }
    }
}

impl Error for FaultModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Millivolts;

    #[test]
    fn display_messages_are_informative() {
        let samples = [
            FaultModelError::MisorderedLandmarks {
                landmarks: VoltageLandmarks {
                    v_nom: Millivolts(1000),
                    v_min: Millivolts(1100),
                    v_all_faulty: Millivolts(840),
                    v_critical: Millivolts(810),
                },
            },
            FaultModelError::InvalidStuck0Share { share: 1.5 },
            FaultModelError::CurveSaturatesAboveVmin {
                v_saturation_volts: 1.0,
                v_min_volts: 0.98,
            },
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<FaultModelError>();
    }
}
