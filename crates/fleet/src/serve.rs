//! The long-lived fleet serving loop: one loaded artifact, many queries.
//!
//! [`FleetService`] wraps a [`FleetStore`] and answers [`FleetRequest`]s
//! without re-opening the artifact per query — the whole point of the
//! compressed format. Recommendations are served **model-first**: the
//! per-device [`crate::model::DeviceModel`] decides every cell through
//! its fidelity envelope, and only when a cell is genuinely undecidable
//! does the service fall back to exact evidence — the stored FAULTS
//! column when the artifact kept it, else an on-demand kernel rescan
//! reconstructed from the header. Either way the answer is identical to
//! the exact one; the envelope only ever changes *where* it comes from.
//!
//! [`serve`] runs the LDJSON transport: one request JSON per input line,
//! one response JSON per output line, same order. A malformed line
//! produces an `Error` response (kind `parse`) and the loop continues;
//! EOF ends the session and returns the counters.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::api::{ApiError, FleetRequest, FleetResponse};
use crate::artifact::FleetStore;
use crate::config::FleetError;
use crate::model::{fit_store, DeviceModel, FidelityReport};
use crate::pipeline::RescanCache;
use crate::population::{FleetCostModel, PopulationSummary};
use crate::query;

/// Default rescan-cache byte budget (`hbmctl serve --rescan-cache-mb 64`).
pub const DEFAULT_RESCAN_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Serving counters, reported once per session at EOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests answered (including error replies).
    pub queries_served: u64,
    /// Recommendations answered purely from the compressed model.
    pub compressed_hits: u64,
    /// Recommendations that needed exact evidence (stored column or
    /// kernel rescan).
    pub exact_rescans: u64,
    /// Size of the loaded MODEL column in bytes (0 when absent).
    pub model_bytes: u64,
    /// Rescanned count rows served from the cache instead of the kernel.
    pub rescan_cache_hits: u64,
    /// On-demand kernel rescans actually executed (each one derives a
    /// whole device row; concurrent identical misses share one).
    pub kernel_rescans: u64,
    /// Cached rescan rows evicted to stay within the byte budget.
    pub rescan_cache_evictions: u64,
    /// Requests that blocked on another request's in-flight rescan
    /// instead of duplicating it.
    pub singleflight_waits: u64,
}

/// A loaded artifact plus the counters of everything served from it.
#[derive(Debug)]
pub struct FleetService {
    store: FleetStore,
    queries_served: AtomicU64,
    compressed_hits: AtomicU64,
    exact_rescans: AtomicU64,
    /// Single-flight LRU cache over kernel-rescanned count rows.
    rescan_cache: RescanCache,
    /// Per-device decoded models, decoded at most once per session.
    models: Vec<OnceLock<Option<DeviceModel>>>,
    /// The fidelity path's full model table (stored-column decode or a
    /// whole-store fit), built at most once per session.
    fitted: OnceLock<Result<Arc<Vec<DeviceModel>>, ApiError>>,
}

impl FleetService {
    /// Wraps a loaded store for serving, with the default rescan-cache
    /// budget ([`DEFAULT_RESCAN_CACHE_BYTES`]).
    #[must_use]
    pub fn new(store: FleetStore) -> FleetService {
        FleetService::with_rescan_cache(store, DEFAULT_RESCAN_CACHE_BYTES)
    }

    /// Wraps a loaded store with an explicit rescan-cache byte budget.
    /// A budget of 0 disables the cache (and its single-flight dedup)
    /// entirely: every envelope miss runs the kernel.
    #[must_use]
    pub fn with_rescan_cache(store: FleetStore, budget_bytes: usize) -> FleetService {
        let devices = store.len();
        FleetService {
            store,
            queries_served: AtomicU64::new(0),
            compressed_hits: AtomicU64::new(0),
            exact_rescans: AtomicU64::new(0),
            rescan_cache: RescanCache::new(budget_bytes),
            models: (0..devices).map(|_| OnceLock::new()).collect(),
            fitted: OnceLock::new(),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn store(&self) -> &FleetStore {
        &self.store
    }

    /// The configured rescan-cache byte budget (0 = disabled).
    #[must_use]
    pub fn rescan_cache_budget(&self) -> usize {
        self.rescan_cache.budget_bytes()
    }

    /// Current counter values.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let cache = self.rescan_cache.counters();
        ServeStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            compressed_hits: self.compressed_hits.load(Ordering::Relaxed),
            exact_rescans: self.exact_rescans.load(Ordering::Relaxed),
            model_bytes: self.store.model_bytes(),
            rescan_cache_hits: cache.hits,
            kernel_rescans: cache.kernel_rescans,
            rescan_cache_evictions: cache.evictions,
            singleflight_waits: cache.singleflight_waits,
        }
    }

    /// Answers one request. Never panics on caller input: invalid
    /// parameters come back as [`FleetResponse::Error`].
    pub fn handle(&self, request: &FleetRequest) -> FleetResponse {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        if let Err(err) = request.validate(self.store.meta().pc_count) {
            return FleetResponse::Error(err);
        }
        match *request {
            FleetRequest::Recommend {
                device_id,
                target_rate,
                min_pcs,
            } => self.recommend(device_id, target_rate, min_pcs as usize),
            FleetRequest::Summary => FleetResponse::Summary(PopulationSummary::from_store(
                &self.store,
                &FleetCostModel::default(),
            )),
            FleetRequest::Fidelity => self.fidelity(),
            FleetRequest::Export => {
                if self.store.has_exact_counts() {
                    FleetResponse::Export(self.store.export())
                } else {
                    FleetResponse::Error(ApiError::runtime(
                        "export needs the exact FAULTS column; this artifact was \
                         compressed without --keep-exact",
                    ))
                }
            }
        }
    }

    fn recommend(&self, device_id: u32, target_rate: f64, min_pcs: usize) -> FleetResponse {
        let row = match self.store.find(device_id) {
            Ok(row) => row,
            Err(err) => return FleetResponse::Error(ApiError::from(&err)),
        };
        if let Some(model) = self.cached_model(row) {
            if let Some(rec) =
                query::recommend_model(&self.store, row, &model, target_rate, min_pcs)
            {
                self.compressed_hits.fetch_add(1, Ordering::Relaxed);
                return FleetResponse::Recommendation(rec);
            }
        }
        // No model column, or the envelope abstained: exact evidence.
        self.exact_rescans.fetch_add(1, Ordering::Relaxed);
        if self.store.has_exact_counts() {
            return FleetResponse::Recommendation(query::recommend_exact(
                &self.store,
                row,
                target_rate,
                min_pcs,
            ));
        }
        match self.rescan_row(row) {
            Ok(counts) => FleetResponse::Recommendation(query::recommend_from_counts(
                &self.store,
                row,
                &counts,
                target_rate,
                min_pcs,
            )),
            Err(err) => FleetResponse::Error(ApiError::from(&err)),
        }
    }

    /// The device's decoded model, decoded at most once per session.
    fn cached_model(&self, row: usize) -> Option<DeviceModel> {
        self.models[row]
            .get_or_init(|| self.store.model(row))
            .clone()
    }

    /// The device's exact count row via the single-flight rescan cache:
    /// N concurrent misses on the same device run exactly one kernel
    /// rescan, and repeats hit the LRU-bounded cache.
    fn rescan_row(&self, row: usize) -> Result<Arc<Vec<u16>>, FleetError> {
        self.rescan_cache
            .get_or_rescan(self.store.device_id(row), || {
                query::rescan_counts(&self.store, row)
            })
    }

    fn fidelity(&self) -> FleetResponse {
        let models = match self.stored_or_fresh_models() {
            Ok(models) => models,
            Err(err) => return FleetResponse::Error(err),
        };
        match FidelityReport::compute(&self.store, &models) {
            Ok(report) => FleetResponse::Fidelity(report),
            Err(err) => FleetResponse::Error(ApiError::from(&err)),
        }
    }

    /// The fidelity path's model table — stored-column decode when the
    /// artifact carries MODEL, else a whole-store fit — built at most
    /// once per session and shared by every subsequent fidelity call.
    fn stored_or_fresh_models(&self) -> Result<Arc<Vec<DeviceModel>>, ApiError> {
        self.fitted
            .get_or_init(|| {
                if self.store.has_model() {
                    Ok(Arc::new(
                        (0..self.store.len())
                            .map(|i| self.store.model(i).expect("MODEL column present"))
                            .collect(),
                    ))
                } else {
                    fit_store(&self.store)
                        .map(Arc::new)
                        .map_err(|err| ApiError::from(&err))
                }
            })
            .clone()
    }

    /// Answers one raw LDJSON request line: parse, handle, serialize —
    /// the single per-line funnel shared by the sequential [`serve`] loop
    /// and the concurrent pipeline, so the two transports produce
    /// byte-identical response lines by construction.
    ///
    /// # Errors
    ///
    /// Only response *serialization* failures surface as `Err` (they
    /// abort the transport); a malformed request is answered in-band as
    /// an `Error` response line.
    pub(crate) fn handle_line(&self, line: &str) -> Result<String, ApiError> {
        let response = match serde_json::from_str::<FleetRequest>(line) {
            Ok(request) => self.handle(&request),
            Err(err) => {
                self.queries_served.fetch_add(1, Ordering::Relaxed);
                FleetResponse::Error(ApiError::parse(format!("bad request line: {err}")))
            }
        };
        response.to_json()
    }
}

/// Runs the LDJSON request loop sequentially until EOF and returns the
/// session stats. This is the reference implementation the concurrent
/// pipeline ([`crate::pipeline::serve_concurrent`]) is byte-identity
/// proptested against.
///
/// The output is flushed after **every** response line, not only at EOF:
/// a request/reply client over a pipe sends its next request only after
/// reading the previous answer, and would deadlock behind a buffered
/// writer that holds responses until the session ends.
///
/// # Errors
///
/// Only transport I/O errors abort the loop; request-level problems are
/// answered in-band as [`FleetResponse::Error`] lines.
pub fn serve(
    service: &FleetService,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<ServeStats> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let json = service
            .handle_line(&line)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.message))?;
        writeln!(output, "{json}")?;
        output.flush()?;
    }
    Ok(service.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode;
    use crate::config::FleetConfig;
    use crate::model::compress_store;
    use crate::sweep;
    use hbm_units::Millivolts;

    fn exact_store(devices: u32) -> FleetStore {
        let cfg = FleetConfig {
            devices,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(860),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        FleetStore::from_bytes(encode(&cfg, &records)).unwrap()
    }

    /// An all-clean grid: the sweep stops far above every onset voltage,
    /// so every cell is certainly fault-free and the model envelope
    /// decides every query without exact evidence.
    fn clean_store() -> FleetStore {
        let cfg = FleetConfig {
            devices: 3,
            workers: 1,
            words_per_pc: 8,
            from: Millivolts(1000),
            down_to: Millivolts(960),
            step: Millivolts(20),
            weak_reference: Millivolts(980),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        FleetStore::from_bytes(encode(&cfg, &records)).unwrap()
    }

    #[test]
    fn happy_path_serves_without_exact_column_reads() {
        let exact = clean_store();
        let compressed = FleetStore::from_bytes(compress_store(&exact, true).unwrap()).unwrap();
        assert!(compressed.has_exact_counts() && compressed.has_model());
        let service = FleetService::new(compressed);
        let response = service.handle(&FleetRequest::Recommend {
            device_id: 1,
            target_rate: 1e-2,
            min_pcs: 16,
        });
        assert!(
            matches!(response, FleetResponse::Recommendation(_)),
            "{response:?}"
        );
        let summary = service.handle(&FleetRequest::Summary);
        assert!(matches!(summary, FleetResponse::Summary(_)), "{summary:?}");
        let stats = service.stats();
        assert_eq!(stats.queries_served, 2);
        assert_eq!(stats.compressed_hits, 1);
        assert_eq!(stats.exact_rescans, 0);
        assert!(stats.model_bytes > 0);
        // The artifact kept its exact columns, yet neither query read them.
        assert_eq!(service.store().exact_column_reads(), 0);
    }

    #[test]
    fn model_answers_match_exact_answers() {
        let exact = exact_store(4);
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        let service = FleetService::new(compressed);
        for device_id in 0..4u32 {
            for (target, min_pcs) in [(1e-3, 32u32), (1e-2, 16), (0.5, 1)] {
                let row = exact.find(device_id).unwrap();
                let want = query::recommend_exact(&exact, row, target, min_pcs as usize);
                let got = service.handle(&FleetRequest::Recommend {
                    device_id,
                    target_rate: target,
                    min_pcs,
                });
                assert_eq!(
                    got,
                    FleetResponse::Recommendation(want),
                    "device {device_id} target {target}"
                );
            }
        }
        let stats = service.stats();
        assert_eq!(stats.queries_served, 12);
        assert_eq!(stats.compressed_hits + stats.exact_rescans, 12);
    }

    #[test]
    fn ldjson_loop_answers_in_order_and_survives_garbage() {
        let service = FleetService::new(exact_store(2));
        let input = concat!(
            "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.01,\"min_pcs\":16}}\n",
            "not json\n",
            "\"Summary\"\n",
            "{\"Recommend\":{\"device_id\":0,\"target_rate\":0.0,\"min_pcs\":16}}\n",
        );
        let mut output = Vec::new();
        let stats = serve(&service, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"Recommendation\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"parse\""), "{}", lines[1]);
        assert!(lines[2].starts_with("{\"Summary\":"), "{}", lines[2]);
        assert!(lines[3].contains("\"config\""), "{}", lines[3]);
        assert_eq!(stats.queries_served, 4);
    }

    #[test]
    fn fidelity_route_works_on_exact_stores_and_fails_cleanly_without_exact() {
        let exact = exact_store(3);
        let service = FleetService::new(exact.clone());
        assert!(matches!(
            service.handle(&FleetRequest::Fidelity),
            FleetResponse::Fidelity(_)
        ));
        let compressed = FleetStore::from_bytes(compress_store(&exact, false).unwrap()).unwrap();
        let service = FleetService::new(compressed);
        match service.handle(&FleetRequest::Fidelity) {
            FleetResponse::Error(err) => assert_eq!(err.kind, "artifact"),
            other => panic!("unexpected: {other:?}"),
        }
        match service.handle(&FleetRequest::Export) {
            FleetResponse::Error(err) => assert_eq!(err.kind, "runtime"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
