//! The exponential voltage-response curve of a fault polarity class.

use hbm_units::Volts;
use serde::{Deserialize, Serialize};

/// An exponential fault-probability curve
/// `c(v) = min(1, 10^(−D · (v − v_sat)))`.
///
/// `v_sat` is the saturation voltage (every bit of the class is faulty at or
/// below it) and `D` the growth rate in *decades per volt*. The study
/// observes exponential fault growth between the first flips at 0.97 V and
/// total failure at ≈0.84 V; on a log scale that is a straight line, which
/// this curve is.
///
/// The curve knows nothing about the guardband — the
/// [`FaultModelParams`](crate::FaultModelParams) hard-gates voltages at or
/// above V_min to probability zero before consulting the curve.
///
/// # Examples
///
/// ```
/// use hbm_faults::ResponseCurve;
/// use hbm_units::Volts;
///
/// let c = ResponseCurve::new(Volts(0.840), 79.2);
/// assert_eq!(c.probability(Volts(0.840)), 1.0);          // saturated
/// assert_eq!(c.probability(Volts(0.800)), 1.0);          // stays saturated below
/// assert!(c.probability(Volts(0.970)) < 1e-10);          // vanishing at onset
/// assert!(c.probability(Volts(0.90)) > c.probability(Volts(0.91))); // monotone
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseCurve {
    v_saturation: f64,
    decades_per_volt: f64,
}

impl ResponseCurve {
    /// Creates a curve saturating at `v_saturation` with slope
    /// `decades_per_volt`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    #[must_use]
    pub fn new(v_saturation: Volts, decades_per_volt: f64) -> Self {
        assert!(
            v_saturation.is_finite() && v_saturation.as_f64() > 0.0,
            "saturation voltage must be positive, got {v_saturation}"
        );
        assert!(
            decades_per_volt.is_finite() && decades_per_volt > 0.0,
            "slope must be positive, got {decades_per_volt}"
        );
        ResponseCurve {
            v_saturation: v_saturation.as_f64(),
            decades_per_volt,
        }
    }

    /// The saturation voltage.
    #[must_use]
    pub fn v_saturation(&self) -> Volts {
        Volts(self.v_saturation)
    }

    /// The slope in decades per volt.
    #[must_use]
    pub fn decades_per_volt(&self) -> f64 {
        self.decades_per_volt
    }

    /// Fault probability of a bit of this class at effective voltage `v`.
    #[must_use]
    pub fn probability(&self, v: Volts) -> f64 {
        let v_volts = v.as_f64();
        if v_volts <= self.v_saturation {
            return 1.0;
        }
        let exponent = -self.decades_per_volt * (v_volts - self.v_saturation);
        10f64.powf(exponent).min(1.0)
    }

    /// The failure voltage of a bit whose uniform draw is `u`: the highest
    /// voltage at which the bit is faulty, i.e. `probability(v) ≥ u` exactly
    /// for `v ≤ failure_voltage(u)`.
    ///
    /// # Panics
    ///
    /// Panics unless `u` is in `(0, 1]`.
    #[must_use]
    pub fn failure_voltage(&self, u: f64) -> Volts {
        assert!(
            u > 0.0 && u <= 1.0,
            "uniform draw must be in (0, 1], got {u}"
        );
        Volts(self.v_saturation - u.log10() / self.decades_per_volt)
    }

    /// Returns a curve shifted by `dv` (positive = more sensitive: the same
    /// probabilities occur at voltages `dv` higher).
    #[must_use]
    pub fn shifted(&self, dv: Volts) -> ResponseCurve {
        ResponseCurve {
            v_saturation: self.v_saturation + dv.as_f64(),
            decades_per_volt: self.decades_per_volt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ResponseCurve {
        ResponseCurve::new(Volts(0.840), 79.2)
    }

    #[test]
    fn saturates_at_and_below_v_sat() {
        let c = curve();
        assert_eq!(c.probability(Volts(0.840)), 1.0);
        assert_eq!(c.probability(Volts(0.810)), 1.0);
        assert_eq!(c.probability(Volts(0.0)), 1.0);
    }

    #[test]
    fn exponential_decades() {
        let c = curve();
        // One decade per 1/79.2 volts.
        let p1 = c.probability(Volts(0.90));
        let p2 = c.probability(Volts(0.90 + 1.0 / 79.2));
        assert!((p1 / p2 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_decreasing_in_voltage() {
        let c = curve();
        let mut last = 2.0;
        for step in 0..200 {
            let v = Volts(0.80 + f64::from(step) * 0.001);
            let p = c.probability(v);
            assert!(p <= last, "non-monotone at {v}");
            last = p;
        }
    }

    #[test]
    fn failure_voltage_inverts_probability() {
        let c = curve();
        for u in [1e-12, 1e-9, 1e-6, 1e-3, 0.5] {
            let v = c.failure_voltage(u);
            // At the failure voltage the probability equals the draw …
            assert!((c.probability(v) - u).abs() / u < 1e-9, "u = {u}");
            // … slightly above it the bit is healthy, slightly below faulty.
            assert!(c.probability(v + Volts(1e-6)) < u);
            assert!(c.probability(v - Volts(1e-6)) > u);
        }
        // u = 1 maps exactly to the saturation voltage.
        assert_eq!(c.failure_voltage(1.0), c.v_saturation());
    }

    #[test]
    fn date21_calibration_order_of_magnitude() {
        // c10 with the study's defaults: ~5e-11 at 0.97 V → a handful of
        // first flips in 8 GB (6.9e10 bits).
        let c = curve();
        let p = c.probability(Volts(0.970));
        let expected_flips = p * 6.9e10 * 0.47;
        assert!(
            (0.5..30.0).contains(&expected_flips),
            "expected first flips ≈ few, got {expected_flips}"
        );
    }

    #[test]
    fn shifted_curve_is_more_sensitive() {
        let base = curve();
        let weak = base.shifted(Volts(0.015));
        assert!(weak.probability(Volts(0.95)) > base.probability(Volts(0.95)));
        assert_eq!(weak.probability(Volts(0.855)), 1.0); // saturation moved up
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_slope_rejected() {
        let _ = ResponseCurve::new(Volts(0.84), 0.0);
    }

    #[test]
    #[should_panic(expected = "uniform draw must be in (0, 1]")]
    fn failure_voltage_rejects_zero() {
        let _ = curve().failure_voltage(0.0);
    }
}
