//! PMBus transaction errors.

use std::error::Error;
use std::fmt;

/// Errors surfaced by PMBus transactions against modelled devices.
///
/// # Examples
///
/// ```
/// use hbm_vreg::PmbusError;
///
/// let err = PmbusError::UnsupportedCommand { code: 0xD0 };
/// assert_eq!(err.to_string(), "unsupported pmbus command 0xd0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PmbusError {
    /// The device does not implement the command code.
    UnsupportedCommand {
        /// The raw command code.
        code: u8,
    },
    /// The command exists but not with this transaction width (e.g. a word
    /// read against a byte register).
    WrongTransactionWidth {
        /// The raw command code.
        code: u8,
    },
    /// The written value cannot be accepted (out of the device's range).
    InvalidData {
        /// The raw command code.
        code: u8,
        /// The rejected raw value.
        value: u16,
    },
    /// A value does not fit the LINEAR11 data format.
    Linear11Range {
        /// The value that could not be encoded.
        value: f64,
    },
    /// A value does not fit the VOUT-mode LINEAR16 data format.
    Linear16Range {
        /// The value that could not be encoded.
        value: f64,
    },
}

impl fmt::Display for PmbusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PmbusError::UnsupportedCommand { code } => {
                write!(f, "unsupported pmbus command 0x{code:02x}")
            }
            PmbusError::WrongTransactionWidth { code } => {
                write!(f, "wrong transaction width for pmbus command 0x{code:02x}")
            }
            PmbusError::InvalidData { code, value } => {
                write!(
                    f,
                    "invalid data 0x{value:04x} for pmbus command 0x{code:02x}"
                )
            }
            PmbusError::Linear11Range { value } => {
                write!(f, "value {value} does not fit the linear11 format")
            }
            PmbusError::Linear16Range { value } => {
                write!(f, "value {value} does not fit the linear16 format")
            }
        }
    }
}

impl Error for PmbusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            PmbusError::WrongTransactionWidth { code: 0x20 }.to_string(),
            "wrong transaction width for pmbus command 0x20"
        );
        assert_eq!(
            PmbusError::InvalidData {
                code: 0x21,
                value: 0xFFFF
            }
            .to_string(),
            "invalid data 0xffff for pmbus command 0x21"
        );
        assert!(PmbusError::Linear11Range { value: 1e9 }
            .to_string()
            .contains("linear11"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PmbusError>();
    }
}
