//! March memory tests: the classical DRAM test algorithms (MATS+,
//! March X, March C−) expressed over the AXI word path.
//!
//! The study's Algorithm 1 is a simple write-all/read-all pass, which
//! detects stuck-at faults — exactly what undervolting produces. March
//! tests interleave reads and writes per address in ascending and
//! descending order, additionally covering transition and coupling faults;
//! they are included as the natural extension for users who want
//! production-grade screening of an undervolted configuration.

use serde::{Deserialize, Serialize};

use hbm_device::{DeviceError, Word256, WordOffset};

use crate::generator::MemoryPort;
use crate::stats::PortStats;

/// One operation of a march element, on the word the element is visiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarchOp {
    /// Read, expecting the background pattern (all zeros).
    R0,
    /// Read, expecting the inverted background (all ones).
    R1,
    /// Write the background pattern (all zeros).
    W0,
    /// Write the inverted background (all ones).
    W1,
}

/// Address traversal order of a march element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressOrder {
    /// Ascending (⇑ in march notation).
    Ascending,
    /// Descending (⇓).
    Descending,
    /// Order irrelevant (⇕) — executed ascending.
    Any,
}

/// One march element: an address order plus the per-address operation
/// sequence, e.g. `⇑(r0,w1)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarchElement {
    /// Traversal order.
    pub order: AddressOrder,
    /// Operations applied at every address, in sequence.
    pub ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Creates an element.
    #[must_use]
    pub fn new(order: AddressOrder, ops: Vec<MarchOp>) -> Self {
        MarchElement { order, ops }
    }
}

/// A complete march test.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmDevice, HbmGeometry, PortId};
/// use hbm_traffic::{DirectPort, MarchTest};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
/// let port = PortId::new(0)?;
/// let stats = MarchTest::march_c_minus().run(
///     &mut DirectPort::new(&mut device, port),
///     0..512,
/// )?;
/// assert_eq!(stats.total_flips(), 0, "fault-free memory passes March C-");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarchTest {
    /// Human-readable name ("March C-").
    pub name: String,
    /// The elements, in order.
    pub elements: Vec<MarchElement>,
}

impl MarchTest {
    /// MATS+: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)` — 5n, detects all stuck-at and
    /// address-decoder faults.
    #[must_use]
    pub fn mats_plus() -> Self {
        use AddressOrder::{Any, Ascending, Descending};
        use MarchOp::{R0, R1, W0, W1};
        MarchTest {
            name: "MATS+".to_owned(),
            elements: vec![
                MarchElement::new(Any, vec![W0]),
                MarchElement::new(Ascending, vec![R0, W1]),
                MarchElement::new(Descending, vec![R1, W0]),
            ],
        }
    }

    /// March X: `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)` — 6n, additionally
    /// detects transition faults.
    #[must_use]
    pub fn march_x() -> Self {
        use AddressOrder::{Any, Ascending, Descending};
        use MarchOp::{R0, R1, W0, W1};
        MarchTest {
            name: "March X".to_owned(),
            elements: vec![
                MarchElement::new(Any, vec![W0]),
                MarchElement::new(Ascending, vec![R0, W1]),
                MarchElement::new(Descending, vec![R1, W0]),
                MarchElement::new(Any, vec![R0]),
            ],
        }
    }

    /// March C−: `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)` —
    /// 10n, detects stuck-at, transition, and unlinked coupling faults.
    #[must_use]
    pub fn march_c_minus() -> Self {
        use AddressOrder::{Any, Ascending, Descending};
        use MarchOp::{R0, R1, W0, W1};
        MarchTest {
            name: "March C-".to_owned(),
            elements: vec![
                MarchElement::new(Any, vec![W0]),
                MarchElement::new(Ascending, vec![R0, W1]),
                MarchElement::new(Ascending, vec![R1, W0]),
                MarchElement::new(Descending, vec![R0, W1]),
                MarchElement::new(Descending, vec![R1, W0]),
                MarchElement::new(Any, vec![R0]),
            ],
        }
    }

    /// Operations per word ("10n" for March C− etc.).
    #[must_use]
    pub fn ops_per_word(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }

    /// Runs the test over a word range through a port, classifying
    /// mismatches by polarity exactly like the study's tester.
    ///
    /// # Errors
    ///
    /// Propagates the first device error.
    pub fn run<P: MemoryPort>(
        &self,
        port: &mut P,
        range: std::ops::Range<u64>,
    ) -> Result<PortStats, DeviceError> {
        let mut stats = PortStats::default();
        for element in &self.elements {
            let addresses: Box<dyn Iterator<Item = u64>> = match element.order {
                AddressOrder::Ascending | AddressOrder::Any => Box::new(range.clone()),
                AddressOrder::Descending => Box::new(range.clone().rev()),
            };
            for address in addresses {
                for &op in &element.ops {
                    match op {
                        MarchOp::W0 => {
                            port.write(WordOffset(address), Word256::ZERO)?;
                            stats.words_written += 1;
                        }
                        MarchOp::W1 => {
                            port.write(WordOffset(address), Word256::ONES)?;
                            stats.words_written += 1;
                        }
                        MarchOp::R0 | MarchOp::R1 => {
                            let expected = if op == MarchOp::R0 {
                                Word256::ZERO
                            } else {
                                Word256::ONES
                            };
                            let observed = port.read(WordOffset(address))?;
                            stats.words_read += 1;
                            if observed != expected {
                                stats.faulty_words += 1;
                                let (f10, f01) = observed.flips_from(expected);
                                stats.flips_1to0 += u64::from(f10);
                                stats.flips_0to1 += u64::from(f01);
                            }
                        }
                    }
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::DirectPort;
    use hbm_device::{HbmDevice, HbmGeometry, PortId};

    fn device() -> HbmDevice {
        HbmDevice::new(HbmGeometry::vcu128_reduced())
    }

    #[test]
    fn op_counts_match_the_literature() {
        assert_eq!(MarchTest::mats_plus().ops_per_word(), 5);
        assert_eq!(MarchTest::march_x().ops_per_word(), 6);
        assert_eq!(MarchTest::march_c_minus().ops_per_word(), 10);
    }

    #[test]
    fn clean_memory_passes_all_tests() {
        let mut dev = device();
        let port = PortId::new(0).unwrap();
        for test in [
            MarchTest::mats_plus(),
            MarchTest::march_x(),
            MarchTest::march_c_minus(),
        ] {
            let stats = test
                .run(&mut DirectPort::new(&mut dev, port), 0..256)
                .unwrap();
            assert_eq!(stats.total_flips(), 0, "{}", test.name);
            assert_eq!(stats.faulty_words, 0);
            // Accounting: n addresses × ops split into reads and writes.
            assert_eq!(
                stats.words_read + stats.words_written,
                256 * test.ops_per_word() as u64,
                "{}",
                test.name
            );
        }
    }

    /// A port wrapper injecting one stuck-at-0 bit at a fixed offset.
    struct StuckAtZero<P: MemoryPort> {
        inner: P,
        offset: u64,
        bit: u32,
    }

    impl<P: MemoryPort> MemoryPort for StuckAtZero<P> {
        fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
            self.inner.write(offset, word)
        }
        fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
            let word = self.inner.read(offset)?;
            Ok(if offset.0 == self.offset {
                word.with_bit_cleared(self.bit)
            } else {
                word
            })
        }
    }

    #[test]
    fn march_tests_detect_a_stuck_at_zero_bit() {
        let port = PortId::new(1).unwrap();
        for test in [
            MarchTest::mats_plus(),
            MarchTest::march_x(),
            MarchTest::march_c_minus(),
        ] {
            let mut dev = device();
            let mut faulty = StuckAtZero {
                inner: DirectPort::new(&mut dev, port),
                offset: 100,
                bit: 42,
            };
            let stats = test.run(&mut faulty, 0..256).unwrap();
            assert!(
                stats.flips_1to0 > 0,
                "{} missed the stuck-at-0 bit",
                test.name
            );
            assert_eq!(stats.flips_0to1, 0, "{}", test.name);
        }
    }

    #[test]
    fn descending_elements_really_descend() {
        // A recorder port verifying traversal order.
        struct Recorder {
            log: Vec<u64>,
        }
        impl MemoryPort for Recorder {
            fn write(&mut self, offset: WordOffset, _: Word256) -> Result<(), DeviceError> {
                self.log.push(offset.0);
                Ok(())
            }
            fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
                self.log.push(offset.0);
                Ok(Word256::ZERO)
            }
        }
        let mut recorder = Recorder { log: Vec::new() };
        let element_only = MarchTest {
            name: "desc".to_owned(),
            elements: vec![MarchElement::new(
                AddressOrder::Descending,
                vec![MarchOp::R0],
            )],
        };
        element_only.run(&mut recorder, 0..4).unwrap();
        assert_eq!(recorder.log, vec![3, 2, 1, 0]);
    }

    #[test]
    fn march_c_minus_flags_undervolting_style_faults_per_polarity() {
        // Both polarities of the expected data are read at every address,
        // so a stuck-at bit of either polarity is hit regardless of the
        // background.
        let port = PortId::new(2).unwrap();
        struct StuckAtOne<P: MemoryPort>(P);
        impl<P: MemoryPort> MemoryPort for StuckAtOne<P> {
            fn write(&mut self, o: WordOffset, w: Word256) -> Result<(), DeviceError> {
                self.0.write(o, w)
            }
            fn read(&mut self, o: WordOffset) -> Result<Word256, DeviceError> {
                Ok(self.0.read(o)?.with_bit_set(7))
            }
        }
        let mut dev = device();
        let mut faulty = StuckAtOne(DirectPort::new(&mut dev, port));
        let stats = MarchTest::march_c_minus().run(&mut faulty, 0..64).unwrap();
        assert!(stats.flips_0to1 > 0);
        assert_eq!(stats.flips_1to0, 0);
    }
}
