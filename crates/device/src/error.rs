//! Error type for device operations.

use std::error::Error;
use std::fmt;

/// Errors returned by HBM device operations.
///
/// # Examples
///
/// ```
/// use hbm_device::{DeviceError, PcIndex};
///
/// let err = PcIndex::new(99).unwrap_err();
/// assert!(matches!(err, DeviceError::InvalidPseudoChannel { index: 99 }));
/// assert_eq!(err.to_string(), "pseudo-channel index 99 out of range (0..32)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeviceError {
    /// The device has crashed (supply voltage fell below the critical level)
    /// and no longer responds; a power cycle is required.
    Crashed,
    /// A pseudo-channel index outside `0..32` was supplied.
    InvalidPseudoChannel {
        /// The offending index.
        index: u8,
    },
    /// An AXI port index outside `0..32` was supplied.
    InvalidPort {
        /// The offending index.
        index: u8,
    },
    /// The addressed AXI port is disabled.
    PortDisabled {
        /// The disabled port.
        index: u8,
    },
    /// A word offset beyond the pseudo-channel capacity was supplied.
    AddressOutOfRange {
        /// The offending word offset within the pseudo channel.
        offset: u64,
        /// Number of addressable words per pseudo channel.
        capacity_words: u64,
    },
    /// The switching network is disabled, so a port can only reach its own
    /// pseudo channel.
    RouteUnavailable {
        /// The requesting port.
        port: u8,
        /// The pseudo channel that was requested.
        target: u8,
    },
    /// Per-pseudo-channel sharding requires the switching network to be
    /// disabled; with the switch active a port may reach foreign pseudo
    /// channels, so disjoint per-PC partitioning is impossible.
    ShardingUnavailable,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeviceError::Crashed => {
                write!(
                    f,
                    "device crashed: supply fell below critical voltage, power cycle required"
                )
            }
            DeviceError::InvalidPseudoChannel { index } => {
                write!(f, "pseudo-channel index {index} out of range (0..32)")
            }
            DeviceError::InvalidPort { index } => {
                write!(f, "axi port index {index} out of range (0..32)")
            }
            DeviceError::PortDisabled { index } => write!(f, "axi port {index} is disabled"),
            DeviceError::AddressOutOfRange {
                offset,
                capacity_words,
            } => write!(
                f,
                "word offset {offset} out of range (pseudo-channel capacity {capacity_words} words)"
            ),
            DeviceError::RouteUnavailable { port, target } => write!(
                f,
                "switching network disabled: port {port} cannot reach pseudo-channel {target}"
            ),
            DeviceError::ShardingUnavailable => write!(
                f,
                "switching network enabled: per-pseudo-channel sharding needs direct port mapping"
            ),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let samples = [
            DeviceError::Crashed,
            DeviceError::InvalidPseudoChannel { index: 40 },
            DeviceError::InvalidPort { index: 33 },
            DeviceError::PortDisabled { index: 3 },
            DeviceError::AddressOutOfRange {
                offset: 10,
                capacity_words: 8,
            },
            DeviceError::RouteUnavailable { port: 0, target: 5 },
            DeviceError::ShardingUnavailable,
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<DeviceError>();
    }
}
