//! An ECC-protected memory port: SEC-DED over every 64-bit lane of the
//! 256-bit AXI word path.
//!
//! Check bits live in a dedicated region at the top of the pseudo channel
//! (8 check bits × 4 lanes = 32 bits per protected word; 8 words' checks
//! pack into one 256-bit check word), so protecting `n` words costs
//! `n/8` extra words — the classic 12.5 % ECC overhead.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use hbm_device::{DeviceError, Word256, WordOffset};
use hbm_traffic::MemoryPort;
use serde::{Deserialize, Serialize};

use crate::hamming::{DecodeOutcome, Hamming7264};

/// Counters of the ECC engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccStats {
    /// Protected words written.
    pub writes: u64,
    /// Protected words read.
    pub reads: u64,
    /// Lanes whose single-bit error was corrected.
    pub corrected_lanes: u64,
    /// Lanes with a detected uncorrectable error.
    pub detected_lanes: u64,
}

impl EccStats {
    /// Post-ECC lane error rate: detected-uncorrectable lanes per lane
    /// read.
    #[must_use]
    pub fn uncorrectable_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.detected_lanes as f64 / (self.reads as f64 * 4.0)
    }
}

/// An uncorrectable read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccError {
    /// The logical word offset.
    pub offset: u64,
    /// Bit mask of the lanes (0..4) that failed.
    pub failed_lanes: u8,
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "uncorrectable ecc error at word {} (lanes {:04b})",
            self.offset, self.failed_lanes
        )
    }
}

impl Error for EccError {}

/// A [`MemoryPort`] adapter adding SEC-DED protection.
///
/// Writes encode check bits and store them in the check region; reads
/// decode each lane, transparently correcting single-bit undervolting
/// flips. Detected-uncorrectable lanes pass the raw data through (use
/// [`EccPort::read_checked`] to make them fatal) and are counted in
/// [`EccStats`].
///
/// The adapter keeps a host-side shadow of the check words it wrote so that
/// read-modify-write cycles never launder undervolting flips from *other*
/// words' check bits back into storage — mirroring real in-band-ECC
/// controllers, which always write a full burst of fresh check bits.
#[derive(Debug)]
pub struct EccPort<P: MemoryPort> {
    inner: P,
    logical_words: u64,
    shadow_checks: HashMap<u64, Word256>,
    stats: EccStats,
}

impl<P: MemoryPort> EccPort<P> {
    /// Wraps `inner`, protecting the first `logical_words` words. The check
    /// region occupies words `logical_words ..` of the inner port, so the
    /// inner capacity must be at least `logical_words + ceil(logical_words/8)`.
    #[must_use]
    pub fn new(inner: P, logical_words: u64) -> Self {
        EccPort {
            inner,
            logical_words,
            shadow_checks: HashMap::new(),
            stats: EccStats::default(),
        }
    }

    /// Number of protected (logical) words.
    #[must_use]
    pub fn logical_words(&self) -> u64 {
        self.logical_words
    }

    /// ECC counters so far.
    #[must_use]
    pub fn stats(&self) -> EccStats {
        self.stats
    }

    /// Resets the ECC counters.
    pub fn reset_stats(&mut self) {
        self.stats = EccStats::default();
    }

    /// Returns the inner port, discarding the shadow checks.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn check_location(&self, offset: u64) -> (WordOffset, usize) {
        (
            WordOffset(self.logical_words + offset / 8),
            (offset % 8) as usize,
        )
    }

    fn bounds(&self, offset: WordOffset) -> Result<(), DeviceError> {
        if offset.0 < self.logical_words {
            Ok(())
        } else {
            Err(DeviceError::AddressOutOfRange {
                offset: offset.0,
                capacity_words: self.logical_words,
            })
        }
    }

    /// Packs four 8-bit lane checks into the 32-bit slot of a check word.
    fn pack_checks(checks: [u8; 4]) -> u32 {
        u32::from_le_bytes(checks)
    }

    fn unpack_checks(slot: u32) -> [u8; 4] {
        slot.to_le_bytes()
    }

    fn slot_of(word: Word256, slot: usize) -> u32 {
        let lane = word.0[slot / 2];
        (lane >> ((slot % 2) * 32)) as u32
    }

    fn with_slot(mut word: Word256, slot: usize, value: u32) -> Word256 {
        let lane = &mut word.0[slot / 2];
        let shift = (slot % 2) * 32;
        *lane = (*lane & !(0xFFFF_FFFFu64 << shift)) | (u64::from(value) << shift);
        word
    }

    /// Reads with correction, returning an error for uncorrectable lanes.
    ///
    /// # Errors
    ///
    /// [`DeviceError`]-wrapping I/O problems are surfaced via `Ok(Err(..))`
    /// being avoided: device errors come back as `Err(Ok(DeviceError))`…
    /// to keep the signature simple this method returns
    /// `Result<Word256, Box<dyn Error + Send + Sync>>`, with either a
    /// [`DeviceError`] or an [`EccError`] inside.
    pub fn read_checked(
        &mut self,
        offset: WordOffset,
    ) -> Result<Word256, Box<dyn Error + Send + Sync>> {
        let (word, failed) = self.read_with_outcomes(offset)?;
        if failed == 0 {
            Ok(word)
        } else {
            Err(Box::new(EccError {
                offset: offset.0,
                failed_lanes: failed,
            }))
        }
    }

    fn read_with_outcomes(&mut self, offset: WordOffset) -> Result<(Word256, u8), DeviceError> {
        self.bounds(offset)?;
        let raw = self.inner.read(offset)?;
        let (check_offset, slot) = self.check_location(offset.0);
        let check_word = self.inner.read(check_offset)?;
        let checks = Self::unpack_checks(Self::slot_of(check_word, slot));

        let mut corrected = raw;
        let mut failed = 0u8;
        for (lane, &check) in checks.iter().enumerate() {
            match Hamming7264::decode(raw.0[lane], check) {
                DecodeOutcome::Clean(_) => {}
                DecodeOutcome::Corrected(data) => {
                    corrected.0[lane] = data;
                    self.stats.corrected_lanes += 1;
                }
                DecodeOutcome::Detected(_) => {
                    failed |= 1 << lane;
                    self.stats.detected_lanes += 1;
                }
            }
        }
        self.stats.reads += 1;
        Ok((corrected, failed))
    }
}

impl<P: MemoryPort> MemoryPort for EccPort<P> {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.bounds(offset)?;
        self.inner.write(offset, word)?;

        let checks = [
            Hamming7264::encode(word.0[0]),
            Hamming7264::encode(word.0[1]),
            Hamming7264::encode(word.0[2]),
            Hamming7264::encode(word.0[3]),
        ];
        let (check_offset, slot) = self.check_location(offset.0);
        let shadow = self
            .shadow_checks
            .entry(check_offset.0)
            .or_insert(Word256::ZERO);
        *shadow = Self::with_slot(*shadow, slot, Self::pack_checks(checks));
        let fresh = *shadow;
        self.inner.write(check_offset, fresh)?;
        self.stats.writes += 1;
        Ok(())
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.read_with_outcomes(offset).map(|(word, _)| word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_device::{HbmDevice, HbmGeometry, PortId};
    use hbm_traffic::DirectPort;

    fn device() -> HbmDevice {
        HbmDevice::new(HbmGeometry::vcu128_reduced())
    }

    #[test]
    fn clean_round_trip_through_ecc() {
        let mut dev = device();
        let port = PortId::new(0).unwrap();
        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
        for i in 0..64u64 {
            ecc.write(WordOffset(i), Word256::splat(i * 0x1234_5678))
                .unwrap();
        }
        for i in 0..64u64 {
            assert_eq!(
                ecc.read(WordOffset(i)).unwrap(),
                Word256::splat(i * 0x1234_5678)
            );
        }
        let stats = ecc.stats();
        assert_eq!(stats.writes, 64);
        assert_eq!(stats.reads, 64);
        assert_eq!(stats.corrected_lanes, 0);
        assert_eq!(stats.detected_lanes, 0);
        assert_eq!(stats.uncorrectable_rate(), 0.0);
    }

    #[test]
    fn single_flip_per_lane_is_corrected() {
        let mut dev = device();
        let port = PortId::new(1).unwrap();
        let stored = Word256::splat(0xAAAA_5555_F0F0_0F0F);
        {
            let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
            ecc.write(WordOffset(0), stored).unwrap();
        }
        // Corrupt one bit in every lane directly in the device.
        let mut corrupted = stored;
        for lane in 0..4 {
            corrupted.0[lane] ^= 1 << (7 * lane + 3);
        }
        dev.axi_write(port, WordOffset(0), corrupted).unwrap();

        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
        let read = ecc.read(WordOffset(0)).unwrap();
        assert_eq!(read, stored, "all four lanes corrected");
        assert_eq!(ecc.stats().corrected_lanes, 4);
    }

    #[test]
    fn double_flip_in_a_lane_is_detected_not_miscorrected() {
        let mut dev = device();
        let port = PortId::new(2).unwrap();
        let stored = Word256::ONES;
        {
            let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
            ecc.write(WordOffset(5), stored).unwrap();
        }
        let mut corrupted = stored;
        corrupted.0[2] ^= 0b101; // two flips in lane 2
        dev.axi_write(port, WordOffset(5), corrupted).unwrap();

        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
        let err = ecc.read_checked(WordOffset(5)).unwrap_err();
        let ecc_err = err.downcast_ref::<EccError>().expect("ecc error");
        assert_eq!(ecc_err.offset, 5);
        assert_eq!(ecc_err.failed_lanes, 0b0100);
        assert_eq!(ecc.stats().detected_lanes, 1);
        assert!(ecc.stats().uncorrectable_rate() > 0.0);
        assert!(ecc_err.to_string().contains("word 5"));
    }

    #[test]
    fn flips_in_stored_check_bits_are_survivable() {
        let mut dev = device();
        let port = PortId::new(3).unwrap();
        let stored = Word256::splat(0x1111_2222_3333_4444);
        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
        ecc.write(WordOffset(9), stored).unwrap();

        // Corrupt one bit of the packed check word in the device.
        let check_offset = WordOffset(1024 + 9 / 8);
        let check = dev.axi_read(port, check_offset).unwrap();
        // Word 9 packs into slot 9 % 8 = 1 of its check word: bit 1 * 32.
        dev.axi_write(port, check_offset, check.with_bit_set(32))
            .unwrap();

        // The flipped check bit (at most one per lane) is corrected away.
        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 1024);
        assert_eq!(ecc.read(WordOffset(9)).unwrap(), stored);
    }

    #[test]
    fn bounds_respected_and_check_region_isolated() {
        let mut dev = device();
        let port = PortId::new(4).unwrap();
        let mut ecc = EccPort::new(DirectPort::new(&mut dev, port), 128);
        assert!(matches!(
            ecc.write(WordOffset(128), Word256::ZERO).unwrap_err(),
            DeviceError::AddressOutOfRange {
                capacity_words: 128,
                ..
            }
        ));
        assert!(ecc.read(WordOffset(200)).is_err());

        // Writes to different words sharing a check word do not clobber
        // each other's checks.
        for i in 0..16u64 {
            ecc.write(WordOffset(i), Word256::splat(i)).unwrap();
        }
        for i in 0..16u64 {
            assert_eq!(ecc.read(WordOffset(i)).unwrap(), Word256::splat(i));
        }
        assert_eq!(ecc.stats().detected_lanes, 0);
        assert_eq!(ecc.stats().corrected_lanes, 0);
    }

    #[test]
    fn into_inner_returns_the_port() {
        let mut dev = device();
        let port = PortId::new(5).unwrap();
        let ecc = EccPort::new(DirectPort::new(&mut dev, port), 64);
        assert_eq!(ecc.logical_words(), 64);
        let _inner = ecc.into_inner();
    }
}
