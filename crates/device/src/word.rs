//! The 256-bit AXI word: the user-side access granularity of the HBM IP.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use serde::{Deserialize, Serialize};

/// A 256-bit AXI data word, stored as four little-endian 64-bit lanes.
///
/// Every user-side access to the modelled HBM moves one `Word256` — the same
/// 256-bit granularity as the AXI ports of the Xilinx HBM IP core.
///
/// # Examples
///
/// ```
/// use hbm_device::Word256;
///
/// let written = Word256::ONES;
/// let observed = written.with_bit_cleared(200);
/// // One 1→0 flip, no 0→1 flips:
/// assert_eq!(observed.flips_from(written), (1, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Word256(pub [u64; 4]);

impl Word256 {
    /// Number of bits in a word.
    pub const BITS: u32 = 256;

    /// The all-zeros word.
    pub const ZERO: Word256 = Word256([0; 4]);

    /// The all-ones word.
    pub const ONES: Word256 = Word256([u64::MAX; 4]);

    /// Builds a word by repeating a 64-bit lane four times.
    ///
    /// ```
    /// use hbm_device::Word256;
    /// let cb = Word256::splat(0xAAAA_AAAA_AAAA_AAAA);
    /// assert_eq!(cb.count_ones(), 128);
    /// ```
    #[must_use]
    pub fn splat(lane: u64) -> Self {
        Word256([lane; 4])
    }

    /// Reads bit `i` (0 = least-significant bit of lane 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[must_use]
    pub fn bit(self, i: u32) -> bool {
        assert!(i < Self::BITS, "bit index {i} out of range");
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with bit `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[must_use]
    pub fn with_bit_set(mut self, i: u32) -> Self {
        assert!(i < Self::BITS, "bit index {i} out of range");
        self.0[(i / 64) as usize] |= 1 << (i % 64);
        self
    }

    /// Returns a copy with bit `i` cleared.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    #[must_use]
    pub fn with_bit_cleared(mut self, i: u32) -> Self {
        assert!(i < Self::BITS, "bit index {i} out of range");
        self.0[(i / 64) as usize] &= !(1 << (i % 64));
        self
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(self) -> u32 {
        self.0.iter().map(|lane| lane.count_ones()).sum()
    }

    /// Number of clear bits.
    #[must_use]
    pub fn count_zeros(self) -> u32 {
        Self::BITS - self.count_ones()
    }

    /// Number of bits that differ from `other`.
    #[must_use]
    pub fn diff_bits(self, other: Word256) -> u32 {
        (self ^ other).count_ones()
    }

    /// Classifies the bit flips in `self` (the *observed* word) relative to
    /// `expected` (the word that was written), returning
    /// `(ones_to_zeros, zeros_to_ones)`.
    ///
    /// A `1→0` flip is a position where `expected` holds 1 but `self` holds
    /// 0; a `0→1` flip is the converse — the two fault polarities that the
    /// study characterizes separately.
    #[must_use]
    pub fn flips_from(self, expected: Word256) -> (u32, u32) {
        let ones_to_zeros = (expected & !self).count_ones();
        let zeros_to_ones = (!expected & self).count_ones();
        (ones_to_zeros, zeros_to_ones)
    }

    /// Applies stuck-at faults: bits set in `stuck0` read as 0 and bits set
    /// in `stuck1` read as 1, regardless of the stored value.
    ///
    /// Where both masks overlap, stuck-at-1 wins (an arbitrary but fixed
    /// convention; the fault model never produces overlapping masks).
    #[must_use]
    pub fn with_stuck_bits(self, stuck0: Word256, stuck1: Word256) -> Word256 {
        (self & !stuck0) | stuck1
    }

    /// `true` if no bits are set.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl fmt::Display for Word256 {
    /// Hexadecimal, most-significant lane first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl fmt::LowerHex for Word256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl BitAnd for Word256 {
    type Output = Word256;
    fn bitand(self, rhs: Word256) -> Word256 {
        Word256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for Word256 {
    type Output = Word256;
    fn bitor(self, rhs: Word256) -> Word256 {
        Word256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for Word256 {
    type Output = Word256;
    fn bitxor(self, rhs: Word256) -> Word256 {
        Word256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for Word256 {
    type Output = Word256;
    fn not(self) -> Word256 {
        Word256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Word256::ZERO.count_ones(), 0);
        assert_eq!(Word256::ONES.count_ones(), 256);
        assert!(Word256::ZERO.is_zero());
        assert!(!Word256::ONES.is_zero());
    }

    #[test]
    fn bit_get_set_clear() {
        let w = Word256::ZERO
            .with_bit_set(0)
            .with_bit_set(63)
            .with_bit_set(64)
            .with_bit_set(255);
        assert!(w.bit(0) && w.bit(63) && w.bit(64) && w.bit(255));
        assert!(!w.bit(1) && !w.bit(128));
        assert_eq!(w.count_ones(), 4);
        let w = w.with_bit_cleared(64);
        assert!(!w.bit(64));
        assert_eq!(w.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_index_bounds_checked() {
        let _ = Word256::ZERO.bit(256);
    }

    #[test]
    fn flip_classification() {
        let expected = Word256::splat(0xF0F0_F0F0_F0F0_F0F0);
        // Clear one expected-1 bit and set one expected-0 bit.
        let observed = expected.with_bit_cleared(7).with_bit_set(0);
        assert!(expected.bit(7) && !expected.bit(0));
        let (f10, f01) = observed.flips_from(expected);
        assert_eq!((f10, f01), (1, 1));

        // All-ones written, all-zeros observed: 256 1→0 flips.
        assert_eq!(Word256::ZERO.flips_from(Word256::ONES), (256, 0));
        // All-zeros written, all-ones observed: 256 0→1 flips.
        assert_eq!(Word256::ONES.flips_from(Word256::ZERO), (0, 256));
        // No flips.
        assert_eq!(expected.flips_from(expected), (0, 0));
    }

    #[test]
    fn stuck_bits_apply() {
        let stored = Word256::splat(0x00FF_00FF_00FF_00FF);
        let stuck0 = Word256::ZERO.with_bit_set(0); // bit 0 stuck at 0 (stored 1)
        let stuck1 = Word256::ZERO.with_bit_set(8); // bit 8 stuck at 1 (stored 0)
        let observed = stored.with_stuck_bits(stuck0, stuck1);
        assert!(!observed.bit(0));
        assert!(observed.bit(8));
        assert_eq!(observed.diff_bits(stored), 2);
    }

    #[test]
    fn stuck1_wins_overlap() {
        let mask = Word256::ZERO.with_bit_set(5);
        let observed = Word256::ZERO.with_stuck_bits(mask, mask);
        assert!(observed.bit(5));
    }

    #[test]
    fn bitwise_ops() {
        let a = Word256::splat(0xFF00);
        let b = Word256::splat(0x0FF0);
        assert_eq!(a & b, Word256::splat(0x0F00));
        assert_eq!(a | b, Word256::splat(0xFFF0));
        assert_eq!(a ^ b, Word256::splat(0xF0F0));
        assert_eq!(!Word256::ZERO, Word256::ONES);
    }

    #[test]
    fn display_hex() {
        let w = Word256([1, 0, 0, 0]);
        assert_eq!(
            w.to_string(),
            "0000000000000000000000000000000000000000000000000000000000000001"
        );
        assert_eq!(format!("{w:x}"), w.to_string());
    }

    #[test]
    fn diff_bits_symmetry() {
        let a = Word256::splat(0xDEAD_BEEF);
        let b = Word256::splat(0x1234_5678);
        assert_eq!(a.diff_bits(b), b.diff_bits(a));
        assert_eq!(a.diff_bits(a), 0);
    }
}
