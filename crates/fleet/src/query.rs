//! The fleet query API: per-device voltage recommendations straight off a
//! columnar artifact.
//!
//! Semantics: for device `X` and target fault rate `Z`, walk the knot grid
//! downward and keep the lowest knot that (a) sits on or above the
//! device's crash floor and (b) still leaves at least `min_pcs` pseudo
//! channels whose union fault rate is ≤ `Z`. The usable-PC list at that
//! knot is the answer — the fleet-scale analogue of the single-device
//! `FaultMap::usable_pcs` contract.

use hbm_power::HbmPowerModel;
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::artifact::FleetStore;
use crate::config::FleetError;
use crate::record::CRASHED_KNOT;

/// One fleet query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuery {
    /// Device to look up.
    pub device_id: u32,
    /// Highest acceptable union fault rate per pseudo channel.
    pub target_rate: f64,
    /// Minimum pseudo channels that must stay usable.
    pub min_pcs: usize,
}

/// A voltage recommendation for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Device the recommendation is for.
    pub device_id: u32,
    /// Recommended supply in millivolts.
    pub voltage_mv: u16,
    /// Pseudo channels usable at the recommendation (rate ≤ target).
    pub usable_pcs: Vec<u8>,
    /// The device's crash floor, for operator context.
    pub crash_mv: u16,
    /// Power-saving factor versus 1.20 V nominal under the paper's fitted
    /// quadratic model (fault-free, same utilization).
    pub saving_factor: f64,
}

impl FleetStore {
    /// Answers `query` against this artifact.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] when the device is absent;
    /// [`FleetError::Config`] when the query itself is malformed (target
    /// rate outside `[0, 1]`, or `min_pcs` exceeding the artifact's PC
    /// count). A device whose curves never satisfy the query falls back
    /// to the highest swept knot — the artifact proves nothing above it.
    pub fn recommend(&self, query: FleetQuery) -> Result<Recommendation, FleetError> {
        if !(0.0..=1.0).contains(&query.target_rate) {
            return Err(FleetError::Config(format!(
                "target rate must be in [0, 1], got {}",
                query.target_rate
            )));
        }
        let pcs = self.meta().pc_count as usize;
        if query.min_pcs > pcs {
            return Err(FleetError::Config(format!(
                "min-pcs {} exceeds the artifact's {pcs} pseudo channels",
                query.min_pcs
            )));
        }
        let row = self.find(query.device_id)?;
        let crash = Millivolts(u32::from(self.crash_mv(row)));
        let bits = self.meta().bits_per_pc() as f64;
        let knots = self.knots().to_vec();

        let usable_at = |k: usize| -> Vec<u8> {
            (0..pcs)
                .filter(|&pc| {
                    let count = self.fault(row, pc, k);
                    count != CRASHED_KNOT && f64::from(count) / bits <= query.target_rate
                })
                .map(|pc| pc as u8)
                .collect()
        };

        let mut best: Option<(usize, Vec<u8>)> = None;
        for (k, &v) in knots.iter().enumerate() {
            if v < crash {
                break;
            }
            let usable = usable_at(k);
            if usable.len() >= query.min_pcs {
                best = Some((k, usable));
            }
        }
        // No knot satisfies the query: recommend the top knot — the sweep
        // proves nothing above it, so that is the safest stored answer.
        let (k, usable) = best.unwrap_or_else(|| (0, usable_at(0)));
        let voltage = knots[k];
        let power = HbmPowerModel::date21();
        Ok(Recommendation {
            device_id: query.device_id,
            voltage_mv: voltage.as_u32() as u16,
            usable_pcs: usable,
            crash_mv: crash.as_u32() as u16,
            saving_factor: power.saving_factor(voltage, Ratio::ONE, Ratio::ZERO),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode;
    use crate::config::FleetConfig;
    use crate::sweep;

    fn store() -> (FleetConfig, FleetStore) {
        let cfg = FleetConfig {
            devices: 4,
            workers: 1,
            words_per_pc: 16,
            from: Millivolts(1000),
            down_to: Millivolts(860),
            step: Millivolts(20),
            weak_reference: Millivolts(900),
            ..FleetConfig::default()
        };
        let records = sweep::run(&cfg).unwrap().records;
        let bytes = encode(&cfg, &records);
        (cfg, FleetStore::from_bytes(bytes).unwrap())
    }

    #[test]
    fn strict_queries_recommend_higher_voltages() {
        let (_, store) = store();
        let loose = store
            .recommend(FleetQuery {
                device_id: 1,
                target_rate: 1e-2,
                min_pcs: 24,
            })
            .unwrap();
        let strict = store
            .recommend(FleetQuery {
                device_id: 1,
                target_rate: 0.0,
                min_pcs: 32,
            })
            .unwrap();
        assert!(strict.voltage_mv >= loose.voltage_mv);
        assert!(strict.usable_pcs.len() >= 32);
        assert!(loose.voltage_mv >= strict.crash_mv);
        assert!(loose.saving_factor >= strict.saving_factor);
    }

    #[test]
    fn zero_tolerance_full_width_matches_v_min() {
        let (_, store) = store();
        for row in 0..store.len() {
            let rec = store
                .recommend(FleetQuery {
                    device_id: store.device_id(row),
                    target_rate: 0.0,
                    min_pcs: store.meta().pc_count as usize,
                })
                .unwrap();
            let v_min = store.v_min_mv(row);
            if v_min != 0 {
                assert_eq!(rec.voltage_mv, v_min, "device row {row}");
            }
        }
    }

    #[test]
    fn malformed_queries_are_config_errors() {
        let (_, store) = store();
        for query in [
            FleetQuery {
                device_id: 0,
                target_rate: -0.5,
                min_pcs: 1,
            },
            FleetQuery {
                device_id: 0,
                target_rate: 1.5,
                min_pcs: 1,
            },
            FleetQuery {
                device_id: 0,
                target_rate: 0.1,
                min_pcs: 33,
            },
        ] {
            assert!(matches!(store.recommend(query), Err(FleetError::Config(_))));
        }
        assert!(matches!(
            store.recommend(FleetQuery {
                device_id: 99,
                target_rate: 0.1,
                min_pcs: 1,
            }),
            Err(FleetError::UnknownDevice(99))
        ));
    }
}
