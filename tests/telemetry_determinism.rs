//! Integration tests of the telemetry subsystem: the JSONL event trace of
//! a supervised sweep must be byte-identical across worker counts (events
//! are emitted only from the single-threaded supervision path, stamped by
//! the injected clock), and a crash-heavy run must surface its whole
//! recovery story — retries, power cycles, checkpoints — as typed events.

use hbm_undervolt_suite::device::TransientCrashModel;
use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::telemetry::{JsonlSink, SharedBuffer, Telemetry, TraceRecord};
use hbm_undervolt_suite::undervolt::{ReliabilityConfig, SweepConfig, TestClock, VoltageSweep};
use hbm_units::Millivolts;

fn cliff_config() -> ReliabilityConfig {
    let mut config = ReliabilityConfig::quick();
    config.sweep = VoltageSweep::new(Millivolts(850), Millivolts(790), Millivolts(10)).unwrap();
    config.batch_size = 1;
    config.words_per_pc = Some(16);
    config.patterns = vec![DataPattern::AllOnes];
    config
}

fn temp_path(stem: &str) -> String {
    std::env::temp_dir()
        .join(format!("hbm-telemetry-{stem}-{}.json", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Runs the same campaign with `workers` threads and returns the full
/// JSONL trace (clock stamps included — the injected [`TestClock`] makes
/// them deterministic too).
fn trace_with_workers(workers: usize) -> String {
    let config = SweepConfig::from_reliability(cliff_config())
        .seed(7)
        .workers(workers);
    let buffer = SharedBuffer::new();
    let telemetry = Telemetry::new().with_observer(Box::new(JsonlSink::new(buffer.clone())));
    let supervisor = config.build_supervisor().unwrap();
    let mut platform = config.build_platform();
    supervisor
        .run_observed(&mut platform, &mut TestClock::new(), &telemetry)
        .unwrap();
    telemetry.finish();
    buffer.contents()
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let sequential = trace_with_workers(1);
    assert!(!sequential.is_empty());
    assert!(sequential.contains("SweepStarted"), "{sequential}");
    assert!(sequential.contains("SweepCompleted"), "{sequential}");
    for workers in [2, 4] {
        assert_eq!(
            sequential,
            trace_with_workers(workers),
            "trace diverged at {workers} workers"
        );
    }
}

#[test]
fn every_trace_line_parses_with_strictly_increasing_seq() {
    let trace = trace_with_workers(1);
    let mut last_seq = None;
    for line in trace.lines() {
        let record: TraceRecord = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
        if let Some(prev) = last_seq {
            assert!(record.seq > prev, "seq went {prev} -> {}", record.seq);
        }
        last_seq = Some(record.seq);
    }
    assert!(last_seq.is_some(), "trace must not be empty");
}

#[test]
fn forced_crash_run_traces_retries_power_cycles_and_checkpoints() {
    let path = temp_path("crashy");
    let _ = std::fs::remove_file(&path);

    let config = SweepConfig::from_reliability(cliff_config())
        .seed(7)
        .retries(2)
        .transient_crashes(TransientCrashModel::new(1.0, Millivolts(30)))
        .checkpoint(&path);
    let buffer = SharedBuffer::new();
    let telemetry = Telemetry::new().with_observer(Box::new(JsonlSink::new(buffer.clone())));
    let supervisor = config.build_supervisor().unwrap();
    let mut platform = config.build_platform();
    supervisor
        .run_observed(&mut platform, &mut TestClock::new(), &telemetry)
        .unwrap();
    telemetry.finish();
    let trace = buffer.contents();
    let _ = std::fs::remove_file(&path);

    for needed in [
        "SweepStarted",
        "PointStarted",
        "PointCompleted",
        "DeviceCrashed",
        "RetryScheduled",
        "PowerCycled",
        "PointSkipped",
        "CheckpointWritten",
        "WorkerShardDone",
        "SweepCompleted",
    ] {
        assert!(trace.contains(needed), "trace lacks {needed}:\n{trace}");
    }
}
