//! Test-case execution support: configuration, the deterministic RNG and
//! the case-level error type used by the `prop_assert*` macros.

/// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for failures.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Convenience constructor for rejections.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Deterministic generator feeding the strategies: SplitMix64 seeded from
/// the test's module path and the case number, so every run of the suite
/// explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `name`.
    #[must_use]
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("crate::test", 3);
        let mut b = TestRng::deterministic("crate::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("crate::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_draws_in_range() {
        let mut rng = TestRng::deterministic("unit", 0);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
