//! The power model proper.

use hbm_units::{FaradsPerSecond, Millivolts, Ratio, Watts};
use serde::{Deserialize, Serialize};

/// Parameters of the HBM power model.
///
/// The defaults are calibrated jointly to the study's relative observations
/// (1.5× at 0.98 V, 2.3× at 0.85 V, idle ≈ ⅓ of full load, −14 % effective
/// capacitance at 0.85 V) and to an absolute full-load figure representative
/// of two HBM2 stacks streaming 310 GB/s (≈9 W at 1.20 V, ≈3.9 pJ/bit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModelParams {
    /// Effective `α·C_L·f` at 100 % bandwidth utilization, fault-free.
    pub full_load_acf: FaradsPerSecond,
    /// Effective `α·C_L·f` of the idle device (clocking + refresh).
    pub idle_acf: FaradsPerSecond,
    /// Fraction of a stuck bit's switched capacitance that is lost: the
    /// effective capacitance scales by `1 − factor × fault_fraction`.
    /// Calibrated so the model's fault fraction at 0.85 V (≈0.185) produces
    /// the measured 14 % capacitance drop.
    pub stuck_bit_capacitance_factor: f64,
}

impl PowerModelParams {
    /// Parameters calibrated to the study.
    #[must_use]
    pub fn date21() -> Self {
        PowerModelParams {
            // 9 W at 1.2 V full load → αC_L·f = 9/1.44 = 6.25 F/s.
            full_load_acf: FaradsPerSecond(6.25),
            // Idle ≈ one third of full load.
            idle_acf: FaradsPerSecond(6.25 / 3.0),
            stuck_bit_capacitance_factor: 0.76,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if capacitances are not positive, the idle capacitance exceeds
    /// the full-load one, or the stuck-bit factor is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.full_load_acf.as_f64() > 0.0 && self.idle_acf.as_f64() > 0.0,
            "capacitance rates must be positive"
        );
        assert!(
            self.idle_acf <= self.full_load_acf,
            "idle capacitance cannot exceed full-load capacitance"
        );
        assert!(
            (0.0..=1.0).contains(&self.stuck_bit_capacitance_factor),
            "stuck-bit factor must be in [0, 1]"
        );
    }
}

impl Default for PowerModelParams {
    fn default() -> Self {
        PowerModelParams::date21()
    }
}

/// The HBM power model: `P = acf(util, faults) × V²`.
///
/// # Examples
///
/// ```
/// use hbm_power::HbmPowerModel;
/// use hbm_units::{Millivolts, Ratio};
///
/// let model = HbmPowerModel::date21();
///
/// // Idle power is about a third of full-load power at the same voltage.
/// let full = model.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
/// let idle = model.power(Millivolts(1200), Ratio::ZERO, Ratio::ZERO);
/// let frac = idle / full;
/// assert!((frac - 1.0 / 3.0).abs() < 0.01, "idle fraction {frac}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmPowerModel {
    params: PowerModelParams,
}

impl HbmPowerModel {
    /// The model with the study's calibration.
    #[must_use]
    pub fn date21() -> Self {
        HbmPowerModel::new(PowerModelParams::date21())
    }

    /// Creates a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail validation.
    #[must_use]
    pub fn new(params: PowerModelParams) -> Self {
        params.validate();
        HbmPowerModel { params }
    }

    /// The parameters.
    #[must_use]
    pub fn params(&self) -> PowerModelParams {
        self.params
    }

    /// Effective `α·C_L·f` at a bandwidth utilization and union fault
    /// fraction. Stuck bits no longer switch, scaling the capacitance by
    /// `1 − factor × fault_fraction`.
    #[must_use]
    pub fn effective_acf(&self, utilization: Ratio, fault_fraction: Ratio) -> FaradsPerSecond {
        let utilization = utilization.clamp_unit().as_f64();
        let fault = fault_fraction.clamp_unit().as_f64();
        let base = self.params.idle_acf.as_f64()
            + (self.params.full_load_acf.as_f64() - self.params.idle_acf.as_f64()) * utilization;
        FaradsPerSecond(base * (1.0 - self.params.stuck_bit_capacitance_factor * fault))
    }

    /// Total HBM power at a supply voltage, bandwidth utilization and fault
    /// fraction.
    #[must_use]
    pub fn power(&self, supply: Millivolts, utilization: Ratio, fault_fraction: Ratio) -> Watts {
        let v = supply.to_volts();
        Watts(self.effective_acf(utilization, fault_fraction).as_f64() * v.squared())
    }

    /// Power-saving factor of running at `(supply, fault_fraction)` instead
    /// of nominal 1.20 V fault-free, at the same utilization (undervolting
    /// does not change bandwidth, so utilization cancels only in the
    /// quadratic part — the ratio still depends on it only through the
    /// identical `acf` base, hence not at all for the fault-free case).
    #[must_use]
    pub fn saving_factor(
        &self,
        supply: Millivolts,
        utilization: Ratio,
        fault_fraction: Ratio,
    ) -> f64 {
        let nominal = self.power(Millivolts(1200), utilization, Ratio::ZERO);
        nominal / self.power(supply, utilization, fault_fraction)
    }

    /// Energy per *delivered* bit, in picojoules: total power over the bit
    /// rate the workload actually sustains. Pin-rate energy figures flatter
    /// deep undervolting; feeding the timing model's delivered bandwidth
    /// here makes the stretch below the knee claw back part of the
    /// quadratic saving. Returns infinity for a zero/negative bandwidth
    /// (an idle or crashed device delivers nothing).
    #[must_use]
    pub fn energy_per_bit_pj(
        &self,
        supply: Millivolts,
        utilization: Ratio,
        fault_fraction: Ratio,
        delivered_gbps: f64,
    ) -> f64 {
        if delivered_gbps <= 0.0 {
            return f64::INFINITY;
        }
        let watts = self.power(supply, utilization, fault_fraction).as_f64();
        watts / (delivered_gbps * 8.0e9) * 1e12
    }
}

impl Default for HbmPowerModel {
    fn default() -> Self {
        HbmPowerModel::date21()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_scaling() {
        let m = HbmPowerModel::date21();
        let p12 = m.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
        let p06 = m.power(Millivolts(600), Ratio::ONE, Ratio::ZERO);
        assert!((p12 / p06 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn guardband_saving_is_1_5x_at_every_utilization() {
        let m = HbmPowerModel::date21();
        for util in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let s = m.saving_factor(Millivolts(980), Ratio(util), Ratio::ZERO);
            assert!((s - 1.4994).abs() < 0.01, "util {util}: saving {s}");
        }
    }

    #[test]
    fn saving_at_850mv_reaches_2_3x_with_faults() {
        let m = HbmPowerModel::date21();
        // The fault model's device fraction at 0.85 V is ≈0.185.
        let s = m.saving_factor(Millivolts(850), Ratio::ONE, Ratio(0.185));
        assert!((2.2..2.45).contains(&s), "saving at 0.85 V: {s}");
        // Without the stuck-bit effect it would only be ≈2.0×.
        let s_nofault = m.saving_factor(Millivolts(850), Ratio::ONE, Ratio::ZERO);
        assert!((1.95..2.05).contains(&s_nofault));
    }

    #[test]
    fn capacitance_drop_at_850mv_is_about_14_percent() {
        let m = HbmPowerModel::date21();
        let nominal = m.effective_acf(Ratio::ONE, Ratio::ZERO);
        let faulty = m.effective_acf(Ratio::ONE, Ratio(0.185));
        let drop = 1.0 - faulty / nominal;
        assert!((0.12..0.16).contains(&drop), "capacitance drop {drop}");
    }

    #[test]
    fn idle_is_one_third_of_full_load() {
        let m = HbmPowerModel::date21();
        let frac = m.power(Millivolts(1200), Ratio::ZERO, Ratio::ZERO)
            / m.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
        assert!((frac - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_utilization() {
        let m = HbmPowerModel::date21();
        let mut last = Watts::ZERO;
        for u in 0..=10 {
            let p = m.power(Millivolts(1200), Ratio(f64::from(u) / 10.0), Ratio::ZERO);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn power_monotone_in_voltage() {
        let m = HbmPowerModel::date21();
        let mut v = Millivolts(1200);
        let mut prev = Watts(f64::MAX);
        while v >= Millivolts(810) {
            let p = m.power(v, Ratio(0.5), Ratio::ZERO);
            assert!(p < prev, "power must strictly drop with voltage at {v}");
            prev = p;
            v = v.saturating_sub(Millivolts(10));
        }
    }

    #[test]
    fn absolute_power_plausible() {
        let m = HbmPowerModel::date21();
        let p = m.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO);
        assert!((8.0..10.0).contains(&p.as_f64()), "full load {p}");
        // ≈3.6 pJ/bit at 310 GB/s.
        let pj_per_bit = p.as_f64() / (310.0e9 * 8.0) * 1e12;
        assert!(
            (2.0..7.0).contains(&pj_per_bit),
            "energy {pj_per_bit} pJ/bit"
        );
    }

    #[test]
    fn energy_per_delivered_bit_matches_the_headline_figure() {
        let m = HbmPowerModel::date21();
        // ≈3.6 pJ/bit streaming 310 GB/s at nominal.
        let nominal = m.energy_per_bit_pj(Millivolts(1200), Ratio::ONE, Ratio::ZERO, 310.0);
        assert!((2.0..7.0).contains(&nominal), "{nominal} pJ/bit");
        // Undervolting at unchanged bandwidth wins quadratically …
        let cheap = m.energy_per_bit_pj(Millivolts(980), Ratio::ONE, Ratio::ZERO, 310.0);
        assert!((nominal / cheap - 1.4994).abs() < 0.01);
        // … but lost bandwidth at the same rail costs energy per bit.
        let slowed = m.energy_per_bit_pj(Millivolts(980), Ratio::ONE, Ratio::ZERO, 280.0);
        assert!(slowed > cheap);
        // Nothing delivered, nothing amortized.
        assert!(m
            .energy_per_bit_pj(Millivolts(1200), Ratio::ONE, Ratio::ZERO, 0.0)
            .is_infinite());
    }

    #[test]
    fn out_of_range_inputs_clamped() {
        let m = HbmPowerModel::date21();
        let p = m.power(Millivolts(1200), Ratio(1.7), Ratio(-0.3));
        assert_eq!(p, m.power(Millivolts(1200), Ratio::ONE, Ratio::ZERO));
    }

    #[test]
    #[should_panic(expected = "idle capacitance cannot exceed")]
    fn invalid_params_rejected() {
        let _ = HbmPowerModel::new(PowerModelParams {
            full_load_acf: FaradsPerSecond(1.0),
            idle_acf: FaradsPerSecond(2.0),
            stuck_bit_capacitance_factor: 0.5,
        });
    }
}
