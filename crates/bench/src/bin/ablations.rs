//! Ablation studies for the design choices DESIGN.md calls out:
//! clustering, per-PC variation strength and polarity asymmetry.

use hbm_units::Millivolts;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);

    println!("== Ablation: spatial clustering (fault concentration at 0.93 V) ==");
    let (with, without) = hbm_bench::ablation_clustering(seed, Millivolts(930));
    println!("fault share of weakest 5% regions, with clustering:    {with:.3}");
    println!("fault share of weakest 5% regions, without clustering: {without:.3}\n");

    println!("== Ablation: per-PC variation sigma vs fault-free PCs at 0.95 V ==");
    for (sigma, pcs) in hbm_bench::ablation_variation(seed, &[0, 4, 8, 16, 24]) {
        println!(
            "sigma {:>6.3} V -> {pcs:>2} fault-free PCs (paper example: 7)",
            sigma
        );
    }
    println!();

    println!("== Ablation: polarity asymmetry (mean 0->1 / 1->0 ratio) ==");
    let (asym, sym) = hbm_bench::ablation_polarity(seed);
    println!("calibrated curves: {asym:.2} (paper: 1.21)");
    println!("symmetric curves:  {sym:.2} (expected ~1.0)");
}
