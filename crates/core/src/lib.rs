//! The core library of the HBM voltage-underscaling study reproduction:
//! the complete measurement methodology of *"Understanding Power Consumption
//! and Reliability of High-Bandwidth Memory with Voltage Underscaling"*
//! (DATE 2021), runnable against the simulated VCU128 platform assembled
//! from the workspace's substrate crates.
//!
//! # What lives here
//!
//! - [`Platform`]: the testbed — an [`hbm_device::HbmDevice`] behind a
//!   fault-injecting AXI view, powered by an
//!   [`hbm_vreg::PowerRail`] (ISL68301 + INA226), with per-stack
//!   traffic-generator controllers;
//! - [`ReliabilityTester`]: the paper's Algorithm 1 — sequential
//!   write/read-back fault counting across a voltage sweep, batched per the
//!   statistical methodology;
//! - [`PowerSweep`]: the power-measurement experiment behind Fig. 2 and
//!   (via [`hbm_power::PowerAnalysis`]) Fig. 3;
//! - [`characterization`]: per-PC / per-pattern fault tables (Fig. 5),
//!   stack comparison (Fig. 4) and polarity statistics;
//! - [`GuardbandFinder`]: locating V_min and V_critical, by linear sweep as
//!   in the paper or by binary refinement;
//! - [`TradeOffAnalysis`]: the three-factor power / fault-rate / capacity
//!   trade-off and usable-PC curves (Fig. 6), plus an operating-point
//!   planner;
//! - [`stats`]: statistical fault-injection sizing (130 runs → 7 % error at
//!   90 % confidence, after Leveugle et al.);
//! - [`report`]: the [`Render`] trait — plain-text and CSV views of every
//!   figure's report;
//! - [`Experiment`]: the unified interface every study above implements —
//!   one `run(&mut Platform)` entry point, and [`DynExperiment`] when you
//!   want a heterogeneous campaign of boxed experiments;
//! - [`SweepSupervisor`]: the crash-aware resilient runtime — checkpointed
//!   resume, transient-failure retry with bounded exponential backoff, and
//!   per-port quarantine around the reliability sweep — with
//!   [`SweepConfig`] as the one builder for every campaign knob;
//! - [`telemetry`]: structured observation of a running sweep — typed
//!   lifecycle events fanned out to JSONL and human-progress sinks, plus a
//!   counters/histogram registry ([`telemetry::Metrics`]) covering cache
//!   hits, scanned words, checkpoint bytes and per-point wall time.
//!
//! # Quick start
//!
//! Every study is an [`Experiment`]: configure it, run it against a
//! [`Platform`], render the report.
//!
//! ```
//! use hbm_undervolt::report::Render;
//! use hbm_undervolt::{Experiment, Platform, PowerSweep};
//!
//! # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
//! let mut platform = Platform::builder().seed(7).build();
//! let report = Experiment::run(&PowerSweep::date21(), &mut platform)?;
//! assert!(report.to_text().contains("1.20"));
//! assert!(report.to_csv().starts_with("voltage_mv"));
//! # Ok(())
//! # }
//! ```
//!
//! Lower-level platform access works the same way it always has:
//!
//! ```
//! use hbm_undervolt::Platform;
//! use hbm_units::{Millivolts, Ratio};
//!
//! # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
//! let mut platform = Platform::builder().seed(7).build();
//!
//! // Undervolt into the guardband and measure power.
//! platform.set_voltage(Millivolts(980))?;
//! let sample = platform.measure_power(Ratio::ONE)?;
//! assert!(sample.power.as_f64() > 0.0);
//!
//! // 1.5× cheaper than nominal.
//! platform.set_voltage(Millivolts(1200))?;
//! let nominal = platform.measure_power(Ratio::ONE)?;
//! let saving = nominal.power / sample.power;
//! assert!((saving - 1.5).abs() < 0.05, "saving {saving}");
//! # Ok(())
//! # }
//! ```
//!
//! # Parallel sweeps and determinism
//!
//! [`PlatformBuilder::workers`] selects how many threads execute each
//! voltage point's workload; the engine shards the device by pseudo
//! channel and merges per-shard statistics afterwards. The guarantee is
//! strict: **a parallel run is bit-identical to the sequential run** for
//! every seed and every worker count, because all randomness is derived
//! from per-`(seed, voltage, pseudo-channel)` counter-mode streams rather
//! than shared RNG state.
//!
//! ```
//! use hbm_undervolt::{Experiment, Platform, ReliabilityConfig, ReliabilityTester};
//!
//! # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
//! let tester = ReliabilityTester::new(ReliabilityConfig::quick())?;
//! let mut sequential = Platform::builder().seed(7).workers(1).build();
//! let mut parallel = Platform::builder().seed(7).workers(4).build();
//! assert_eq!(tester.run(&mut sequential)?, tester.run(&mut parallel)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterization;
mod engine;
mod error;
mod experiment;
pub mod fleet;
mod governor;
mod guardband;
mod platform;
mod power_test;
mod reliability;
pub mod report;
pub mod stats;
mod supervisor;
mod sweep;
mod sweep_config;
pub mod telemetry;
mod trade_off;

pub use engine::ShardPort;
pub use error::ExperimentError;
pub use experiment::{DynExperiment, Experiment};
pub use fleet::{supervised_device_record, supervised_sweep_config};
pub use governor::{
    outcome_saving, GovernorConfig, GovernorOutcome, GovernorScenario, GovernorScenarioReport,
    GovernorScenarioRow, GovernorVariant, TripReason, UndervoltGovernor, WorkloadMode,
};
pub use guardband::{GuardbandFinder, GuardbandReport};
pub use hbm_faults::{FaultFieldMode, FieldKernel, InstructionSet, KernelBackend, MaskKernel};
pub use platform::{Platform, PlatformBuilder, PowerSample, UndervoltedPort};
pub use power_test::{PowerPoint, PowerSweep, PowerSweepReport};
pub use reliability::{
    ExecutionMode, PatternOutcome, ReliabilityConfig, ReliabilityReport, ReliabilityTester,
    SweepCarry, TestScope, VoltagePoint,
};
pub use report::{AcfTable, Render};
pub use supervisor::{
    summarize, Clock, PointOutcome, QuarantineRecord, RetryPolicy, SupervisedPoint,
    SupervisedReport, SweepCheckpoint, SweepSupervisor, SystemClock, TestClock, CHECKPOINT_VERSION,
};
pub use sweep::VoltageSweep;
pub use sweep_config::SweepConfig;
pub use telemetry::{
    JsonlSink, MetricsSnapshot, Observer, ProgressSink, SharedBuffer, Telemetry, TelemetryEvent,
    TraceRecord,
};
pub use trade_off::{
    OperatingPoint, PlanRequest, PlannedFraction, SurfacePoint, TradeOffAnalysis, TradeOffReport,
    UsablePcCurve,
};
