//! The memory-side hierarchy: pseudo channels, 128-bit memory channels and
//! whole HBM stacks.

use serde::{Deserialize, Serialize};

use crate::address::{ChannelId, PcIndex, StackId, WordOffset};
use crate::array::MemoryArray;
use crate::error::DeviceError;
use crate::geometry::HbmGeometry;
use crate::word::Word256;

/// Access counters for one pseudo channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcStats {
    /// Number of word reads served.
    pub reads: u64,
    /// Number of word writes served.
    pub writes: u64,
}

impl PcStats {
    /// Total accesses (reads + writes).
    #[must_use]
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

/// A 64-bit pseudo channel: the smallest independently addressable memory
/// unit of the HBM stack, owning a non-overlapping array (256 MB at full
/// scale).
#[derive(Debug, Clone)]
pub struct PseudoChannel {
    index: PcIndex,
    array: MemoryArray,
    stats: PcStats,
}

impl PseudoChannel {
    /// Creates the pseudo channel at global index `index`.
    #[must_use]
    pub fn new(index: PcIndex, geometry: HbmGeometry) -> Self {
        PseudoChannel {
            index,
            array: MemoryArray::new(geometry.words_per_pc()),
            stats: PcStats::default(),
        }
    }

    /// The global index of this pseudo channel.
    #[must_use]
    pub fn index(&self) -> PcIndex {
        self.index
    }

    /// Reads one AXI word.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] for offsets beyond the
    /// channel capacity.
    pub fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        let word = self.array.read(offset)?;
        self.stats.reads += 1;
        Ok(word)
    }

    /// Reads one AXI word without recording activity (for inspection by
    /// analysis passes that must not perturb statistics).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] for offsets beyond the
    /// channel capacity.
    pub fn peek(&self, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.array.read(offset)
    }

    /// Writes one AXI word.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] for offsets beyond the
    /// channel capacity.
    pub fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.array.write(offset, word)?;
        self.stats.writes += 1;
        Ok(())
    }

    /// Access counters.
    #[must_use]
    pub fn stats(&self) -> PcStats {
        self.stats
    }

    /// Resets the access counters.
    pub fn reset_stats(&mut self) {
        self.stats = PcStats::default();
    }

    /// The backing array (diagnostics).
    #[must_use]
    pub fn array(&self) -> &MemoryArray {
        &self.array
    }

    /// Discards contents, modelling loss of DRAM state at power-down.
    pub fn clear(&mut self) {
        self.array.clear();
    }

    /// Discards contents and installs `background` as the power-up word
    /// every uninitialized offset reads afterwards (see
    /// [`MemoryArray::clear_to`]).
    pub fn clear_to(&mut self, background: Word256) {
        self.array.clear_to(background);
    }
}

/// A 128-bit memory channel: two pseudo channels sharing clock and command
/// wiring but with separate data buses and non-overlapping arrays.
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    id: ChannelId,
    pcs: Vec<PseudoChannel>,
}

impl MemoryChannel {
    /// Creates channel `id` of stack `stack`, allocating its pseudo channels.
    ///
    /// # Panics
    ///
    /// Panics if `stack`/`id` exceed the geometry (internal construction is
    /// always in range).
    #[must_use]
    pub fn new(geometry: HbmGeometry, stack: StackId, id: ChannelId) -> Self {
        let pcs = (0..geometry.pcs_per_channel())
            .map(|i| {
                let index = PcIndex::compose(geometry, stack, id, i)
                    .expect("channel construction within geometry");
                PseudoChannel::new(index, geometry)
            })
            .collect();
        MemoryChannel { id, pcs }
    }

    /// Channel id within its stack.
    #[must_use]
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The pseudo channels of this channel.
    #[must_use]
    pub fn pseudo_channels(&self) -> &[PseudoChannel] {
        &self.pcs
    }

    /// Mutable access to the pseudo channels.
    pub fn pseudo_channels_mut(&mut self) -> &mut [PseudoChannel] {
        &mut self.pcs
    }
}

/// One HBM stack: several DRAM dies presenting 8 independent memory
/// channels (16 pseudo channels, 4 GB at full scale).
#[derive(Debug, Clone)]
pub struct HbmStack {
    id: StackId,
    channels: Vec<MemoryChannel>,
}

impl HbmStack {
    /// Creates stack `id` under `geometry`.
    #[must_use]
    pub fn new(geometry: HbmGeometry, id: StackId) -> Self {
        let channels = (0..geometry.channels_per_stack())
            .map(|c| MemoryChannel::new(geometry, id, ChannelId(c)))
            .collect();
        HbmStack { id, channels }
    }

    /// The stack id.
    #[must_use]
    pub fn id(&self) -> StackId {
        self.id
    }

    /// The memory channels of this stack.
    #[must_use]
    pub fn channels(&self) -> &[MemoryChannel] {
        &self.channels
    }

    /// Mutable access to the memory channels.
    pub fn channels_mut(&mut self) -> &mut [MemoryChannel] {
        &mut self.channels
    }

    /// Iterates over all pseudo channels of the stack in global-index order.
    pub fn pseudo_channels(&self) -> impl Iterator<Item = &PseudoChannel> {
        self.channels
            .iter()
            .flat_map(|c| c.pseudo_channels().iter())
    }

    /// Mutable iteration over all pseudo channels of the stack.
    pub fn pseudo_channels_mut(&mut self) -> impl Iterator<Item = &mut PseudoChannel> {
        self.channels
            .iter_mut()
            .flat_map(|c| c.pseudo_channels_mut().iter_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_construction_covers_all_pcs() {
        let g = HbmGeometry::vcu128();
        let stack0 = HbmStack::new(g, StackId(0));
        let indices: Vec<u8> = stack0
            .pseudo_channels()
            .map(|pc| pc.index().as_u8())
            .collect();
        assert_eq!(indices, (0..16).collect::<Vec<_>>());

        let stack1 = HbmStack::new(g, StackId(1));
        let indices: Vec<u8> = stack1
            .pseudo_channels()
            .map(|pc| pc.index().as_u8())
            .collect();
        assert_eq!(indices, (16..32).collect::<Vec<_>>());
    }

    #[test]
    fn pc_read_write_and_stats() {
        let g = HbmGeometry::vcu128_reduced();
        let mut pc = PseudoChannel::new(PcIndex::new(3).unwrap(), g);
        pc.write(WordOffset(7), Word256::ONES).unwrap();
        assert_eq!(pc.read(WordOffset(7)).unwrap(), Word256::ONES);
        assert_eq!(
            pc.stats(),
            PcStats {
                reads: 1,
                writes: 1
            }
        );
        assert_eq!(pc.stats().total(), 2);
        pc.reset_stats();
        assert_eq!(pc.stats().total(), 0);
    }

    #[test]
    fn peek_does_not_count() {
        let g = HbmGeometry::vcu128_reduced();
        let mut pc = PseudoChannel::new(PcIndex::new(0).unwrap(), g);
        pc.write(WordOffset(0), Word256::ONES).unwrap();
        assert_eq!(pc.peek(WordOffset(0)).unwrap(), Word256::ONES);
        assert_eq!(pc.stats().reads, 0);
    }

    #[test]
    fn clear_loses_content() {
        let g = HbmGeometry::vcu128_reduced();
        let mut pc = PseudoChannel::new(PcIndex::new(0).unwrap(), g);
        pc.write(WordOffset(0), Word256::ONES).unwrap();
        pc.clear();
        assert_eq!(pc.read(WordOffset(0)).unwrap(), Word256::ZERO);
    }

    #[test]
    fn channel_has_independent_pcs() {
        let g = HbmGeometry::vcu128_reduced();
        let mut ch = MemoryChannel::new(g, StackId(0), ChannelId(0));
        let [pc0, pc1] = ch.pseudo_channels_mut() else {
            panic!("expected two pseudo channels");
        };
        pc0.write(WordOffset(0), Word256::ONES).unwrap();
        assert_eq!(pc1.read(WordOffset(0)).unwrap(), Word256::ZERO);
    }
}
