//! Deterministic per-(seed, voltage, pseudo-channel) random streams.
//!
//! The parallel sweep engine partitions each voltage point's workload by
//! pseudo channel and runs the shards on worker threads in whatever order
//! the scheduler picks. Any randomness consumed during a shard's work
//! (sampled word offsets, randomized access orders) must therefore be keyed
//! to the *work item*, never to shared mutable RNG state — otherwise the
//! interleaving would change the draws and parallel runs would diverge from
//! sequential ones.
//!
//! [`pc_stream`] provides that keying: one independent ChaCha8 stream per
//! `(seed, voltage, pseudo channel)` triple, derived purely by hashing the
//! triple into a 256-bit key. Two calls with the same triple yield
//! bit-identical streams on every thread count and platform.

use hbm_device::PcIndex;
use hbm_units::Millivolts;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::hash;

/// Domain tag separating stream keys from the injector's hash domains.
const TAG_STREAM: u64 = 0x7063_5f73_7472_6d00; // "pc_strm\0"

/// An independent, reproducible ChaCha8 stream for one
/// `(seed, voltage, pseudo channel)` work item.
///
/// # Examples
///
/// ```
/// use hbm_device::PcIndex;
/// use hbm_faults::stream::pc_stream;
/// use hbm_units::Millivolts;
/// use rand::RngCore;
///
/// let pc = PcIndex::new(4).unwrap();
/// let mut a = pc_stream(7, Millivolts(900), pc);
/// let mut b = pc_stream(7, Millivolts(900), pc);
/// assert_eq!(a.next_u64(), b.next_u64()); // same triple → same stream
///
/// let mut c = pc_stream(7, Millivolts(890), pc);
/// assert_ne!(a.next_u64(), c.next_u64()); // any coordinate change → new stream
/// ```
#[must_use]
pub fn pc_stream(seed: u64, voltage: Millivolts, pc: PcIndex) -> ChaCha8Rng {
    let mut key = [0u8; 32];
    for (i, chunk) in key.chunks_exact_mut(8).enumerate() {
        let word = hash::combine(&[
            TAG_STREAM,
            seed,
            u64::from(voltage.as_u32()),
            u64::from(pc.as_u8()),
            i as u64,
        ]);
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// The sampled-sweep word offsets for one `(seed, voltage, pseudo channel)`
/// work item: `samples` draws from `[0, words)` off that item's
/// [`pc_stream`].
///
/// Both execution paths of the reliability tester — the traffic-generator
/// programs and the cached-mask kernel — draw their sampled offsets through
/// this one function, so sampled sweeps visit identical words regardless of
/// the execution mode or worker count.
#[must_use]
pub fn sample_offsets(
    seed: u64,
    voltage: Millivolts,
    pc: PcIndex,
    samples: u64,
    words: u64,
) -> Vec<u64> {
    use rand::Rng;
    let mut rng = pc_stream(seed, voltage, pc);
    (0..samples).map(|_| rng.gen_range(0..words)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    fn first_words(seed: u64, voltage: Millivolts, index: u8, n: usize) -> Vec<u64> {
        let mut rng = pc_stream(seed, voltage, pc(index));
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn streams_are_reproducible() {
        assert_eq!(
            first_words(7, Millivolts(900), 3, 16),
            first_words(7, Millivolts(900), 3, 16)
        );
    }

    #[test]
    fn every_coordinate_separates_streams() {
        let base = first_words(7, Millivolts(900), 3, 4);
        assert_ne!(base, first_words(8, Millivolts(900), 3, 4));
        assert_ne!(base, first_words(7, Millivolts(901), 3, 4));
        assert_ne!(base, first_words(7, Millivolts(900), 4, 4));
    }

    #[test]
    fn sample_offsets_match_direct_stream_draws() {
        use rand::Rng;
        let mut rng = pc_stream(3, Millivolts(880), pc(5));
        let direct: Vec<u64> = (0..64).map(|_| rng.gen_range(0..512)).collect();
        let sampled = sample_offsets(3, Millivolts(880), pc(5), 64, 512);
        assert_eq!(sampled, direct);
        assert!(sampled.iter().all(|&w| w < 512));
    }

    #[test]
    fn all_pcs_have_distinct_streams() {
        let mut firsts: Vec<u64> = (0..32)
            .map(|i| first_words(21, Millivolts(870), i, 1)[0])
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 32, "stream collision across pseudo channels");
    }
}
