//! Register-level model of the Intersil ISL68301 PMBus regulator that
//! supplies the `VCC_HBM` rail on the VCU128 board.

use hbm_units::{Amperes, Celsius, Millivolts, Ohms, Watts};
use serde::{Deserialize, Serialize};

use crate::error::PmbusError;
use crate::pmbus::{
    decode_linear16, encode_linear11, encode_linear16, PmbusCommand, PmbusDevice,
    VOUT_MODE_EXPONENT,
};

/// `STATUS_WORD` bit: an output over-voltage fault latched.
pub const STATUS_VOUT_OV: u16 = 1 << 5;
/// `STATUS_WORD` bit: the output is off.
pub const STATUS_OFF: u16 = 1 << 6;
/// `STATUS_WORD` bit: an output under-voltage fault latched.
pub const STATUS_VOUT_UV: u16 = 1 << 4;

/// Output on/off state driven by the `OPERATION` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationState {
    /// Output enabled (OPERATION = 0x80).
    On,
    /// Output disabled (OPERATION = 0x00); used to power-cycle the HBM after
    /// a crash below the critical voltage.
    Off,
}

/// Protection limits of the regulator.
///
/// The defaults are chosen for the study's `VCC_HBM` rail: the commanded
/// range must reach all the way down to 0.81 V and a little beyond (the
/// study deliberately crosses the crash threshold), so the under-voltage
/// warning floor sits at 0.60 V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegulatorLimits {
    /// Maximum commandable output voltage (`VOUT_MAX`).
    pub vout_max: Millivolts,
    /// Over-voltage fault limit.
    pub ov_fault: Millivolts,
    /// Under-voltage fault limit.
    pub uv_fault: Millivolts,
}

impl RegulatorLimits {
    /// Limits for the study's `VCC_HBM` rail.
    #[must_use]
    pub fn vcc_hbm() -> Self {
        RegulatorLimits {
            vout_max: Millivolts(1320),
            ov_fault: Millivolts(1300),
            uv_fault: Millivolts(600),
        }
    }
}

impl Default for RegulatorLimits {
    fn default() -> Self {
        RegulatorLimits::vcc_hbm()
    }
}

/// The regulator model.
///
/// Faithful at the level the study needs: LINEAR16 `VOUT_COMMAND` with a
/// published `VOUT_MODE` exponent, `VOUT_MAX` enforcement (out-of-range
/// writes are NACKed with [`PmbusError::InvalidData`]), OV/UV protection
/// latches cleared by `CLEAR_FAULTS`, output on/off via `OPERATION`, and
/// LINEAR11 telemetry (`READ_IOUT`, `READ_POUT`, `READ_TEMPERATURE_1`) that
/// the surrounding [`PowerRail`](crate::PowerRail) keeps up to date.
///
/// # Examples
///
/// ```
/// use hbm_units::Millivolts;
/// use hbm_vreg::pmbus::{encode_linear16, VOUT_MODE_EXPONENT, PmbusCommand, PmbusDevice};
/// use hbm_vreg::Isl68301;
///
/// # fn main() -> Result<(), hbm_vreg::PmbusError> {
/// let mut reg = Isl68301::vcc_hbm();
/// let word = encode_linear16(Millivolts(980).to_volts(), VOUT_MODE_EXPONENT)?;
/// reg.write_word(PmbusCommand::VoutCommand, word)?;
/// assert_eq!(reg.output(), Millivolts(980));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Isl68301 {
    vout_command: u16,
    limits: RegulatorLimits,
    operation: OperationState,
    status: u16,
    iout: Amperes,
    pout: Watts,
    temperature: Celsius,
    /// Load-line (droop) resistance: the output sags by `iout × r` under
    /// load. Zero by default (ideal regulation, the study's assumption);
    /// enable to explore how PDN droop eats into the guardband margin.
    load_line: Ohms,
    /// Margin applied by the OPERATION margin modes, as a fraction of the
    /// commanded voltage (e.g. 0.05 = ±5 %).
    margin_fraction: f64,
    margin: MarginState,
}

/// Output margining state (PMBus OPERATION margin modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarginState {
    /// Regulating to the commanded voltage.
    None,
    /// Margined low (OPERATION = 0x98): commanded voltage minus the margin.
    Low,
    /// Margined high (OPERATION = 0xA8): commanded voltage plus the margin.
    High,
}

impl Isl68301 {
    /// A regulator configured for the study's `VCC_HBM` rail: 1.20 V
    /// nominal output, on, no latched faults.
    #[must_use]
    pub fn vcc_hbm() -> Self {
        Isl68301::with_limits(Millivolts(1200), RegulatorLimits::vcc_hbm())
    }

    /// A regulator with explicit initial output and protection limits.
    ///
    /// # Panics
    ///
    /// Panics if `initial` exceeds `limits.vout_max`.
    #[must_use]
    pub fn with_limits(initial: Millivolts, limits: RegulatorLimits) -> Self {
        assert!(
            initial <= limits.vout_max,
            "initial voltage {initial} above VOUT_MAX {}",
            limits.vout_max
        );
        let counts = encode_linear16(initial.to_volts(), VOUT_MODE_EXPONENT)
            .expect("initial voltage encodable");
        Isl68301 {
            vout_command: counts,
            limits,
            operation: OperationState::On,
            status: 0,
            iout: Amperes::ZERO,
            pout: Watts::ZERO,
            temperature: Celsius::STUDY_AMBIENT,
            load_line: Ohms(0.0),
            margin_fraction: 0.05,
            margin: MarginState::None,
        }
    }

    /// Enables a load-line (droop) resistance: the output sags by
    /// `iout × r` under load. The study's analysis assumes ideal
    /// regulation (`r = 0`, the default); a realistic PDN with a few mΩ
    /// shows how load transients eat into the undervolting margin.
    pub fn set_load_line(&mut self, r: Ohms) {
        self.load_line = r;
    }

    /// The configured load-line resistance.
    #[must_use]
    pub fn load_line(&self) -> Ohms {
        self.load_line
    }

    /// The current margin state.
    #[must_use]
    pub fn margin_state(&self) -> MarginState {
        self.margin
    }

    /// The regulated output voltage: the commanded set-point (adjusted by
    /// margining and load-line droop) while on, zero while off.
    #[must_use]
    pub fn output(&self) -> Millivolts {
        match self.operation {
            OperationState::On => {
                let set = decode_linear16(self.vout_command, VOUT_MODE_EXPONENT).as_f64();
                let margined = match self.margin {
                    MarginState::None => set,
                    MarginState::Low => set * (1.0 - self.margin_fraction),
                    MarginState::High => set * (1.0 + self.margin_fraction),
                };
                let drooped = margined - (self.iout * self.load_line).as_f64();
                Millivolts::from_volts(drooped.max(0.0))
            }
            OperationState::Off => Millivolts::ZERO,
        }
    }

    /// Current on/off state.
    #[must_use]
    pub fn operation_state(&self) -> OperationState {
        self.operation
    }

    /// The protection limits.
    #[must_use]
    pub fn limits(&self) -> RegulatorLimits {
        self.limits
    }

    /// Updates the telemetry the rail measures at the regulator output.
    pub fn update_telemetry(&mut self, iout: Amperes, pout: Watts, temperature: Celsius) {
        self.iout = iout;
        self.pout = pout;
        self.temperature = temperature;
        self.refresh_protection();
    }

    fn refresh_protection(&mut self) {
        let out = self.output();
        if self.operation == OperationState::On {
            if out > self.limits.ov_fault {
                self.status |= STATUS_VOUT_OV;
            }
            if out < self.limits.uv_fault {
                self.status |= STATUS_VOUT_UV;
            }
        }
    }

    /// The latched status word.
    #[must_use]
    pub fn status(&self) -> u16 {
        let mut status = self.status;
        if self.operation == OperationState::Off {
            status |= STATUS_OFF;
        }
        status
    }
}

impl Default for Isl68301 {
    fn default() -> Self {
        Isl68301::vcc_hbm()
    }
}

impl PmbusDevice for Isl68301 {
    fn read_byte(&mut self, cmd: PmbusCommand) -> Result<u8, PmbusError> {
        match cmd {
            PmbusCommand::VoutMode => Ok((VOUT_MODE_EXPONENT as u8) & 0x1F),
            PmbusCommand::Operation => Ok(match (self.operation, self.margin) {
                (OperationState::Off, _) => 0x00,
                (OperationState::On, MarginState::None) => 0x80,
                (OperationState::On, MarginState::Low) => 0x98,
                (OperationState::On, MarginState::High) => 0xA8,
            }),
            PmbusCommand::VoutCommand
            | PmbusCommand::VoutMax
            | PmbusCommand::VoutOvFaultLimit
            | PmbusCommand::VoutUvFaultLimit
            | PmbusCommand::StatusWord
            | PmbusCommand::ReadVout
            | PmbusCommand::ReadIout
            | PmbusCommand::ReadTemperature1
            | PmbusCommand::ReadPout => Err(PmbusError::WrongTransactionWidth { code: cmd.code() }),
            PmbusCommand::ClearFaults => {
                Err(PmbusError::WrongTransactionWidth { code: cmd.code() })
            }
        }
    }

    fn write_byte(&mut self, cmd: PmbusCommand, value: u8) -> Result<(), PmbusError> {
        match cmd {
            PmbusCommand::Operation => {
                (self.operation, self.margin) = match value {
                    0x80 => (OperationState::On, MarginState::None),
                    0x98 => (OperationState::On, MarginState::Low),
                    0xA8 => (OperationState::On, MarginState::High),
                    0x00 => (OperationState::Off, MarginState::None),
                    _ => {
                        return Err(PmbusError::InvalidData {
                            code: cmd.code(),
                            value: u16::from(value),
                        })
                    }
                };
                self.refresh_protection();
                Ok(())
            }
            PmbusCommand::VoutMode => Err(PmbusError::InvalidData {
                code: cmd.code(),
                value: u16::from(value),
            }),
            _ => Err(PmbusError::WrongTransactionWidth { code: cmd.code() }),
        }
    }

    fn read_word(&mut self, cmd: PmbusCommand) -> Result<u16, PmbusError> {
        let encode_mv = |mv: Millivolts| {
            encode_linear16(mv.to_volts(), VOUT_MODE_EXPONENT)
                .expect("configured voltages encodable")
        };
        match cmd {
            PmbusCommand::VoutCommand => Ok(self.vout_command),
            PmbusCommand::VoutMax => Ok(encode_mv(self.limits.vout_max)),
            PmbusCommand::VoutOvFaultLimit => Ok(encode_mv(self.limits.ov_fault)),
            PmbusCommand::VoutUvFaultLimit => Ok(encode_mv(self.limits.uv_fault)),
            PmbusCommand::StatusWord => Ok(self.status()),
            PmbusCommand::ReadVout => Ok(encode_mv(self.output())),
            PmbusCommand::ReadIout => encode_linear11(self.iout.as_f64()),
            PmbusCommand::ReadPout => encode_linear11(self.pout.as_f64()),
            PmbusCommand::ReadTemperature1 => encode_linear11(self.temperature.as_f64()),
            PmbusCommand::Operation | PmbusCommand::VoutMode | PmbusCommand::ClearFaults => {
                Err(PmbusError::WrongTransactionWidth { code: cmd.code() })
            }
        }
    }

    fn write_word(&mut self, cmd: PmbusCommand, value: u16) -> Result<(), PmbusError> {
        match cmd {
            PmbusCommand::VoutCommand => {
                let target = decode_linear16(value, VOUT_MODE_EXPONENT).to_millivolts();
                if target > self.limits.vout_max {
                    return Err(PmbusError::InvalidData {
                        code: cmd.code(),
                        value,
                    });
                }
                self.vout_command = value;
                self.refresh_protection();
                Ok(())
            }
            PmbusCommand::VoutMax => {
                self.limits.vout_max = decode_linear16(value, VOUT_MODE_EXPONENT).to_millivolts();
                Ok(())
            }
            PmbusCommand::VoutOvFaultLimit => {
                self.limits.ov_fault = decode_linear16(value, VOUT_MODE_EXPONENT).to_millivolts();
                Ok(())
            }
            PmbusCommand::VoutUvFaultLimit => {
                self.limits.uv_fault = decode_linear16(value, VOUT_MODE_EXPONENT).to_millivolts();
                Ok(())
            }
            PmbusCommand::StatusWord
            | PmbusCommand::ReadVout
            | PmbusCommand::ReadIout
            | PmbusCommand::ReadTemperature1
            | PmbusCommand::ReadPout => Err(PmbusError::InvalidData {
                code: cmd.code(),
                value,
            }),
            PmbusCommand::Operation | PmbusCommand::VoutMode | PmbusCommand::ClearFaults => {
                Err(PmbusError::WrongTransactionWidth { code: cmd.code() })
            }
        }
    }

    fn send_command(&mut self, cmd: PmbusCommand) -> Result<(), PmbusError> {
        match cmd {
            PmbusCommand::ClearFaults => {
                self.status = 0;
                self.refresh_protection();
                Ok(())
            }
            _ => Err(PmbusError::WrongTransactionWidth { code: cmd.code() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmbus::HostInterface;

    #[test]
    fn starts_at_nominal() {
        let reg = Isl68301::vcc_hbm();
        assert_eq!(reg.output(), Millivolts(1200));
        assert_eq!(reg.operation_state(), OperationState::On);
        assert_eq!(reg.status(), 0);
    }

    #[test]
    fn host_sweep_down_in_10mv_steps() {
        let mut reg = Isl68301::vcc_hbm();
        let mut host = HostInterface::new(&mut reg);
        let mut v = Millivolts(1200);
        while v >= Millivolts(810) {
            host.set_vout(v).unwrap();
            assert_eq!(host.read_vout().unwrap(), v);
            v = v.saturating_sub(Millivolts(10));
        }
    }

    #[test]
    fn vout_max_enforced() {
        let mut reg = Isl68301::vcc_hbm();
        let mut host = HostInterface::new(&mut reg);
        let err = host.set_vout(Millivolts(1400)).unwrap_err();
        assert!(matches!(err, PmbusError::InvalidData { code: 0x21, .. }));
        // Set-point unchanged.
        assert_eq!(reg.output(), Millivolts(1200));
    }

    #[test]
    fn uv_fault_latches_and_clears() {
        let mut reg = Isl68301::vcc_hbm();
        let mut host = HostInterface::new(&mut reg);
        host.set_vout(Millivolts(550)).unwrap();
        assert_ne!(host.status_word().unwrap() & STATUS_VOUT_UV, 0);
        // Raising the voltage alone does not clear the latch …
        host.set_vout(Millivolts(1200)).unwrap();
        assert_ne!(host.status_word().unwrap() & STATUS_VOUT_UV, 0);
        // … CLEAR_FAULTS does.
        host.clear_faults().unwrap();
        assert_eq!(host.status_word().unwrap() & STATUS_VOUT_UV, 0);
    }

    #[test]
    fn operation_off_kills_output() {
        let mut reg = Isl68301::vcc_hbm();
        reg.write_byte(PmbusCommand::Operation, 0x00).unwrap();
        assert_eq!(reg.output(), Millivolts::ZERO);
        assert_ne!(reg.status() & STATUS_OFF, 0);
        reg.write_byte(PmbusCommand::Operation, 0x80).unwrap();
        assert_eq!(reg.output(), Millivolts(1200));
        assert_eq!(reg.status() & STATUS_OFF, 0);
    }

    #[test]
    fn invalid_operation_value_rejected() {
        let mut reg = Isl68301::vcc_hbm();
        assert!(matches!(
            reg.write_byte(PmbusCommand::Operation, 0x42).unwrap_err(),
            PmbusError::InvalidData {
                code: 0x01,
                value: 0x42
            }
        ));
    }

    #[test]
    fn telemetry_round_trips_through_linear11() {
        let mut reg = Isl68301::vcc_hbm();
        reg.update_telemetry(Amperes(4.0), Watts(4.8), Celsius(35.0));
        let mut host = HostInterface::new(&mut reg);
        // Dyadic values survive exactly; others within LINEAR11 resolution.
        assert_eq!(host.read_iout().unwrap(), Amperes(4.0));
        let pout = host.read_pout().unwrap();
        assert!((pout.as_f64() - 4.8).abs() / 4.8 <= 1.0 / 1024.0, "{pout}");
        assert_eq!(host.read_temperature().unwrap(), Celsius(35.0));
    }

    #[test]
    fn transaction_width_enforced() {
        let mut reg = Isl68301::vcc_hbm();
        assert!(matches!(
            reg.read_byte(PmbusCommand::ReadVout).unwrap_err(),
            PmbusError::WrongTransactionWidth { code: 0x8B }
        ));
        assert!(matches!(
            reg.read_word(PmbusCommand::Operation).unwrap_err(),
            PmbusError::WrongTransactionWidth { code: 0x01 }
        ));
        assert!(matches!(
            reg.send_command(PmbusCommand::ReadVout).unwrap_err(),
            PmbusError::WrongTransactionWidth { code: 0x8B }
        ));
        assert!(reg.write_word(PmbusCommand::ReadVout, 0).is_err());
    }

    #[test]
    fn limit_registers_writable() {
        let mut reg = Isl68301::vcc_hbm();
        let word = encode_linear16(Millivolts(1250).to_volts(), VOUT_MODE_EXPONENT).unwrap();
        reg.write_word(PmbusCommand::VoutMax, word).unwrap();
        assert_eq!(reg.limits().vout_max, Millivolts(1250));
        assert_eq!(reg.read_word(PmbusCommand::VoutMax).unwrap(), word);
    }

    #[test]
    #[should_panic(expected = "above VOUT_MAX")]
    fn initial_above_max_rejected() {
        let _ = Isl68301::with_limits(Millivolts(1400), RegulatorLimits::vcc_hbm());
    }

    #[test]
    fn margin_modes() {
        let mut reg = Isl68301::vcc_hbm();
        assert_eq!(reg.margin_state(), MarginState::None);
        reg.write_byte(PmbusCommand::Operation, 0x98).unwrap();
        assert_eq!(reg.margin_state(), MarginState::Low);
        assert_eq!(reg.output(), Millivolts(1140)); // −5 %
        assert_eq!(reg.read_byte(PmbusCommand::Operation).unwrap(), 0x98);

        reg.write_byte(PmbusCommand::Operation, 0xA8).unwrap();
        assert_eq!(reg.output(), Millivolts(1260)); // +5 %
        assert_eq!(reg.read_byte(PmbusCommand::Operation).unwrap(), 0xA8);

        reg.write_byte(PmbusCommand::Operation, 0x80).unwrap();
        assert_eq!(reg.output(), Millivolts(1200));
    }

    #[test]
    fn margin_high_can_trip_overvoltage_protection() {
        // 1.26 V margined-high output is below the 1.30 V OV limit: fine.
        let mut reg = Isl68301::vcc_hbm();
        reg.write_byte(PmbusCommand::Operation, 0xA8).unwrap();
        assert_eq!(reg.status() & STATUS_VOUT_OV, 0);

        // A 1.25 V set-point margined +5 % (1.3125 V) crosses the limit.
        let mut reg = Isl68301::vcc_hbm();
        let word = encode_linear16(Millivolts(1250).to_volts(), VOUT_MODE_EXPONENT).unwrap();
        reg.write_word(PmbusCommand::VoutCommand, word).unwrap();
        reg.write_byte(PmbusCommand::Operation, 0xA8).unwrap();
        assert_ne!(
            reg.status() & STATUS_VOUT_OV,
            0,
            "1.3125 V trips the 1.30 V OV limit"
        );
    }

    #[test]
    fn load_line_droop_sags_under_load() {
        let mut reg = Isl68301::vcc_hbm();
        reg.set_load_line(Ohms(0.004));
        assert_eq!(reg.load_line(), Ohms(0.004));
        // No load: no droop.
        assert_eq!(reg.output(), Millivolts(1200));
        // 5 A load: 20 mV droop.
        reg.update_telemetry(Amperes(5.0), Watts(6.0), Celsius::STUDY_AMBIENT);
        assert_eq!(reg.output(), Millivolts(1180));
        // The default regulator stays ideal.
        let mut ideal = Isl68301::vcc_hbm();
        ideal.update_telemetry(Amperes(5.0), Watts(6.0), Celsius::STUDY_AMBIENT);
        assert_eq!(ideal.output(), Millivolts(1200));
    }
}
