//! The traffic generator's macro-command language.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::pattern::DataPattern;

/// One macro command of a traffic generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MacroCommand {
    /// Write the pattern sequentially over a word range.
    Write {
        /// Start word offset (inclusive).
        start: u64,
        /// Number of words.
        count: u64,
        /// Pattern to write.
        pattern: DataPattern,
    },
    /// Read a word range sequentially and compare each word with the
    /// pattern, recording 1→0 and 0→1 flips.
    ReadCheck {
        /// Start word offset (inclusive).
        start: u64,
        /// Number of words.
        count: u64,
        /// Pattern the range is expected to hold.
        pattern: DataPattern,
    },
    /// Read a word range sequentially without checking (bandwidth traffic).
    Read {
        /// Start word offset (inclusive).
        start: u64,
        /// Number of words.
        count: u64,
    },
    /// Read `count` words starting at `start` with a fixed stride
    /// (row-crossing traffic for the access-timing experiments).
    ReadStrided {
        /// Start word offset (inclusive).
        start: u64,
        /// Number of words.
        count: u64,
        /// Stride between consecutive reads, in words.
        stride: u64,
    },
    /// Read `count` pseudo-random words within `[0, span)`, reproducibly
    /// derived from `seed` (pointer-chase-like traffic).
    ReadRandom {
        /// Stream seed.
        seed: u64,
        /// Number of words.
        count: u64,
        /// Exclusive upper bound of the offsets.
        span: u64,
    },
}

impl MacroCommand {
    /// The word offset the `i`-th access of a random-read command touches.
    #[must_use]
    pub fn random_offset(seed: u64, span: u64, i: u64) -> u64 {
        // xorshift64* keyed by (seed, i); span must be non-zero.
        let mut x = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5BF0_3635;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) % span.max(1)
    }
}

/// An ordered list of macro commands executed by one traffic generator.
///
/// # Examples
///
/// ```
/// use hbm_traffic::{DataPattern, MacroProgram};
///
/// // The reliability tester's program: write the pattern, read it back.
/// let program = MacroProgram::write_then_check(0..8192, DataPattern::AllOnes);
/// assert_eq!(program.commands().len(), 2);
/// assert_eq!(program.words_touched(), 2 * 8192);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MacroProgram {
    commands: Vec<MacroCommand>,
}

impl MacroProgram {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        MacroProgram::default()
    }

    /// The study's reliability-test kernel: write `pattern` across `range`,
    /// then read it back checking every bit (Algorithm 1's inner loops).
    #[must_use]
    pub fn write_then_check(range: Range<u64>, pattern: DataPattern) -> Self {
        let (start, count) = (range.start, range.end.saturating_sub(range.start));
        MacroProgram {
            commands: vec![
                MacroCommand::Write {
                    start,
                    count,
                    pattern,
                },
                MacroCommand::ReadCheck {
                    start,
                    count,
                    pattern,
                },
            ],
        }
    }

    /// The sampled variant of [`MacroProgram::write_then_check`]: write
    /// `pattern` at each listed offset, then read every offset back checking
    /// each bit. Used by sampled sweeps whose offsets come from a
    /// per-work-item random stream; duplicate offsets are harmless (the same
    /// pattern word is rewritten and rechecked).
    #[must_use]
    pub fn write_then_check_at(offsets: &[u64], pattern: DataPattern) -> Self {
        let mut commands = Vec::with_capacity(2 * offsets.len());
        for &offset in offsets {
            commands.push(MacroCommand::Write {
                start: offset,
                count: 1,
                pattern,
            });
        }
        for &offset in offsets {
            commands.push(MacroCommand::ReadCheck {
                start: offset,
                count: 1,
                pattern,
            });
        }
        MacroProgram { commands }
    }

    /// A pure bandwidth workload: repeatedly stream reads over a range.
    #[must_use]
    pub fn streaming_reads(range: Range<u64>, repeats: u32) -> Self {
        let (start, count) = (range.start, range.end.saturating_sub(range.start));
        MacroProgram {
            commands: (0..repeats)
                .map(|_| MacroCommand::Read { start, count })
                .collect(),
        }
    }

    /// A strided workload: `count` reads separated by `stride` words (one
    /// access per row when the stride equals the row size).
    #[must_use]
    pub fn strided_reads(start: u64, count: u64, stride: u64) -> Self {
        MacroProgram {
            commands: vec![MacroCommand::ReadStrided {
                start,
                count,
                stride,
            }],
        }
    }

    /// A random-access workload: `count` reproducible pseudo-random reads
    /// within `[0, span)`.
    #[must_use]
    pub fn random_reads(seed: u64, count: u64, span: u64) -> Self {
        MacroProgram {
            commands: vec![MacroCommand::ReadRandom { seed, count, span }],
        }
    }

    /// Appends a command (builder style).
    #[must_use]
    pub fn then(mut self, command: MacroCommand) -> Self {
        self.commands.push(command);
        self
    }

    /// The commands in execution order.
    #[must_use]
    pub fn commands(&self) -> &[MacroCommand] {
        &self.commands
    }

    /// Total number of words the program touches (reads + writes), the
    /// quantity bandwidth accounting is based on.
    #[must_use]
    pub fn words_touched(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match *c {
                MacroCommand::Write { count, .. }
                | MacroCommand::ReadCheck { count, .. }
                | MacroCommand::Read { count, .. }
                | MacroCommand::ReadStrided { count, .. }
                | MacroCommand::ReadRandom { count, .. } => count,
            })
            .sum()
    }

    /// `true` if the program performs no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words_touched() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_check_structure() {
        let p = MacroProgram::write_then_check(10..20, DataPattern::AllZeros);
        match p.commands() {
            [MacroCommand::Write {
                start: 10,
                count: 10,
                pattern: DataPattern::AllZeros,
            }, MacroCommand::ReadCheck {
                start: 10,
                count: 10,
                pattern: DataPattern::AllZeros,
            }] => {}
            other => panic!("unexpected program: {other:?}"),
        }
    }

    #[test]
    fn streaming_reads_repeat() {
        let p = MacroProgram::streaming_reads(0..100, 5);
        assert_eq!(p.commands().len(), 5);
        assert_eq!(p.words_touched(), 500);
    }

    #[test]
    fn builder_appends() {
        let p = MacroProgram::new()
            .then(MacroCommand::Write {
                start: 0,
                count: 4,
                pattern: DataPattern::AllOnes,
            })
            .then(MacroCommand::Read { start: 0, count: 4 });
        assert_eq!(p.commands().len(), 2);
        assert_eq!(p.words_touched(), 8);
        assert!(!p.is_empty());
    }

    #[test]
    fn strided_and_random_builders() {
        let strided = MacroProgram::strided_reads(0, 100, 32);
        assert_eq!(strided.words_touched(), 100);
        assert!(matches!(
            strided.commands()[0],
            MacroCommand::ReadStrided { stride: 32, .. }
        ));

        let random = MacroProgram::random_reads(5, 64, 8192);
        assert_eq!(random.words_touched(), 64);
        // Random offsets are reproducible and within the span.
        for i in 0..64 {
            let a = MacroCommand::random_offset(5, 8192, i);
            assert_eq!(a, MacroCommand::random_offset(5, 8192, i));
            assert!(a < 8192);
        }
        // Different seeds give different sequences.
        let differs = (0..64).any(|i| {
            MacroCommand::random_offset(5, 8192, i) != MacroCommand::random_offset(6, 8192, i)
        });
        assert!(differs);
        // Zero span is safe (degenerates to offset 0).
        assert_eq!(MacroCommand::random_offset(1, 0, 3), 0);
    }

    #[test]
    fn empty_programs() {
        assert!(MacroProgram::new().is_empty());
        assert!(MacroProgram::write_then_check(5..5, DataPattern::AllOnes).is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = MacroProgram::write_then_check(10..0, DataPattern::AllOnes);
        assert!(reversed.is_empty());
    }
}
