//! Fleet-scale HBM undervolting characterization.
//!
//! The paper characterizes one board; this crate characterizes a
//! *population*. `N` simulated devices — each a seed-varied instance of
//! the process-variation model in `hbm-faults` — are swept through the
//! coupled-carry mask kernel by a work-stealing thread pool, and the
//! results land in a compact columnar binary artifact
//! ([`artifact::encode`] / [`FleetStore`]) that readers can seek without
//! parsing. On top sit population statistics ([`PopulationSummary`]), a
//! compressed parametric fault model per device ([`model::DeviceModel`])
//! that shrinks the artifact ~27× while keeping queries answerable, and a
//! long-lived typed serving surface ([`api::FleetRequest`] /
//! [`serve::FleetService`]) shared by every `hbmctl` fleet entry point.
//!
//! # Determinism
//!
//! Every [`DeviceRecord`] is a pure function of `(FleetConfig,
//! device_id)`: per-device seeds derive from the base seed through the
//! same counter-based hash discipline as `pc_stream`, workers only ever
//! partition the device-ID space, and the merge sorts by device ID.
//! Records, artifacts and population percentiles are therefore
//! bit-identical across worker counts and steal interleavings — the
//! property the fleet proptests pin.
//!
//! ```
//! use hbm_fleet::{FleetConfig, FleetStore};
//! use hbm_units::Millivolts;
//!
//! let cfg = FleetConfig {
//!     devices: 4,
//!     words_per_pc: 8,
//!     from: Millivolts(980),
//!     down_to: Millivolts(900),
//!     step: Millivolts(40),
//!     weak_reference: Millivolts(900),
//!     ..FleetConfig::default()
//! };
//! let report = hbm_fleet::sweep::run(&cfg).unwrap();
//! let store = FleetStore::from_bytes(hbm_fleet::artifact::encode(&cfg, &report.records)).unwrap();
//! let service = hbm_fleet::serve::FleetService::new(store);
//! let response = service.handle(&hbm_fleet::api::FleetRequest::Recommend {
//!     device_id: 2,
//!     target_rate: 1e-3,
//!     min_pcs: 16,
//! });
//! match response {
//!     hbm_fleet::api::FleetResponse::Recommendation(rec) => {
//!         assert!(rec.voltage_mv >= rec.crash_mv);
//!     }
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod artifact;
pub mod config;
pub mod model;
pub mod pipeline;
pub mod population;
pub mod query;
pub mod record;
pub mod serve;
pub mod sweep;

pub use api::{ApiError, FleetRequest, FleetResponse, API_VERSION};
pub use artifact::{
    ArtifactMeta, Column, FleetExport, FleetStore, ARTIFACT_MAGIC, ARTIFACT_VERSION,
};
pub use config::{DeviceSpec, FleetConfig, FleetError};
pub use model::{DeviceModel, FidelityReport, OPERATING_TARGET_RATE};
pub use pipeline::{serve_concurrent, LatencyStats, PipelineOptions, PipelineStats};
pub use population::{FleetCostModel, PopulationSummary};
pub use query::{FleetQuery, Recommendation};
pub use record::{DeviceRecord, CRASHED_KNOT, NO_VMIN};
pub use serve::{FleetService, ServeStats, DEFAULT_RESCAN_CACHE_BYTES};
pub use sweep::{characterize_device, FleetReport, FleetRunStats};
