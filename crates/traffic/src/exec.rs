//! Sharded execution of macro programs across worker threads.
//!
//! The sweep engine partitions a voltage point's workload into one job per
//! AXI port, each carrying its own disjoint [`MemoryPort`] access (a
//! per-pseudo-channel shard of the device). [`run_sharded`] executes those
//! jobs either sequentially or on `std::thread::scope` workers; because the
//! accesses are disjoint and every random quantity is keyed to the job, the
//! results are bit-identical for every worker count.

use std::thread;

use hbm_device::{DeviceError, PortId};

use crate::generator::{MemoryPort, TrafficGenerator};
use crate::program::MacroProgram;
use crate::stats::PortStats;

/// One unit of sharded work: a port, the program to run on it, and the
/// exclusive memory access to drive.
pub type ShardJob<'p, P> = (PortId, &'p MacroProgram, P);

/// Runs one program per job, splitting the jobs across up to `workers`
/// threads, and returns per-port statistics in job order.
///
/// `workers <= 1` runs the jobs sequentially on the calling thread (no
/// spawn); higher counts split the job list into contiguous chunks, one
/// scoped worker thread per chunk. Results are identical in both modes —
/// each job touches only its own access and gathers its own statistics, so
/// scheduling cannot influence the outcome.
///
/// # Errors
///
/// Returns the first device error in job order. Under parallel execution
/// jobs *after* the failing one (in other chunks) may still have run against
/// their shards before the error is reported; callers treat shard errors as
/// fatal for the whole batch, so the partial traffic is never observed.
pub fn run_sharded<P: MemoryPort + Send>(
    jobs: Vec<ShardJob<'_, P>>,
    workers: usize,
) -> Result<Vec<(PortId, PortStats)>, DeviceError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let workers = workers.clamp(1, jobs.len());
    if workers == 1 {
        let mut results = Vec::with_capacity(jobs.len());
        for (port, program, mut access) in jobs {
            let stats = TrafficGenerator::new(port).run(program, &mut access)?;
            results.push((port, stats));
        }
        return Ok(results);
    }

    // Deterministic contiguous chunking: the first `extra` workers take one
    // job more, so concatenating chunk results preserves job order.
    let total = jobs.len();
    let base = total / workers;
    let extra = total % workers;
    let mut rest = jobs;
    let mut chunks = Vec::with_capacity(workers);
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let tail = rest.split_off(take);
        chunks.push(std::mem::replace(&mut rest, tail));
    }

    let outcomes: Vec<Vec<(PortId, Result<PortStats, DeviceError>)>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len());
                    for (port, program, mut access) in chunk {
                        let result = TrafficGenerator::new(port).run(program, &mut access);
                        let failed = result.is_err();
                        out.push((port, result));
                        if failed {
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard worker panicked"))
            .collect()
    });

    let mut results = Vec::with_capacity(total);
    for (port, result) in outcomes.into_iter().flatten() {
        results.push((port, result?));
    }
    Ok(results)
}

/// Merges per-shard results into canonical per-port statistics: sorted by
/// port id, with duplicate entries for the same port folded together.
///
/// Folding uses [`PortStats::merge`], which is plain counter addition, so
/// the merge is associative and commutative — any shard-to-worker assignment
/// produces the same merged result.
#[must_use]
pub fn merge_shard_results(mut results: Vec<(PortId, PortStats)>) -> Vec<(PortId, PortStats)> {
    results.sort_by_key(|(port, _)| port.as_u8());
    let mut merged: Vec<(PortId, PortStats)> = Vec::with_capacity(results.len());
    for (port, stats) in results {
        match merged.last_mut() {
            Some((last, acc)) if *last == port => acc.merge(&stats),
            _ => merged.push((port, stats)),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DataPattern;
    use hbm_device::{HbmDevice, HbmGeometry, PcShard, Word256, WordOffset};

    /// Test adapter: a bare shard as a [`MemoryPort`] (no fault injection).
    struct ShardAccess<'a>(PcShard<'a>);

    impl MemoryPort for ShardAccess<'_> {
        fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
            self.0.write(offset, word)
        }

        fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
            self.0.read(offset)
        }
    }

    fn run_with_workers(workers: usize) -> Vec<(PortId, PortStats)> {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        let program = MacroProgram::write_then_check(0..64, DataPattern::Checkerboard);
        let jobs: Vec<ShardJob<'_, ShardAccess<'_>>> = device
            .pc_shards()
            .unwrap()
            .into_iter()
            .map(|shard| (shard.port(), &program, ShardAccess(shard)))
            .collect();
        run_sharded(jobs, workers).unwrap()
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let sequential = run_with_workers(1);
        assert_eq!(sequential.len(), 32);
        for workers in [2, 4, 8, 32, 64] {
            assert_eq!(sequential, run_with_workers(workers), "{workers} workers");
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let jobs: Vec<ShardJob<'_, ShardAccess<'_>>> = Vec::new();
        assert_eq!(run_sharded(jobs, 4).unwrap(), Vec::new());
    }

    #[test]
    fn error_on_any_shard_fails_the_batch() {
        let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
        device
            .ports_mut()
            .set_enabled(PortId::new(11).unwrap(), false);
        let program = MacroProgram::write_then_check(0..4, DataPattern::AllOnes);
        for workers in [1, 4] {
            let jobs: Vec<ShardJob<'_, ShardAccess<'_>>> = device
                .pc_shards()
                .unwrap()
                .into_iter()
                .map(|shard| (shard.port(), &program, ShardAccess(shard)))
                .collect();
            assert_eq!(
                run_sharded(jobs, workers).unwrap_err(),
                DeviceError::PortDisabled { index: 11 },
                "{workers} workers"
            );
        }
    }

    #[test]
    fn merge_sorts_by_port_and_folds_duplicates() {
        let stats = |flips: u64| PortStats {
            words_written: 1,
            words_read: 1,
            faulty_words: u64::from(flips > 0),
            flips_1to0: flips,
            flips_0to1: 2 * flips,
        };
        let port = |i: u8| PortId::new(i).unwrap();
        let merged = merge_shard_results(vec![
            (port(9), stats(1)),
            (port(2), stats(2)),
            (port(9), stats(3)),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].0, port(2));
        assert_eq!(merged[1].0, port(9));
        assert_eq!(merged[1].1.flips_1to0, 4);
        assert_eq!(merged[1].1.flips_0to1, 8);
        assert_eq!(merged[1].1.words_written, 2);
    }

    #[test]
    fn merge_is_independent_of_shard_assignment() {
        let port = |i: u8| PortId::new(i).unwrap();
        let stats = |n: u64| PortStats {
            words_written: n,
            words_read: n,
            faulty_words: n / 2,
            flips_1to0: 3 * n,
            flips_0to1: 5 * n,
        };
        // The same per-shard contributions split differently across workers.
        let assignment_a = vec![
            (port(0), stats(1)),
            (port(1), stats(2)),
            (port(0), stats(4)),
            (port(1), stats(8)),
        ];
        let mut assignment_b = assignment_a.clone();
        assignment_b.reverse();
        assert_eq!(
            merge_shard_results(assignment_a),
            merge_shard_results(assignment_b)
        );
    }
}
