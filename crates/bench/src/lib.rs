//! Figure-regeneration library: one function per figure of the paper,
//! shared by the `fig*` binaries and the Criterion benchmarks.
//!
//! Every function takes a deterministic device seed and returns both the
//! structured data and a rendered table whose rows/series correspond to
//! what the paper plots. Absolute numbers come from the simulation substrate
//! (see `DESIGN.md` for the substitution table); the *shapes* — who wins,
//! by what factor, where the curves bend — are the reproduction targets
//! recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hbm_faults::{FaultMap, FaultModelParams, RatePredictor, VariationModel};
use hbm_power::HbmPowerModel;
use hbm_traffic::DataPattern;
use hbm_undervolt::characterization::{
    stack_fraction_series, variation_summary, PcFaultTable, StackFractionPoint, VariationSummary,
};
use hbm_undervolt::report::{compute_headlines, headline_metrics, HeadlineMetrics, Render};
use hbm_undervolt::{
    AcfTable, DynExperiment, Experiment, ExperimentError, GuardbandFinder, Platform, PowerSweep,
    PowerSweepReport, TradeOffAnalysis, UsablePcCurve, VoltageSweep,
};
use hbm_units::{Millivolts, Ratio, Volts};

/// The default device seed used by all figure binaries (the "specimen"
/// every table in `EXPERIMENTS.md` was recorded from).
pub const DEFAULT_SEED: u64 = 7;

/// Builds the standard platform for a seed.
#[must_use]
pub fn platform(seed: u64) -> Platform {
    Platform::builder().seed(seed).build()
}

/// Fig. 2 — normalized HBM power vs supply voltage at 0/25/50/75/100 %
/// bandwidth utilization.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig2(seed: u64) -> Result<(PowerSweepReport, String), ExperimentError> {
    let mut platform = platform(seed);
    let report = PowerSweep::date21().run(&mut platform)?;
    let rendered = report.to_text();
    Ok((report, rendered))
}

/// Fig. 3 — normalized effective `α·C_L·f` vs supply voltage per
/// utilization.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig3(seed: u64) -> Result<(PowerSweepReport, String), ExperimentError> {
    let mut platform = platform(seed);
    let report = PowerSweep::date21().run(&mut platform)?;
    let rendered = AcfTable(&report).to_text();
    Ok((report, rendered))
}

/// Fig. 4 — fraction of faulty bits per stack vs supply voltage
/// (0.98 V down to 0.81 V).
///
/// # Errors
///
/// Propagates experiment errors (sweep construction).
pub fn fig4(seed: u64) -> Result<(Vec<StackFractionPoint>, String), ExperimentError> {
    let platform = platform(seed);
    let sweep = VoltageSweep::new(Millivolts(980), Millivolts(810), Millivolts(10))?;
    let series = stack_fraction_series(platform.full_scale_predictor(), sweep);
    let rendered = series.to_text();
    Ok((series, rendered))
}

/// Fig. 5 — percentage of faulty cells per AXI port (pseudo channel) per
/// voltage, one table per data pattern (all-1s → 1→0 flips; all-0s → 0→1).
///
/// # Errors
///
/// Propagates experiment errors (sweep construction).
pub fn fig5(seed: u64) -> Result<(Vec<PcFaultTable>, String), ExperimentError> {
    let platform = platform(seed);
    let sweep = VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10))?;
    let tables: Vec<PcFaultTable> = [DataPattern::AllOnes, DataPattern::AllZeros]
        .into_iter()
        .map(|pattern| {
            PcFaultTable::from_predictor(platform.full_scale_predictor(), sweep, pattern)
        })
        .collect();
    let rendered = tables
        .iter()
        .map(Render::to_text)
        .collect::<Vec<_>>()
        .join("\n");
    Ok((tables, rendered))
}

/// The tolerable fault rates Fig. 6 plots (0 %, 10⁻⁴ %, 10⁻² %, 1 %, 10 %,
/// 50 %).
#[must_use]
pub fn fig6_tolerances() -> Vec<Ratio> {
    vec![
        Ratio::ZERO,
        Ratio(1e-6),
        Ratio(1e-4),
        Ratio(0.01),
        Ratio(0.1),
        Ratio(0.5),
    ]
}

/// Fig. 6 — number of usable pseudo channels (of 32) vs supply voltage,
/// one series per tolerable fault rate.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig6(seed: u64) -> Result<(Vec<UsablePcCurve>, String), ExperimentError> {
    let platform = platform(seed);
    let map = FaultMap::from_predictor(
        platform.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let analysis = TradeOffAnalysis::new(map, HbmPowerModel::date21());
    let curves = analysis.usable_pc_curves(&fig6_tolerances());
    let rendered = curves.to_text();
    Ok((curves, rendered))
}

/// The §III headline numbers (guardband %, 1.5×, 2.3×, idle ⅓, −14 %
/// capacitance).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn headlines(seed: u64) -> Result<HeadlineMetrics, ExperimentError> {
    let mut p = platform(seed);
    let guardband = GuardbandFinder::new().run(&mut p)?;
    let power = PowerSweep::date21().run(&mut p)?;
    headline_metrics(&power, &guardband)
}

/// The Fig. 3 report: a power sweep viewed as the extracted `α·C_L·f`
/// table, owned so it can travel behind `Box<dyn Render>`.
pub struct AcfReport(pub PowerSweepReport);

impl Render for AcfReport {
    fn to_text(&self) -> String {
        AcfTable(&self.0).to_text()
    }

    fn to_csv(&self) -> String {
        AcfTable(&self.0).to_csv()
    }
}

/// Fig. 3 as a named experiment: runs the power sweep and reports the
/// capacitance view.
pub struct Fig3Acf;

impl Experiment for Fig3Acf {
    type Report = AcfReport;

    fn name(&self) -> &str {
        "fig3-acf"
    }

    fn run(&self, platform: &mut Platform) -> Result<AcfReport, ExperimentError> {
        PowerSweep::date21().run(platform).map(AcfReport)
    }
}

/// Fig. 4 as a named experiment: the per-stack faulty-fraction series from
/// the platform's full-scale predictor.
pub struct Fig4Series;

impl Experiment for Fig4Series {
    type Report = Vec<StackFractionPoint>;

    fn name(&self) -> &str {
        "fig4-stack-fractions"
    }

    fn run(&self, platform: &mut Platform) -> Result<Self::Report, ExperimentError> {
        let sweep = VoltageSweep::new(Millivolts(980), Millivolts(810), Millivolts(10))?;
        Ok(stack_fraction_series(
            platform.full_scale_predictor(),
            sweep,
        ))
    }
}

/// Fig. 5 as a named experiment: the per-PC fault table for one pattern.
pub struct Fig5Table {
    /// The background pattern (all-1s → 1→0 flips; all-0s → 0→1).
    pub pattern: DataPattern,
}

impl Experiment for Fig5Table {
    type Report = PcFaultTable;

    fn name(&self) -> &str {
        "fig5-pc-table"
    }

    fn run(&self, platform: &mut Platform) -> Result<PcFaultTable, ExperimentError> {
        let sweep = VoltageSweep::new(Millivolts(970), Millivolts(840), Millivolts(10))?;
        Ok(PcFaultTable::from_predictor(
            platform.full_scale_predictor(),
            sweep,
            self.pattern,
        ))
    }
}

/// The headline metrics as a named experiment (guardband + power sweep).
pub struct Headlines;

impl Experiment for Headlines {
    type Report = HeadlineMetrics;

    fn name(&self) -> &str {
        "headlines"
    }

    fn run(&self, platform: &mut Platform) -> Result<HeadlineMetrics, ExperimentError> {
        compute_headlines(platform)
    }
}

/// The Fig. 6 trade-off analysis over the platform's full-scale fault map.
#[must_use]
pub fn fig6_analysis(platform: &Platform) -> TradeOffAnalysis {
    let map = FaultMap::from_predictor(
        platform.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    TradeOffAnalysis::new(map, HbmPowerModel::date21())
}

/// Every figure of the paper as one boxed campaign, in paper order — the
/// `all_figures` binary is a single loop over this list.
#[must_use]
pub fn figure_experiments(platform: &Platform) -> Vec<(&'static str, Box<dyn DynExperiment>)> {
    vec![
        (
            "Fig. 2: normalized power vs voltage",
            Box::new(PowerSweep::date21()),
        ),
        ("Fig. 3: normalized a*C_L*f vs voltage", Box::new(Fig3Acf)),
        ("Fig. 4: faulty fraction per stack", Box::new(Fig4Series)),
        (
            "Fig. 5: faulty cells per PC (all-1s)",
            Box::new(Fig5Table {
                pattern: DataPattern::AllOnes,
            }),
        ),
        (
            "Fig. 5: faulty cells per PC (all-0s)",
            Box::new(Fig5Table {
                pattern: DataPattern::AllZeros,
            }),
        ),
        (
            "Fig. 6: usable PCs vs tolerable fault rate",
            Box::new(fig6_analysis(platform)),
        ),
        ("Headline metrics", Box::new(Headlines)),
    ]
}

/// The §III-B variation summary (onset voltages, polarity ratio, stack
/// ratio).
#[must_use]
pub fn characterization(seed: u64) -> VariationSummary {
    let p = platform(seed);
    variation_summary(p.full_scale_predictor())
}

/// Ablation: spatial clustering. Returns the fraction of a pseudo
/// channel's expected faults that reside in its weakest 5 % of row regions,
/// `(with clustering, without)`. The paper observes that "most faults are
/// clustered together in small regions"; with the clustering term enabled
/// the top regions concentrate the bulk of the faults, without it the
/// share collapses towards the uniform 5 %.
#[must_use]
pub fn ablation_clustering(seed: u64, voltage: Millivolts) -> (f64, f64) {
    let with = FaultModelParams::date21();
    let mut without_var = VariationModel::date21();
    without_var.weak_region_probability = 0.0;
    without_var.normal_region_relief_volts = 0.0;
    let without = FaultModelParams::date21().with_variation(without_var);
    (
        weak_region_fault_share(&with, seed, voltage),
        weak_region_fault_share(&without, seed, voltage),
    )
}

/// Expected fault share of the weakest 5 % of regions of PC0.
fn weak_region_fault_share(params: &FaultModelParams, seed: u64, voltage: Millivolts) -> f64 {
    use hbm_device::{BankId, HbmGeometry, PcIndex, RowId};
    use hbm_faults::ShiftTable;

    let geometry = HbmGeometry::vcu128();
    let pc = PcIndex::new(0).expect("PC0 valid");
    let table = ShiftTable::new(&params.variation, seed, geometry);
    let pc_shift = table.pc_shift_volts(pc);
    let v = voltage.to_volts();

    let mut rates = Vec::new();
    let regions_per_bank = geometry.rows_per_bank() / params.variation.region_rows.max(1);
    for bank in 0..geometry.banks_per_pc() {
        let bank_id = BankId(bank);
        let bank_shift = params.variation.bank_shift_volts(seed, pc, bank_id);
        for region in 0..regions_per_bank {
            let row = RowId(region * params.variation.region_rows.max(1));
            let shift =
                pc_shift + bank_shift + params.variation.region_shift_volts(seed, pc, bank_id, row);
            let rate = params.stuck0_share
                * params.class_probability(&params.curve_stuck0, v, Volts(shift))
                + params.stuck1_share()
                    * params.class_probability(&params.curve_stuck1, v, Volts(shift));
            rates.push(rate);
        }
    }
    rates.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = rates.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let top = rates.len().div_ceil(20);
    rates[..top].iter().sum::<f64>() / total
}

/// Ablation: Fig. 6 zero-tolerance usable-PC count at 0.95 V as a function
/// of the per-PC variation σ. Returns `(sigma_volts, usable_pcs)` pairs.
#[must_use]
pub fn ablation_variation(seed: u64, sigmas_mv: &[u32]) -> Vec<(f64, usize)> {
    sigmas_mv
        .iter()
        .map(|&mv| {
            let mut var = VariationModel::date21();
            var.pc_sigma_volts = f64::from(mv) / 1000.0;
            let params = FaultModelParams::date21().with_variation(var);
            let predictor = RatePredictor::new(params, hbm_device::HbmGeometry::vcu128(), seed);
            let map = FaultMap::from_predictor(
                &predictor,
                Millivolts(980),
                Millivolts(900),
                Millivolts(10),
            );
            (
                f64::from(mv) / 1000.0,
                map.usable_pc_count(Millivolts(950), Ratio::ZERO),
            )
        })
        .collect()
}

/// Ablation: the polarity asymmetry — mean 0→1 / 1→0 ratio with the
/// calibrated curves versus the symmetric ablation.
#[must_use]
pub fn ablation_polarity(seed: u64) -> (f64, f64) {
    let asym = RatePredictor::new(
        FaultModelParams::date21(),
        hbm_device::HbmGeometry::vcu128(),
        seed,
    );
    let sym = RatePredictor::new(
        FaultModelParams::date21().without_polarity_asymmetry(),
        hbm_device::HbmGeometry::vcu128(),
        seed,
    );
    (polarity_ratio(&asym), polarity_ratio(&sym))
}

fn polarity_ratio(predictor: &RatePredictor) -> f64 {
    let summary = variation_summary(predictor);
    summary.polarity_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_series_has_paper_shape() {
        let (series, rendered) = fig4(DEFAULT_SEED).unwrap();
        assert_eq!(series.len(), 18);
        assert!(rendered.contains("HBM0"));
        assert_eq!(series[0].hbm0, Ratio::ZERO); // 0.98 V: guardband edge
        assert!(series.last().unwrap().hbm0.as_f64() > 0.99); // 0.81 V
    }

    #[test]
    fn fig6_examples_have_paper_shape() {
        let (curves, rendered) = fig6(DEFAULT_SEED).unwrap();
        assert_eq!(curves.len(), 6);
        assert!(rendered.contains("0.98"));
        // Zero tolerance at 0.95 V: some but not all PCs usable (paper: 7).
        let zero = &curves[0];
        let n = zero.at(Millivolts(950)).unwrap();
        assert!((1..32).contains(&n), "fault-free PCs at 0.95 V: {n}");
        // 50 % tolerance keeps all PCs deep into the collapse and most of
        // them even at 0.85 V.
        let loose = &curves[5];
        assert_eq!(loose.at(Millivolts(870)), Some(32));
        assert!(loose.at(Millivolts(850)).unwrap() >= 25);
    }

    #[test]
    fn ablations_move_the_right_direction() {
        let (with, without) = ablation_clustering(DEFAULT_SEED, Millivolts(930));
        assert!(
            with > 0.45 && without < 0.15,
            "clustering must concentrate faults: {with} vs {without}"
        );

        let (asym, sym) = ablation_polarity(DEFAULT_SEED);
        assert!(asym > 1.05, "calibrated ratio {asym}");
        assert!((sym - 1.0).abs() < 0.35, "symmetric ablation ratio {sym}");
    }
}
