//! Vendored stand-in for `proptest`, scoped to what this workspace uses.
//!
//! Provides the `proptest!` macro family, range/`any`/`prop_map`/tuple/
//! `collection::vec` strategies and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test RNG (seeded from the test path),
//! so failures are reproducible run to run. Shrinking is not implemented:
//! a failing case panics with the rendered assertion message.

pub mod strategy;
pub mod test_runner;

/// Generated-value containers, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound of the permitted lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias of the crate root so `prop::collection::vec` resolves.
    pub use crate as prop;
}

/// Declares deterministic property tests over strategy-bound inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let target = config.cases;
            let mut accepted: u32 = 0;
            let mut attempt: u32 = 0;
            let max_attempts = target.saturating_mul(16).max(target);
            while accepted < target && attempt < max_attempts {
                attempt += 1;
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut proptest_rng,
                    );
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        ::std::panic!(
                            "proptest {} failed on case {}: {}",
                            stringify!($name),
                            attempt,
                            message
                        );
                    }
                }
            }
            ::std::assert!(
                accepted >= target.min(1),
                "proptest {}: every generated case was rejected",
                stringify!($name)
            );
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), left
        );
    }};
}

/// Rejects the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
