//! Criterion bench for the Fig. 2 pipeline: the full power sweep
//! (36 voltages × 5 utilization steps) against the simulated platform.

use criterion::{criterion_group, criterion_main, Criterion};
use hbm_undervolt::{Platform, PowerSweep};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_power_sweep");
    group.sample_size(10);
    group.bench_function("date21_full_sweep", |b| {
        b.iter(|| {
            let mut platform = Platform::builder().seed(7).build();
            PowerSweep::date21()
                .run(&mut platform)
                .expect("power sweep")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
