//! A closed-loop undervolting governor.
//!
//! The paper's user-level implication (§III-C) is that applications can
//! pick an operating voltage from the fault map. This extension closes the
//! loop at run time instead: the governor steps the supply down while a
//! *canary* probe (a write/read-back pass over a small region of every
//! pseudo channel) stays clean, then backs off one safety margin — the
//! standard canary-based voltage-scaling pattern from the undervolting
//! literature, implemented against this workspace's platform.
//!
//! # Workload-aware descent
//!
//! Bit flips are not the only thing undervolting costs: below the timing
//! knee the stretched tRCD/tCL inflate access latency and shave delivered
//! bandwidth (see [`TimingStretchModel`](hbm_device::TimingStretchModel)),
//! *before* the first flip appears. The governor therefore accepts a
//! [`WorkloadMode`] plus optional timing constraints — a latency budget in
//! nanoseconds and/or a delivered-bandwidth target in GB/s — and treats a
//! constraint violation exactly like a canary trip. A latency-sensitive
//! workload with a tight budget settles at a *higher* voltage than a
//! throughput workload that only cares about flips, which is the
//! voltage–latency–reliability trade-off in closed-loop form.

use hbm_device::AccessPattern;
use hbm_traffic::{DataPattern, MacroProgram, TrafficGenerator};
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::telemetry::Telemetry;

/// The workload class a governor descent optimizes for: it selects the
/// access pattern whose latency and delivered bandwidth the timing
/// constraints are evaluated against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadMode {
    /// Streaming workloads: sequential access, row-hit latency, bandwidth
    /// dominated by refresh overhead. The default.
    #[default]
    Throughput,
    /// Latency-sensitive workloads: random single-word access paying the
    /// full activate-plus-CAS path on every request.
    Latency,
}

impl WorkloadMode {
    /// The access pattern this mode's constraints are evaluated under.
    #[must_use]
    pub fn pattern(self) -> AccessPattern {
        match self {
            WorkloadMode::Throughput => AccessPattern::SequentialStream,
            WorkloadMode::Latency => AccessPattern::RandomWord,
        }
    }

    /// The CLI token (`"throughput"` / `"latency"`).
    #[must_use]
    pub fn as_token(self) -> &'static str {
        match self {
            WorkloadMode::Throughput => "throughput",
            WorkloadMode::Latency => "latency",
        }
    }

    /// Parses a CLI token.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Self> {
        match token {
            "throughput" => Some(WorkloadMode::Throughput),
            "latency" => Some(WorkloadMode::Latency),
            _ => None,
        }
    }
}

/// Why a descent stopped before its floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripReason {
    /// The canary write/read-back pass observed bit flips.
    BitFlips,
    /// The device crashed (should be prevented by the floor).
    Crash,
    /// Access latency under the workload pattern exceeded
    /// [`GovernorConfig::latency_budget_ns`].
    LatencyBudget,
    /// Delivered bandwidth under the workload pattern fell below
    /// [`GovernorConfig::bandwidth_target_gbps`].
    BandwidthTarget,
}

impl TripReason {
    /// A stable lowercase token for reports and CSV cells.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TripReason::BitFlips => "bit-flips",
            TripReason::Crash => "crash",
            TripReason::LatencyBudget => "latency-budget",
            TripReason::BandwidthTarget => "bandwidth-target",
        }
    }
}

/// Configuration of the governor.
///
/// The four original knobs shape the descent itself (step, canary size,
/// floor, margin); the workload fields decide *what else* can trip it.
/// With both timing constraints `None` the governor behaves exactly like
/// the flip-only canary governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Voltage step per iteration. The last step is shortened so the floor
    /// itself is always probed even when `step` does not divide the span.
    pub step: Millivolts,
    /// Words probed per pseudo channel per canary pass.
    pub canary_words: u64,
    /// Hard floor the governor never crosses (stay above V_critical).
    pub floor: Millivolts,
    /// Safety margin added back on top of the last clean voltage. The
    /// settled point never exceeds the voltage the descent started from.
    pub margin: Millivolts,
    /// The workload whose access pattern the timing constraints below are
    /// evaluated under.
    pub workload: WorkloadMode,
    /// Trip when one access under the workload pattern exceeds this many
    /// nanoseconds (`None` = latency-blind).
    pub latency_budget_ns: Option<f64>,
    /// Trip when delivered bandwidth under the workload pattern falls
    /// below this many GB/s (`None` = bandwidth-blind).
    pub bandwidth_target_gbps: Option<f64>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            step: Millivolts(10),
            canary_words: 512,
            floor: Millivolts(840),
            margin: Millivolts(10),
            workload: WorkloadMode::Throughput,
            latency_budget_ns: None,
            bandwidth_target_gbps: None,
        }
    }
}

/// The governor's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorOutcome {
    /// The operating voltage the governor settled on.
    pub settled: Millivolts,
    /// The lowest voltage that satisfied every constraint (clean canary,
    /// latency budget, bandwidth target).
    pub lowest_clean: Millivolts,
    /// The first voltage that violated a constraint, if the descent got
    /// that far.
    pub tripped_at: Option<Millivolts>,
    /// Which constraint stopped the descent (`None` = floor reached).
    pub trip_reason: Option<TripReason>,
    /// Total canary bit flips observed during the descent.
    pub canary_flips: u64,
    /// Delivered bandwidth at the settled voltage under the workload
    /// pattern, in GB/s.
    pub delivered_gbps: f64,
    /// Access latency at the settled voltage under the workload pattern,
    /// in nanoseconds.
    pub access_latency_ns: f64,
}

/// Closed-loop undervolting: descend until the canary trips or a timing
/// constraint is violated, back off by the margin, and leave the platform
/// at the settled voltage.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Platform, UndervoltGovernor};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let outcome = UndervoltGovernor::default().run(&mut platform)?;
/// // Settles safely below nominal but above the crash floor.
/// assert!(outcome.settled < Millivolts(1200));
/// assert!(outcome.settled >= Millivolts(840));
/// assert_eq!(platform.voltage(), outcome.settled);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UndervoltGovernor {
    config: GovernorConfig,
}

impl UndervoltGovernor {
    /// Creates a governor with an explicit configuration.
    #[must_use]
    pub fn new(config: GovernorConfig) -> Self {
        UndervoltGovernor { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> GovernorConfig {
        self.config
    }

    /// Runs the descent from the platform's present voltage. On return the
    /// platform operates at [`GovernorOutcome::settled`].
    ///
    /// # Errors
    ///
    /// Propagates PMBus/device errors from the probes; a canary trip is the
    /// expected terminal condition, not an error.
    pub fn run(&self, platform: &mut Platform) -> Result<GovernorOutcome, ExperimentError> {
        self.run_observed(platform, Telemetry::disabled())
    }

    /// [`run`](Self::run) with telemetry: canary passes and trips are
    /// folded into the hub's [`Metrics`](crate::telemetry::Metrics)
    /// registry (`canary_passes`, `governor_flip_trips`,
    /// `governor_timing_trips`).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_observed(
        &self,
        platform: &mut Platform,
        telemetry: &Telemetry,
    ) -> Result<GovernorOutcome, ExperimentError> {
        let start = platform.voltage();
        let pattern = self.config.workload.pattern();
        let mut lowest_clean = start;
        let mut tripped_at = None;
        let mut trip_reason = None;
        let mut canary_flips = 0u64;

        let mut v = start;
        while v > self.config.floor {
            // Shorten the last step so the floor itself is probed even when
            // the step does not divide `start − floor`.
            let next = v.saturating_sub(self.config.step).max(self.config.floor);
            platform.set_voltage(next)?;
            if platform.is_crashed() {
                // Defensive: floor should prevent this, but recover anyway.
                platform.power_cycle(lowest_clean)?;
                tripped_at = Some(next);
                trip_reason = Some(TripReason::Crash);
                break;
            }
            // Timing constraints are pure functions of the rail — check
            // them before paying for a canary pass over every port.
            if let Some(budget) = self.config.latency_budget_ns {
                if platform.access_latency_ns(pattern) > budget {
                    tripped_at = Some(next);
                    trip_reason = Some(TripReason::LatencyBudget);
                    break;
                }
            }
            if let Some(target) = self.config.bandwidth_target_gbps {
                if platform.delivered_bandwidth(pattern).as_f64() < target {
                    tripped_at = Some(next);
                    trip_reason = Some(TripReason::BandwidthTarget);
                    break;
                }
            }
            let flips = self.canary_pass(platform)?;
            telemetry.metrics().add_canary_passes(1);
            if flips > 0 {
                canary_flips += flips;
                tripped_at = Some(next);
                trip_reason = Some(TripReason::BitFlips);
                break;
            }
            lowest_clean = next;
            v = next;
        }
        match trip_reason {
            Some(TripReason::BitFlips) => telemetry.metrics().add_governor_flip_trips(1),
            Some(TripReason::LatencyBudget | TripReason::BandwidthTarget) => {
                telemetry.metrics().add_governor_timing_trips(1);
            }
            Some(TripReason::Crash) | None => {}
        }

        // Back off one margin, but never above the voltage the descent
        // started from — a first-step trip must not "settle" the platform
        // *above* its own starting point.
        let settled = (lowest_clean + self.config.margin).min(start);
        platform.set_voltage(settled)?;
        Ok(GovernorOutcome {
            settled,
            lowest_clean,
            tripped_at,
            trip_reason,
            canary_flips,
            delivered_gbps: platform.delivered_bandwidth(pattern).as_f64(),
            access_latency_ns: platform.access_latency_ns(pattern),
        })
    }

    /// One canary pass: both uniform patterns over the canary region of
    /// every enabled port. Returns total observed flips.
    fn canary_pass(&self, platform: &mut Platform) -> Result<u64, ExperimentError> {
        let ids: Vec<_> = platform.device().ports().enabled_ids().collect();
        let mut flips = 0u64;
        for pattern in [DataPattern::AllOnes, DataPattern::AllZeros] {
            let program = MacroProgram::write_then_check(0..self.config.canary_words, pattern);
            for &port in &ids {
                let mut tg = TrafficGenerator::new(port);
                let stats = tg
                    .run(&program, &mut platform.port(port))
                    .map_err(ExperimentError::from)?;
                flips += stats.total_flips();
            }
        }
        Ok(flips)
    }
}

/// One labelled configuration inside a [`GovernorScenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorVariant {
    /// The scenario label ("throughput", "latency", …).
    pub label: String,
    /// The governor configuration this variant descends with.
    pub config: GovernorConfig,
}

/// An experiment that runs several governor configurations from the same
/// starting state and reports where each settles — the closed-loop view
/// of the voltage–latency–reliability trade-off. Each variant starts from
/// a power cycle at the platform's initial voltage, so the rows are
/// mutually independent and deterministic in `(seed, configs)`.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Experiment, GovernorConfig, GovernorScenario, Platform};
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let scenario = GovernorScenario::latency_vs_throughput(GovernorConfig::default(), 33.0);
/// let report = scenario.run(&mut platform)?;
/// // The latency-budgeted descent stops above the throughput one.
/// assert!(report.rows[1].outcome.settled > report.rows[0].outcome.settled);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GovernorScenario {
    variants: Vec<GovernorVariant>,
}

impl GovernorScenario {
    /// An empty scenario; add variants with
    /// [`with_variant`](Self::with_variant).
    #[must_use]
    pub fn new() -> Self {
        GovernorScenario::default()
    }

    /// Builder-style variant addition.
    #[must_use]
    pub fn with_variant(mut self, label: impl Into<String>, config: GovernorConfig) -> Self {
        self.variants.push(GovernorVariant {
            label: label.into(),
            config,
        });
        self
    }

    /// The canonical two-row scenario: a flip-only throughput descent next
    /// to a latency descent with a budget of `latency_budget_ns`, both
    /// sharing `base`'s step/floor/margin/canary knobs.
    #[must_use]
    pub fn latency_vs_throughput(base: GovernorConfig, latency_budget_ns: f64) -> Self {
        GovernorScenario::new()
            .with_variant(
                "throughput",
                GovernorConfig {
                    workload: WorkloadMode::Throughput,
                    latency_budget_ns: None,
                    ..base
                },
            )
            .with_variant(
                "latency",
                GovernorConfig {
                    workload: WorkloadMode::Latency,
                    latency_budget_ns: Some(latency_budget_ns),
                    ..base
                },
            )
    }

    /// The configured variants.
    #[must_use]
    pub fn variants(&self) -> &[GovernorVariant] {
        &self.variants
    }

    /// Runs every variant, each from a fresh power cycle at the platform's
    /// starting voltage, folding canary/trip counters into `telemetry`.
    /// On return the platform sits at the *last* variant's settled point.
    ///
    /// # Errors
    ///
    /// A configuration error for an empty scenario; otherwise the same
    /// errors as [`UndervoltGovernor::run`].
    pub fn run_observed(
        &self,
        platform: &mut Platform,
        telemetry: &Telemetry,
    ) -> Result<GovernorScenarioReport, ExperimentError> {
        if self.variants.is_empty() {
            return Err(ExperimentError::config(
                "governor scenario needs at least one variant",
            ));
        }
        let start = platform.voltage();
        let mut rows = Vec::with_capacity(self.variants.len());
        for variant in &self.variants {
            platform.power_cycle(start)?;
            let outcome =
                UndervoltGovernor::new(variant.config).run_observed(platform, telemetry)?;
            rows.push(GovernorScenarioRow {
                label: variant.label.clone(),
                workload: variant.config.workload,
                saving_factor: outcome_saving(platform, &outcome),
                outcome,
            });
        }
        Ok(GovernorScenarioReport { rows })
    }

    /// [`run_observed`](Self::run_observed) without telemetry.
    ///
    /// # Errors
    ///
    /// See [`run_observed`](Self::run_observed).
    pub fn run(&self, platform: &mut Platform) -> Result<GovernorScenarioReport, ExperimentError> {
        self.run_observed(platform, Telemetry::disabled())
    }
}

/// One variant's result inside a [`GovernorScenarioReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorScenarioRow {
    /// The variant's label.
    pub label: String,
    /// The workload mode the variant descended under.
    pub workload: WorkloadMode,
    /// Where the descent ended.
    pub outcome: GovernorOutcome,
    /// Estimated full-utilization power saving at the settled point.
    pub saving_factor: f64,
}

/// The report of a [`GovernorScenario`]: one row per variant, in
/// configuration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorScenarioReport {
    /// Per-variant results.
    pub rows: Vec<GovernorScenarioRow>,
}

/// Estimated power saving of the governor's outcome at full utilization.
#[must_use]
pub fn outcome_saving(platform: &Platform, outcome: &GovernorOutcome) -> f64 {
    platform.power_model().saving_factor(
        outcome.settled,
        Ratio::ONE,
        platform.predictor().device_rate(outcome.settled),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Ohms;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn governor_settles_between_onset_and_floor() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        // It must find real savings (well below nominal) …
        assert!(outcome.settled <= Millivolts(1000), "{:?}", outcome);
        // … while staying above the floor.
        assert!(outcome.settled >= Millivolts(840));
        assert_eq!(p.voltage(), outcome.settled);
        assert!(!p.is_crashed());
        // The settled point sits one margin above the lowest clean voltage.
        assert_eq!(outcome.settled, outcome.lowest_clean + Millivolts(10));
        assert_eq!(outcome.trip_reason, Some(TripReason::BitFlips));
    }

    #[test]
    fn settled_point_is_actually_clean() {
        let mut p = platform();
        let governor = UndervoltGovernor::default();
        let outcome = governor.run(&mut p).unwrap();
        // Re-probing at the settled voltage shows no faults.
        let flips = governor.canary_pass(&mut p).unwrap();
        assert_eq!(flips, 0, "settled at {} but canary trips", outcome.settled);
    }

    #[test]
    fn descent_trips_or_reaches_floor() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        match outcome.tripped_at {
            Some(trip) => {
                assert!(outcome.canary_flips > 0);
                assert_eq!(outcome.lowest_clean, trip + Millivolts(10));
            }
            None => assert!(outcome.lowest_clean < Millivolts(850)),
        }
    }

    #[test]
    fn first_step_trip_settles_at_the_start_not_above_it() {
        // Find the trip voltage, then start a fresh descent one step above
        // it: the very first probe trips, so nothing below the start is
        // clean. The governor used to settle at `start + margin` (clamped
        // only by a hard-coded 1200 mV); it must never exceed the start.
        let trip = UndervoltGovernor::default()
            .run(&mut platform())
            .unwrap()
            .tripped_at
            .expect("seed 7 trips above the floor");
        let mut p = platform();
        let start = trip + GovernorConfig::default().step;
        p.set_voltage(start).unwrap();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        assert_eq!(outcome.tripped_at, Some(trip), "{outcome:?}");
        assert_eq!(outcome.lowest_clean, start);
        assert_eq!(outcome.settled, start, "settled above the start");
        assert_eq!(p.voltage(), start);
    }

    #[test]
    fn non_dividing_step_still_probes_the_floor() {
        // 1200 → floor 985 with a 40 mV step: 1160, …, 1000, then a final
        // 15 mV partial step must land exactly on the floor (the canary is
        // clean everywhere ≥ 980, so nothing else stops the descent). The
        // old `v >= floor + step` condition stopped at 1000 and reported a
        // lowest_clean pessimistic by step − 1 mV.
        let mut p = platform();
        let governor = UndervoltGovernor::new(GovernorConfig {
            step: Millivolts(40),
            floor: Millivolts(985),
            ..GovernorConfig::default()
        });
        let outcome = governor.run(&mut p).unwrap();
        assert_eq!(outcome.tripped_at, None, "{outcome:?}");
        assert_eq!(outcome.lowest_clean, Millivolts(985));
        assert_eq!(outcome.settled, Millivolts(995));
    }

    #[test]
    fn latency_budget_settles_above_a_throughput_descent() {
        // The acceptance scenario: on the same seed, a latency-sensitive
        // governor with a tight budget must stop (latency trip) well above
        // the flip onset a throughput governor descends to.
        let mut throughput_p = platform();
        let throughput = UndervoltGovernor::default().run(&mut throughput_p).unwrap();

        let mut latency_p = platform();
        let config = GovernorConfig {
            workload: WorkloadMode::Latency,
            latency_budget_ns: Some(33.0),
            ..GovernorConfig::default()
        };
        let latency = UndervoltGovernor::new(config).run(&mut latency_p).unwrap();

        assert!(
            latency.settled > throughput.settled,
            "latency {latency:?} vs throughput {throughput:?}"
        );
        assert_eq!(latency.trip_reason, Some(TripReason::LatencyBudget));
        assert_eq!(latency.canary_flips, 0, "tripped before any flip");
        // The settled point honours the budget (stretch is monotone).
        assert!(latency.access_latency_ns <= 33.0, "{latency:?}");
        // The throughput descent pays for its depth in (random-word)
        // latency, even though its own sequential workload never notices.
        assert!(
            throughput_p.access_latency_ns(AccessPattern::RandomWord)
                > latency_p.access_latency_ns(AccessPattern::RandomWord)
        );
    }

    #[test]
    fn bandwidth_target_trips_before_the_canary() {
        let p = platform();
        let nominal = p
            .delivered_bandwidth(hbm_device::AccessPattern::SequentialStream)
            .as_f64();
        let mut p = p;
        let config = GovernorConfig {
            workload: WorkloadMode::Throughput,
            bandwidth_target_gbps: Some(nominal * 0.995),
            ..GovernorConfig::default()
        };
        let outcome = UndervoltGovernor::new(config).run(&mut p).unwrap();
        assert_eq!(outcome.trip_reason, Some(TripReason::BandwidthTarget));
        assert_eq!(outcome.canary_flips, 0);
        assert!(outcome.delivered_gbps >= nominal * 0.995, "{outcome:?}");

        let baseline = UndervoltGovernor::default().run(&mut platform()).unwrap();
        assert!(outcome.settled > baseline.settled, "{outcome:?}");
    }

    #[test]
    fn observed_run_counts_passes_and_trips() {
        let telemetry = Telemetry::new();
        let mut p = platform();
        UndervoltGovernor::default()
            .run_observed(&mut p, &telemetry)
            .unwrap();
        let snap = telemetry.metrics().snapshot();
        assert!(snap.canary_passes > 10, "{snap:?}");
        assert_eq!(snap.governor_flip_trips, 1);
        assert_eq!(snap.governor_timing_trips, 0);

        let telemetry = Telemetry::new();
        let mut p = platform();
        let config = GovernorConfig {
            workload: WorkloadMode::Latency,
            latency_budget_ns: Some(33.0),
            ..GovernorConfig::default()
        };
        UndervoltGovernor::new(config)
            .run_observed(&mut p, &telemetry)
            .unwrap();
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.governor_timing_trips, 1);
        assert_eq!(snap.governor_flip_trips, 0);
    }

    #[test]
    fn droop_makes_the_governor_conservative() {
        // Under load-line droop the canary sees the sagged voltage, so the
        // governor must settle at an equal or higher set-point.
        let mut ideal = platform();
        let ideal_outcome = UndervoltGovernor::default().run(&mut ideal).unwrap();

        let mut droopy = platform();
        droopy.set_load_line(Ohms(0.008));
        // Load the rail so the droop is visible to the device.
        droopy.measure_power(Ratio::ONE).unwrap();
        let droopy_outcome = UndervoltGovernor::default().run(&mut droopy).unwrap();

        assert!(
            droopy_outcome.settled >= ideal_outcome.settled,
            "droop {droopy_outcome:?} vs ideal {ideal_outcome:?}"
        );
    }

    #[test]
    fn saving_estimate_positive() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        let saving = outcome_saving(&p, &outcome);
        assert!(saving > 1.2, "saving {saving}");
    }

    #[test]
    fn workload_tokens_round_trip() {
        for mode in [WorkloadMode::Throughput, WorkloadMode::Latency] {
            assert_eq!(WorkloadMode::from_token(mode.as_token()), Some(mode));
        }
        assert_eq!(WorkloadMode::from_token("balanced"), None);
    }
}
