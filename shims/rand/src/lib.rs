//! Vendored stand-in for `rand`, scoped to what this workspace uses:
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges. The concrete generator lives in the `rand_chacha` shim.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty => $wide:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + (rng.next_u64() % span) as $wide) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = ((end as $wide - start as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $ty;
                }
                (start as $wide + (rng.next_u64() % span) as $wide) as $ty
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let sampled = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against landing on the excluded upper bound through
                // rounding.
                if sampled as $ty >= self.end { self.start } else { sampled as $ty }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (start as f64 + unit * (end as f64 - start as f64)) as $ty
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extensions over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-25i8..=25);
            assert!((-25..=25).contains(&x));
            let y = rng.gen_range(0usize..10);
            assert!(y < 10);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }
}
