//! Error type spanning the whole experiment stack.

use std::error::Error;
use std::fmt;

use hbm_device::DeviceError;
use hbm_faults::FaultModelError;
use hbm_vreg::PmbusError;

/// Any error an experiment can hit: device-side (crash, bad address),
/// board-side (PMBus transaction), fault-model calibration, or a
/// configuration problem.
///
/// # Examples
///
/// ```
/// use hbm_device::DeviceError;
/// use hbm_undervolt::ExperimentError;
///
/// let err = ExperimentError::from(DeviceError::Crashed);
/// assert!(err.to_string().contains("crashed"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The HBM device reported an error.
    Device(DeviceError),
    /// A PMBus/I²C transaction failed.
    Pmbus(PmbusError),
    /// The fault-model calibration is invalid.
    Faults(FaultModelError),
    /// The experiment configuration is invalid.
    Config {
        /// What is wrong with it.
        reason: String,
    },
    /// A sweep checkpoint could not be written, read, or does not belong to
    /// the run trying to resume from it.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// The supervised sweep was interrupted (kill injection or an external
    /// abort) after checkpointing `completed_points`; resume from the
    /// checkpoint to continue.
    Interrupted {
        /// Voltage points durably completed before the interruption.
        completed_points: usize,
    },
}

impl ExperimentError {
    /// Convenience constructor for configuration errors.
    #[must_use]
    pub fn config(reason: impl Into<String>) -> Self {
        ExperimentError::Config {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for checkpoint errors.
    #[must_use]
    pub fn checkpoint(reason: impl Into<String>) -> Self {
        ExperimentError::Checkpoint {
            reason: reason.into(),
        }
    }

    /// `true` if the underlying cause is a device crash (the expected
    /// outcome below V_critical, handled by power-cycling).
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, ExperimentError::Device(DeviceError::Crashed))
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Device(e) => write!(f, "device error: {e}"),
            ExperimentError::Pmbus(e) => write!(f, "pmbus error: {e}"),
            ExperimentError::Faults(e) => write!(f, "fault model error: {e}"),
            ExperimentError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            ExperimentError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
            ExperimentError::Interrupted { completed_points } => write!(
                f,
                "sweep interrupted after {completed_points} checkpointed point(s); \
                 resume from the checkpoint to continue"
            ),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Device(e) => Some(e),
            ExperimentError::Pmbus(e) => Some(e),
            ExperimentError::Faults(e) => Some(e),
            ExperimentError::Config { .. }
            | ExperimentError::Checkpoint { .. }
            | ExperimentError::Interrupted { .. } => None,
        }
    }
}

impl From<DeviceError> for ExperimentError {
    fn from(e: DeviceError) -> Self {
        ExperimentError::Device(e)
    }
}

impl From<PmbusError> for ExperimentError {
    fn from(e: PmbusError) -> Self {
        ExperimentError::Pmbus(e)
    }
}

impl From<FaultModelError> for ExperimentError {
    fn from(e: FaultModelError) -> Self {
        ExperimentError::Faults(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let device: ExperimentError = DeviceError::Crashed.into();
        assert!(device.is_crash());
        assert!(device.source().is_some());

        let pmbus: ExperimentError = PmbusError::UnsupportedCommand { code: 1 }.into();
        assert!(!pmbus.is_crash());
        assert!(pmbus.source().is_some());

        let faults: ExperimentError = FaultModelError::InvalidStuck0Share { share: 2.0 }.into();
        assert!(!faults.is_crash());
        assert!(faults.source().is_some());
        assert!(faults.to_string().contains("stuck0_share"));

        let config = ExperimentError::config("step must divide the range");
        assert!(config.source().is_none());
        assert_eq!(
            config.to_string(),
            "invalid configuration: step must divide the range"
        );

        let checkpoint = ExperimentError::checkpoint("version 9 is newer than this binary");
        assert!(checkpoint.source().is_none());
        assert!(checkpoint.to_string().starts_with("checkpoint error:"));

        let interrupted = ExperimentError::Interrupted {
            completed_points: 3,
        };
        assert!(interrupted.source().is_none());
        assert!(interrupted.to_string().contains("3 checkpointed"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ExperimentError>();
    }
}
