//! Effective-capacitance analysis: the paper's Fig. 3 methodology.
//!
//! Dividing each measured power by the square of its supply voltage strips
//! the quadratic term from `P = α·C_L·f·V²` and leaves the effective
//! switched-capacitance rate `α·C_L·f` in farads per second. At constant
//! bandwidth this should be constant — unless bits stop switching, which is
//! exactly what stuck bits below the guardband do.

use hbm_units::{FaradsPerSecond, Millivolts, Ratio, Watts};
use serde::{Deserialize, Serialize};

/// One extracted `α·C_L·f` sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcfSample {
    /// The supply voltage of the underlying power measurement.
    pub voltage: Millivolts,
    /// The extracted effective switched-capacitance rate.
    pub acf: FaradsPerSecond,
    /// The rate normalized to the series' value at the highest voltage
    /// (1.0 = nominal behaviour, <1.0 = capacitance lost to stuck bits).
    pub normalized: Ratio,
}

/// Extracts and normalizes `α·C_L·f` series from power measurements.
///
/// # Examples
///
/// ```
/// use hbm_power::PowerAnalysis;
/// use hbm_units::{Millivolts, Watts};
///
/// // A perfectly quadratic series: normalized αC_Lf stays at 1.0.
/// let samples = vec![
///     (Millivolts(1200), Watts(9.0)),
///     (Millivolts(1000), Watts(9.0 * (1.0f64 / 1.2f64).powi(2))),
/// ];
/// let series = PowerAnalysis::extract_acf(&samples);
/// assert!((series[1].normalized.as_f64() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PowerAnalysis;

impl PowerAnalysis {
    /// Computes `α·C_L·f = P / V²` for each `(voltage, power)` sample and
    /// normalizes the series to its first (highest-voltage) entry, exactly
    /// as the paper's Fig. 3 normalizes each bandwidth series to its own
    /// 1.2 V value.
    ///
    /// Returns an empty vector for empty input. Samples at 0 V are skipped
    /// (the rail is off; no capacitance information).
    #[must_use]
    pub fn extract_acf(samples: &[(Millivolts, Watts)]) -> Vec<AcfSample> {
        let mut out = Vec::with_capacity(samples.len());
        let mut reference: Option<f64> = None;
        for &(voltage, power) in samples {
            let v = voltage.to_volts();
            if v.as_f64() <= 0.0 {
                continue;
            }
            let acf = power.as_f64() / v.squared();
            let reference = *reference.get_or_insert(acf);
            out.push(AcfSample {
                voltage,
                acf: FaradsPerSecond(acf),
                normalized: Ratio(if reference > 0.0 {
                    acf / reference
                } else {
                    0.0
                }),
            });
        }
        out
    }

    /// The largest deviation of the normalized series from 1.0 over the
    /// voltages at or above `floor` — the paper reports ≤3 % within the
    /// guardband.
    #[must_use]
    pub fn max_deviation_above(series: &[AcfSample], floor: Millivolts) -> f64 {
        series
            .iter()
            .filter(|s| s.voltage >= floor)
            .map(|s| (s.normalized.as_f64() - 1.0).abs())
            .fold(0.0, f64::max)
    }

    /// The normalized value at an exact voltage, if present.
    #[must_use]
    pub fn normalized_at(series: &[AcfSample], voltage: Millivolts) -> Option<Ratio> {
        series
            .iter()
            .find(|s| s.voltage == voltage)
            .map(|s| s.normalized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_series(acf: f64) -> Vec<(Millivolts, Watts)> {
        (0..=39)
            .map(|i| {
                let mv = 1200 - i * 10;
                let v = f64::from(mv) / 1000.0;
                (Millivolts(mv), Watts(acf * v * v))
            })
            .collect()
    }

    #[test]
    fn pure_quadratic_extracts_flat_series() {
        let series = PowerAnalysis::extract_acf(&quadratic_series(6.25));
        assert_eq!(series.len(), 40);
        for s in &series {
            assert!((s.acf.as_f64() - 6.25).abs() < 1e-9);
            assert!((s.normalized.as_f64() - 1.0).abs() < 1e-12);
        }
        assert!(PowerAnalysis::max_deviation_above(&series, Millivolts(810)) < 1e-12);
    }

    #[test]
    fn capacitance_loss_shows_as_normalized_drop() {
        // Inject a 14 % capacitance loss at the lowest voltage.
        let mut samples = quadratic_series(6.25);
        let last = samples.last_mut().unwrap();
        last.1 = Watts(last.1.as_f64() * 0.86);
        let series = PowerAnalysis::extract_acf(&samples);
        let lowest = series.last().unwrap();
        assert!((lowest.normalized.as_f64() - 0.86).abs() < 1e-9);
        assert!(PowerAnalysis::max_deviation_above(&series, lowest.voltage) > 0.13);
        // Above the injected point the series is still flat.
        assert!(PowerAnalysis::max_deviation_above(&series, Millivolts(820)) < 1e-9);
    }

    #[test]
    fn normalized_at_finds_exact_voltages() {
        let series = PowerAnalysis::extract_acf(&quadratic_series(1.0));
        assert!(PowerAnalysis::normalized_at(&series, Millivolts(1000)).is_some());
        assert!(PowerAnalysis::normalized_at(&series, Millivolts(1001)).is_none());
    }

    #[test]
    fn zero_voltage_samples_skipped() {
        let samples = vec![
            (Millivolts::ZERO, Watts(1.0)),
            (Millivolts(1200), Watts(9.0)),
        ];
        let series = PowerAnalysis::extract_acf(&samples);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].voltage, Millivolts(1200));
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(PowerAnalysis::extract_acf(&[]).is_empty());
        assert_eq!(PowerAnalysis::max_deviation_above(&[], Millivolts(0)), 0.0);
    }
}
