//! Per-port traffic and fault statistics.

use serde::{Deserialize, Serialize};

/// Statistics one traffic generator gathers while running a program —
/// the "simple statistics on the FPGA itself" the study reports back to the
/// host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStats {
    /// Words written.
    pub words_written: u64,
    /// Words read (checked or not).
    pub words_read: u64,
    /// Words whose read-back differed from the expected pattern.
    pub faulty_words: u64,
    /// Bit flips observed as 1→0 (a written 1 read back as 0).
    pub flips_1to0: u64,
    /// Bit flips observed as 0→1 (a written 0 read back as 1).
    pub flips_0to1: u64,
}

impl PortStats {
    /// Total observed bit flips (the paper's `faultCount`).
    #[must_use]
    pub fn total_flips(&self) -> u64 {
        self.flips_1to0 + self.flips_0to1
    }

    /// Observed fault rate: flips per checked bit.
    ///
    /// Returns 0 when nothing was checked.
    #[must_use]
    pub fn fault_rate(&self, checked_words: u64) -> f64 {
        if checked_words == 0 {
            return 0.0;
        }
        self.total_flips() as f64 / (checked_words as f64 * 256.0)
    }

    /// Accumulates another port's statistics into this one.
    pub fn merge(&mut self, other: &PortStats) {
        self.words_written += other.words_written;
        self.words_read += other.words_read;
        self.faulty_words += other.faulty_words;
        self.flips_1to0 += other.flips_1to0;
        self.flips_0to1 += other.flips_0to1;
    }
}

impl std::iter::Sum for PortStats {
    fn sum<I: Iterator<Item = PortStats>>(iter: I) -> PortStats {
        let mut total = PortStats::default();
        for s in iter {
            total.merge(&s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let stats = PortStats {
            words_written: 100,
            words_read: 100,
            faulty_words: 2,
            flips_1to0: 3,
            flips_0to1: 5,
        };
        assert_eq!(stats.total_flips(), 8);
        assert_eq!(stats.fault_rate(100), 8.0 / 25_600.0);
        assert_eq!(stats.fault_rate(0), 0.0);
    }

    #[test]
    fn merge_and_sum() {
        let a = PortStats {
            words_written: 1,
            words_read: 2,
            faulty_words: 1,
            flips_1to0: 1,
            flips_0to1: 0,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.words_written, 2);
        assert_eq!(b.total_flips(), 2);

        let total: PortStats = vec![a, a, a].into_iter().sum();
        assert_eq!(total.words_read, 6);
        assert_eq!(total.flips_1to0, 3);
    }
}
