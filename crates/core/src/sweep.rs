//! Descending voltage sweeps — the experiments' outer loop.

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;

/// A descending voltage sweep `from → down_to` (inclusive) in fixed steps,
/// the study's outer loop: "from 1.2 V (the nominal voltage level) to
/// 0.81 V (minimum voltage possible for memory operation), with 10 mV step
/// size".
///
/// # Examples
///
/// ```
/// use hbm_undervolt::VoltageSweep;
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let sweep = VoltageSweep::date21();
/// let points: Vec<_> = sweep.iter().collect();
/// assert_eq!(points.len(), 40);
/// assert_eq!(points[0], Millivolts(1200));
/// assert_eq!(points[39], Millivolts(810));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoltageSweep {
    from: Millivolts,
    down_to: Millivolts,
    step: Millivolts,
}

impl VoltageSweep {
    /// The study's sweep: 1.20 V down to 0.81 V in 10 mV steps.
    #[must_use]
    pub fn date21() -> Self {
        VoltageSweep {
            from: Millivolts(1200),
            down_to: Millivolts(810),
            step: Millivolts(10),
        }
    }

    /// The below-guardband portion only (0.97 V down to 0.81 V), where the
    /// reliability experiments spend their time.
    #[must_use]
    pub fn unsafe_region() -> Self {
        VoltageSweep {
            from: Millivolts(970),
            down_to: Millivolts(810),
            step: Millivolts(10),
        }
    }

    /// Creates a custom descending sweep.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if `from < down_to`, the step is zero,
    /// or the step does not divide the range (the last point would miss
    /// `down_to`).
    pub fn new(
        from: Millivolts,
        down_to: Millivolts,
        step: Millivolts,
    ) -> Result<Self, ExperimentError> {
        if step == Millivolts::ZERO {
            return Err(ExperimentError::config("sweep step must be non-zero"));
        }
        if from < down_to {
            return Err(ExperimentError::config(format!(
                "sweep must descend: {from} < {down_to}"
            )));
        }
        if (from.as_u32() - down_to.as_u32()) % step.as_u32() != 0 {
            return Err(ExperimentError::config(format!(
                "step {step} does not divide the range {from}..{down_to}"
            )));
        }
        Ok(VoltageSweep {
            from,
            down_to,
            step,
        })
    }

    /// The highest (first) voltage.
    #[must_use]
    pub fn from(&self) -> Millivolts {
        self.from
    }

    /// The lowest (last) voltage.
    #[must_use]
    pub fn down_to(&self) -> Millivolts {
        self.down_to
    }

    /// The step size.
    #[must_use]
    pub fn step(&self) -> Millivolts {
        self.step
    }

    /// Number of points in the sweep.
    #[must_use]
    pub fn len(&self) -> usize {
        ((self.from.as_u32() - self.down_to.as_u32()) / self.step.as_u32()) as usize + 1
    }

    /// `false`: a sweep always has at least one point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the voltages, descending.
    pub fn iter(&self) -> impl Iterator<Item = Millivolts> + '_ {
        let (from, down_to, step) = (self.from, self.down_to, self.step);
        std::iter::successors(Some(from), move |&v| {
            (v >= down_to + step).then(|| v - step)
        })
    }
}

impl IntoIterator for VoltageSweep {
    type Item = Millivolts;
    type IntoIter = std::vec::IntoIter<Millivolts>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date21_sweep_matches_paper() {
        let sweep = VoltageSweep::date21();
        assert_eq!(sweep.len(), 40);
        let points: Vec<Millivolts> = sweep.iter().collect();
        assert_eq!(points.first(), Some(&Millivolts(1200)));
        assert_eq!(points.last(), Some(&Millivolts(810)));
        assert!(points.windows(2).all(|w| w[0] - w[1] == Millivolts(10)));
        assert!(!sweep.is_empty());
    }

    #[test]
    fn unsafe_region_sweep() {
        let sweep = VoltageSweep::unsafe_region();
        assert_eq!(sweep.iter().count(), 17);
        assert_eq!(sweep.from(), Millivolts(970));
    }

    #[test]
    fn single_point_sweep() {
        let sweep = VoltageSweep::new(Millivolts(900), Millivolts(900), Millivolts(10)).unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(sweep.iter().collect::<Vec<_>>(), vec![Millivolts(900)]);
    }

    #[test]
    fn invalid_sweeps_rejected() {
        assert!(VoltageSweep::new(Millivolts(900), Millivolts(1000), Millivolts(10)).is_err());
        assert!(VoltageSweep::new(Millivolts(900), Millivolts(800), Millivolts::ZERO).is_err());
        assert!(VoltageSweep::new(Millivolts(900), Millivolts(805), Millivolts(10)).is_err());
    }

    #[test]
    fn into_iterator() {
        let sweep = VoltageSweep::new(Millivolts(850), Millivolts(810), Millivolts(20)).unwrap();
        let points: Vec<Millivolts> = sweep.into_iter().collect();
        assert_eq!(
            points,
            vec![Millivolts(850), Millivolts(830), Millivolts(810)]
        );
    }
}
