//! Regenerates Fig. 6: number of usable pseudo channels (out of 32) under
//! different tolerable fault rates, per supply voltage.

fn main() {
    let seed = seed_from_args();
    let (curves, rendered) = hbm_bench::fig6(seed).expect("fig6 pipeline");
    println!("Fig. 6 — usable PCs vs voltage vs tolerable fault rate (seed {seed})\n");
    print!("{rendered}");
    let zero = &curves[0];
    println!(
        "\npaper example: 7 fault-free PCs at 0.95 V -> reproduced {} fault-free PCs",
        zero.at(hbm_units::Millivolts(950)).expect("0.95 V swept")
    );
}

fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED)
}
