//! Thermal quantities.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// A temperature in degrees Celsius.
///
/// The study holds the HBM stacks at 35 ± 1 °C; the fault model exposes the
/// operating temperature as a parameter because undervolting fault rates are
/// temperature sensitive.
///
/// # Examples
///
/// ```
/// use hbm_units::Celsius;
///
/// let ambient = Celsius(35.0);
/// assert_eq!(format!("{ambient}"), "35 °C");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Celsius(pub f64);

impl Celsius {
    /// The operating temperature used throughout the study (35 °C).
    pub const STUDY_AMBIENT: Celsius = Celsius(35.0);

    /// Returns the raw value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} °C", precision, self.0)
        } else {
            write!(f, "{} °C", self.0)
        }
    }
}

impl Add for Celsius {
    type Output = Celsius;
    fn add(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: Celsius) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Celsius(35.0).to_string(), "35 °C");
        assert_eq!(format!("{:.1}", Celsius(35.25)), "35.2 °C");
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Celsius(35.0) + Celsius(1.0), Celsius(36.0));
        assert_eq!(Celsius(35.0) - Celsius(1.0), Celsius(34.0));
    }

    #[test]
    fn study_ambient_matches_paper() {
        assert_eq!(Celsius::STUDY_AMBIENT, Celsius(35.0));
    }
}
