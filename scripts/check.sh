#!/usr/bin/env bash
# Repo gate: lint, formatting, and the tier-1 build/test cycle.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> tier-1: cargo build --release"
cargo build --release
# The root-package build above does not cover member binaries; the smoke
# runs below need a current hbmctl.
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# Kernel determinism gate: the cached fault kernel must stay bit-identical
# to the per-word reference path, and the bit-sliced dense-region backend
# must stay bit-identical to the scalar one — one-shot and carried. The
# case count is fixed in-file (with_cases) so this run is reproducible.
echo "==> kernel bit-identity property tests"
cargo test -q -p hbm-faults --test properties kernel_
cargo test -q -p hbm-faults --test properties bitsliced

# Coupled fault-field gate: inclusion monotonicity by construction, the
# carried working set's bit-identity to from-scratch rescans (injector
# and sweep layer), and legacy/coupled rate agreement.
echo "==> coupled-field monotonicity and incremental-equality tests"
cargo test -q -p hbm-faults --test properties coupled
cargo test -q -p hbm-faults --test properties legacy_and_coupled_rates_agree
cargo test -q -p hbm-undervolt --lib coupled

# Resilience gate: kill-at-every-point resume bit-identity, retry backoff,
# quarantine records, and the hbmctl exit-code contract.
echo "==> resilient sweep runtime tests"
cargo test -q --test resilience
cargo test -q -p hbm-undervolt --test cli

# Smoke: deep in the dense regime (840 mV), a forced-scalar sweep and a
# forced-bit-sliced sweep must emit byte-identical CSV reports.
echo "==> hbmctl sweep --kernel scalar/bitsliced smoke"
csvs="$(mktemp -u /tmp/hbmctl-kernel-scalar-XXXXXX.csv)"
csvb="$(mktemp -u /tmp/hbmctl-kernel-bitsliced-XXXXXX.csv)"
./target/release/hbmctl sweep --from 860 --to 840 --step 10 --words 64 \
    --kernel scalar --format csv >"$csvs"
./target/release/hbmctl sweep --from 860 --to 840 --step 10 --words 64 \
    --kernel bitsliced --format csv >"$csvb"
cmp "$csvs" "$csvb"
rm -f "$csvs" "$csvb"

# Smoke: a checkpointed supervised sweep resumes from its own file.
echo "==> hbmctl sweep --checkpoint/--resume smoke"
ckpt="$(mktemp -u /tmp/hbmctl-check-XXXXXX.json)"
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --checkpoint "$ckpt" >/dev/null
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --checkpoint "$ckpt" --resume >/dev/null
rm -f "$ckpt"

# Telemetry gate: deterministic event traces, CSV escaping, checkpoint
# durability and the millivolt parser hardening.
echo "==> telemetry, CSV-escaping and checkpoint-durability tests"
cargo test -q --test telemetry_determinism
cargo test -q -p hbm-undervolt --lib telemetry
cargo test -q -p hbm-undervolt --lib report::tests
cargo test -q -p hbm-undervolt --lib persist_atomic
cargo test -q -p hbm-units millivolt

# Smoke: the JSONL trace of a fixed-seed sweep is byte-identical across
# worker counts and records the sweep lifecycle.
echo "==> hbmctl sweep --trace-file smoke"
trace1="$(mktemp -u /tmp/hbmctl-trace-w1-XXXXXX.jsonl)"
trace4="$(mktemp -u /tmp/hbmctl-trace-w4-XXXXXX.jsonl)"
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --workers 1 --trace-file "$trace1" >/dev/null
./target/release/hbmctl sweep --from 900 --to 880 --step 10 --words 8 \
    --workers 4 --trace-file "$trace4" >/dev/null
cmp "$trace1" "$trace4"
grep -q SweepCompleted "$trace1"
rm -f "$trace1" "$trace4"

# Fleet determinism gate: per-device records, artifact bytes and
# population percentiles bit-identical across worker counts and shuffled
# scheduling, plus artifact roundtrip and version-bump rejection.
echo "==> fleet determinism property tests"
cargo test -q -p hbm-fleet --test properties
cargo test -q --test fleet_determinism

# Smoke: a small fleet sweep persists a columnar artifact the query and
# summary paths can read, and its JSON export is byte-identical to the
# committed golden — any drift in the engine, the artifact codec or the
# export serialization fails the gate.
echo "==> hbmctl fleet sweep/query/export smoke"
hbfa="$(mktemp -u /tmp/hbmctl-fleet-XXXXXX.hbfa)"
fjson="$(mktemp -u /tmp/hbmctl-fleet-XXXXXX.json)"
./target/release/hbmctl fleet sweep --devices 4 --words 8 \
    --from 960 --to 820 --step 20 --weak-reference 900 \
    --out "$hbfa" >/dev/null
./target/release/hbmctl fleet query --artifact "$hbfa" --device 2 >/dev/null
./target/release/hbmctl fleet summary --artifact "$hbfa" >/dev/null
./target/release/hbmctl fleet export --artifact "$hbfa" >"$fjson"
cmp "$fjson" scripts/golden/fleet_smoke.json
rm -f "$hbfa" "$fjson"

# Compressed-model fidelity gate: the envelope soundness and
# exact-agreement property tests, plus the model codec unit tests.
echo "==> compressed-model fidelity property tests"
cargo test -q -p hbm-fleet --lib model
cargo test -q -p hbm-fleet --test properties compressed
cargo test -q -p hbm-fleet --test properties fidelity
cargo test -q -p hbm-fleet --test properties v2_with_exact

# Smoke: sweep -> compress -> fidelity -> serve. The LDJSON answers a
# serve session gives from the compressed (model-only) artifact must be
# byte-identical to the committed golden — recommendation routing, the
# typed error surface and the wire format are all pinned at once.
echo "==> hbmctl fleet compress/fidelity/serve smoke"
hbfa="$(mktemp -u /tmp/hbmctl-fleet-exact-XXXXXX.hbfa)"
chbfa="$(mktemp -u /tmp/hbmctl-fleet-model-XXXXXX.hbfa)"
sjson="$(mktemp -u /tmp/hbmctl-serve-XXXXXX.jsonl)"
./target/release/hbmctl fleet sweep --devices 3 --words 8 \
    --from 960 --to 820 --step 20 --weak-reference 900 \
    --out "$hbfa" >/dev/null
./target/release/hbmctl fleet compress --artifact "$hbfa" \
    --out "$chbfa" >/dev/null
./target/release/hbmctl fleet fidelity --artifact "$hbfa" >/dev/null
printf '%s\n' \
    '{"Recommend":{"device_id":1,"target_rate":0.01,"min_pcs":16}}' \
    '"Summary"' \
    '{"Recommend":{"device_id":1,"target_rate":0.0,"min_pcs":16}}' \
    'not json' \
    | ./target/release/hbmctl serve --artifact "$chbfa" 2>/dev/null >"$sjson"
cmp "$sjson" scripts/golden/serve_smoke.jsonl

# Serve-concurrency gate: the pipeline's in-order emitter makes the
# worker count throughput-only — the same request file must produce
# byte-identical output at 1 and 4 workers, and the determinism
# proptests plus the single-flight cache tests must hold.
echo "==> serve-concurrency smoke and pipeline property tests"
s1json="$(mktemp -u /tmp/hbmctl-serve-w1-XXXXXX.jsonl)"
s4json="$(mktemp -u /tmp/hbmctl-serve-w4-XXXXXX.jsonl)"
printf '%s\n' \
    '{"Recommend":{"device_id":1,"target_rate":0.01,"min_pcs":16}}' \
    '"Summary"' \
    '{"Recommend":{"device_id":0,"target_rate":0.001,"min_pcs":16}}' \
    '{"Recommend":{"device_id":2,"target_rate":0.0001,"min_pcs":16}}' \
    'not json' \
    '{"Recommend":{"device_id":9,"target_rate":0.01,"min_pcs":16}}' \
    | ./target/release/hbmctl serve --artifact "$chbfa" \
        --serve-workers 1 2>/dev/null >"$s1json"
printf '%s\n' \
    '{"Recommend":{"device_id":1,"target_rate":0.01,"min_pcs":16}}' \
    '"Summary"' \
    '{"Recommend":{"device_id":0,"target_rate":0.001,"min_pcs":16}}' \
    '{"Recommend":{"device_id":2,"target_rate":0.0001,"min_pcs":16}}' \
    'not json' \
    '{"Recommend":{"device_id":9,"target_rate":0.01,"min_pcs":16}}' \
    | ./target/release/hbmctl serve --artifact "$chbfa" \
        --serve-workers 4 2>/dev/null >"$s4json"
cmp "$s1json" "$s4json"
cargo test -q -p hbm-fleet --test serve_pipeline
cargo test -q -p hbm-fleet --lib pipeline
rm -f "$hbfa" "$chbfa" "$sjson" "$s1json" "$s4json"

# Voltage–latency coupling gate: stretch monotonicity, worker-count
# invariance of effective timings, and governor bit-identity per
# (seed, config), plus the governor/trade-off unit suites.
echo "==> voltage-latency coupling property tests"
cargo test -q -p hbm-undervolt --test latency_timing
cargo test -q -p hbm-undervolt --lib governor
cargo test -q -p hbm-undervolt --lib trade_off

# Smoke: a flip-only throughput descent and a latency-budgeted descent on
# the same seed, pinned byte-for-byte against committed goldens — and the
# headline result re-derived from them: the latency-aware governor settles
# strictly higher than the throughput one.
echo "==> hbmctl governor latency-vs-throughput smoke"
gthr="$(mktemp -u /tmp/hbmctl-governor-thr-XXXXXX.csv)"
glat="$(mktemp -u /tmp/hbmctl-governor-lat-XXXXXX.csv)"
./target/release/hbmctl governor --workload throughput --canary-words 64 \
    --format csv >"$gthr"
./target/release/hbmctl governor --workload latency --latency-budget 33 \
    --canary-words 64 --format csv >"$glat"
cmp "$gthr" scripts/golden/governor_throughput.csv
cmp "$glat" scripts/golden/governor_latency.csv
thr_mv="$(awk -F, 'NR==2{print $3}' "$gthr")"
lat_mv="$(awk -F, 'NR==2{print $3}' "$glat")"
test "$lat_mv" -gt "$thr_mv"
rm -f "$gthr" "$glat"

# Forced-crash trace: the recovery story must appear as typed events.
tracec="$(mktemp -u /tmp/hbmctl-trace-crash-XXXXXX.jsonl)"
ckptc="$(mktemp -u /tmp/hbmctl-check-crash-XXXXXX.json)"
./target/release/hbmctl sweep --from 850 --to 790 --step 10 --words 8 \
    --transient-prob 1 --retries 2 --checkpoint "$ckptc" \
    --trace-file "$tracec" >/dev/null
for event in RetryScheduled PowerCycled CheckpointWritten SweepCompleted; do
    grep -q "$event" "$tracec"
done
rm -f "$tracec" "$ckptc"

echo "All checks passed."
