//! Kernel bench for the region-tiled fault injector: the cached path
//! (tile probability cache + geometric skip enumeration) against the naive
//! per-word reference path, per voltage; the bit-sliced dense-region
//! kernel against the forced-scalar walk in the dense regime (≤ 860 mV);
//! and a `quick()`-shaped reliability sweep in both execution modes. Every
//! comparison asserts bit-identical results before recording timings to
//! `BENCH_injector_kernel.json`.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable speedup record. Run with:
//! `cargo bench -p hbm-bench --bench injector_kernel`.

use std::time::Instant;

use hbm_device::{HbmGeometry, PcIndex, WordOffset};
use hbm_faults::{FaultFieldMode, FaultInjector, FaultModelParams, KernelBackend, MaskKernel};
use hbm_undervolt::{ExecutionMode, Platform, ReliabilityConfig, ReliabilityTester};
use hbm_units::Millivolts;
use serde::Serialize;

const SEED: u64 = 7;
const ITERATIONS: u32 = 5;
/// One reduced-geometry pseudo channel, the unit the sweep engine shards by.
const WORDS: u64 = 8192;
/// Each timing sample repeats the kernel until this much wall clock has
/// accumulated, so per-call times stay resolvable even when the cached
/// path finishes in nanoseconds.
const MIN_SAMPLE_SECS: f64 = 2e-3;

#[derive(Serialize)]
struct VoltageEntry {
    voltage_mv: u32,
    reference_secs: f64,
    cached_secs: f64,
    speedup: f64,
    faulty_bits: u64,
}

#[derive(Serialize)]
struct DenseEntry {
    voltage_mv: u32,
    scalar_secs: f64,
    bitsliced_secs: f64,
    speedup: f64,
    faulty_bits: u64,
}

#[derive(Serialize)]
struct SweepEntry {
    traffic_secs: f64,
    cached_secs: f64,
    speedup: f64,
    mean_faults: f64,
}

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    iterations: u32,
    words_per_pc: u64,
    per_voltage: Vec<VoltageEntry>,
    safe_region_min_speedup: f64,
    dense: Vec<DenseEntry>,
    dense_region_min_speedup: f64,
    sweep: SweepEntry,
}

/// Best-of-N per-call wall clock, with enough repetitions per sample to
/// outlast timer resolution. Returns the kernel's (checked) output too.
fn time_per_call<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut out = f(); // warm caches outside the timed region
    let mut best = f64::INFINITY;
    for _ in 0..ITERATIONS {
        let mut calls = 0u32;
        let start = Instant::now();
        let elapsed = loop {
            out = f();
            calls += 1;
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= MIN_SAMPLE_SECS {
                break elapsed;
            }
        };
        best = best.min(elapsed / f64::from(calls));
    }
    (best, out)
}

/// Best-of-N wall clock of a full `quick()` sweep in one execution mode,
/// plus its total mean fault count (for the cross-mode identity check).
fn time_sweep(mode: ExecutionMode) -> (f64, f64) {
    let mut config = ReliabilityConfig::quick();
    config.mode = mode;
    let tester = ReliabilityTester::new(config).expect("config valid");
    let mut best = f64::INFINITY;
    let mut faults = 0.0;
    for _ in 0..ITERATIONS {
        // A fresh platform per run: the sweep pays its own cache warm-up,
        // as a real experiment would.
        let mut platform = Platform::builder().seed(SEED).build();
        let start = Instant::now();
        let report = tester.run(&mut platform).expect("sweep");
        best = best.min(start.elapsed().as_secs_f64());
        faults = report.points.iter().map(|p| p.total_mean_faults()).sum();
    }
    (best, faults)
}

fn main() {
    let injector = FaultInjector::new(
        FaultModelParams::date21(),
        HbmGeometry::vcu128_reduced(),
        SEED,
    );
    let pc = PcIndex::new(0).expect("pc0");
    let auto = injector.kernel(FaultFieldMode::PerVoltage, KernelBackend::Auto);
    let scalar = injector.kernel(FaultFieldMode::PerVoltage, KernelBackend::Scalar);
    let sliced = injector.kernel(FaultFieldMode::PerVoltage, KernelBackend::BitSliced);
    println!("injector_kernel: seed {SEED}, {WORDS} words per PC, best of {ITERATIONS}");

    let mut per_voltage = Vec::new();
    for mv in [1000u32, 990, 980, 975, 960, 940, 900, 860, 820] {
        let v = Millivolts(mv);
        // Reference: the naive per-word walk the pre-tiled injector ran.
        let (reference_secs, reference_bits) = time_per_call(|| {
            let mut bits = 0u64;
            for w in 0..WORDS {
                let (s0, s1) = auto.reference_masks(pc, WordOffset(w), v);
                bits += u64::from(s0.count_ones()) + u64::from(s1.count_ones());
            }
            bits
        });
        // Cached: tile lookup + density-adaptive enumeration of the range.
        let (cached_secs, cached_bits) = time_per_call(|| {
            let (c0, c1) = auto.count_range(pc, 0..WORDS, v);
            c0 + c1
        });
        assert_eq!(cached_bits, reference_bits, "kernels disagree at {v}");
        let speedup = reference_secs / cached_secs.max(f64::MIN_POSITIVE);
        println!(
            "  {mv} mV: reference {:>10.3} us, cached {:>10.3} us  ({speedup:>8.1}x, {reference_bits} faulty bits)",
            reference_secs * 1e6,
            cached_secs * 1e6,
        );
        per_voltage.push(VoltageEntry {
            voltage_mv: mv,
            reference_secs,
            cached_secs,
            speedup,
            faulty_bits: reference_bits,
        });
    }

    let safe_region_min_speedup = per_voltage
        .iter()
        .filter(|e| e.voltage_mv >= 980)
        .map(|e| e.speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        safe_region_min_speedup >= 5.0,
        "safe-region speedup regressed below 5x: {safe_region_min_speedup:.1}x"
    );

    // Dense regime: at and below 860 mV nearly every word carries faults,
    // so the bit-sliced whole-word kernel is compared against the forced
    // scalar walk over the same range.
    let mut dense = Vec::new();
    for mv in [860u32, 820] {
        let v = Millivolts(mv);
        let (scalar_secs, scalar_bits) = time_per_call(|| {
            let (c0, c1) = scalar.count_range(pc, 0..WORDS, v);
            c0 + c1
        });
        let (bitsliced_secs, bitsliced_bits) = time_per_call(|| {
            let (c0, c1) = sliced.count_range(pc, 0..WORDS, v);
            c0 + c1
        });
        assert_eq!(
            bitsliced_bits, scalar_bits,
            "dense-region kernels disagree at {v}"
        );
        let speedup = scalar_secs / bitsliced_secs.max(f64::MIN_POSITIVE);
        println!(
            "  {mv} mV dense: scalar {:>10.3} us, bitsliced {:>10.3} us  ({speedup:>8.1}x, {scalar_bits} faulty bits)",
            scalar_secs * 1e6,
            bitsliced_secs * 1e6,
        );
        dense.push(DenseEntry {
            voltage_mv: mv,
            scalar_secs,
            bitsliced_secs,
            speedup,
            faulty_bits: scalar_bits,
        });
    }
    let dense_region_min_speedup = dense
        .iter()
        .map(|e| e.speedup)
        .fold(f64::INFINITY, f64::min);
    assert!(
        dense_region_min_speedup >= 8.0,
        "dense-region bit-sliced speedup regressed below 8x: {dense_region_min_speedup:.1}x"
    );

    let (traffic_secs, traffic_faults) = time_sweep(ExecutionMode::Traffic);
    let (cached_secs, cached_faults) = time_sweep(ExecutionMode::CachedMasks);
    assert_eq!(
        traffic_faults, cached_faults,
        "execution modes disagree on the quick() sweep"
    );
    let sweep_speedup = traffic_secs / cached_secs.max(f64::MIN_POSITIVE);
    assert!(
        sweep_speedup >= 2.0,
        "quick() sweep speedup regressed below 2x: {sweep_speedup:.2}x"
    );
    println!(
        "  quick() sweep: traffic {traffic_secs:.3}s, cached {cached_secs:.3}s ({sweep_speedup:.1}x, {traffic_faults:.0} mean faults)"
    );

    let record = Record {
        bench: "injector_kernel",
        seed: SEED,
        iterations: ITERATIONS,
        words_per_pc: WORDS,
        per_voltage,
        safe_region_min_speedup,
        dense,
        dense_region_min_speedup,
        sweep: SweepEntry {
            traffic_secs,
            cached_secs,
            speedup: sweep_speedup,
            mean_faults: traffic_faults,
        },
    };

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_injector_kernel.json"
    );
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_injector_kernel.json");
    println!("wrote {path}");
}
