//! Extension experiment: power-delivery droop vs undervolting margin.
//!
//! The study assumes ideal regulation; a real power-delivery network sags
//! under load (load line / droop). This sweep shows, per droop resistance,
//! the lowest *commanded* set-point that keeps the device inside the
//! fault-free guardband even at full load — the margin a deployment must
//! reserve on top of the paper's V_min.

use hbm_undervolt::Platform;
use hbm_units::{Millivolts, Ohms, Ratio};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);

    println!("Droop vs undervolting margin (seed {seed}; guardband floor 0.980 V)\n");
    println!(
        "{:>10} {:>18} {:>16}",
        "load line", "safe set-point", "margin vs ideal"
    );

    for r_mohm in [0u32, 1, 2, 4, 8] {
        let r = Ohms(f64::from(r_mohm) / 1000.0);
        let mut platform = Platform::builder().seed(seed).build();
        platform.set_load_line(r);

        // Find the lowest commanded voltage whose full-load drooped output
        // stays at or above V_min.
        let mut safe = Millivolts(1200);
        let mut v = Millivolts(1200);
        while v >= Millivolts(900) {
            platform.set_voltage(v).expect("set voltage");
            platform.measure_power(Ratio::ONE).expect("measure");
            if platform.voltage() >= Millivolts(980) {
                safe = v;
            } else {
                break;
            }
            v = v.saturating_sub(Millivolts(10));
        }
        println!(
            "{:>8} mΩ {:>18} {:>13} mV",
            r_mohm,
            safe.to_string(),
            safe.as_u32() as i64 - 980,
        );
    }
    println!("\nevery milliohm of load line costs set-point margin: deployments");
    println!("must command above the paper's V_min by their worst-case droop.");
}
