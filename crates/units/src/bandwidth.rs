//! Memory bandwidth quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A data rate in bytes per second (exact integer view).
///
/// # Examples
///
/// ```
/// use hbm_units::BytesPerSecond;
///
/// let rate = BytesPerSecond(310_000_000_000);
/// assert_eq!(rate.to_gigabytes_per_second().0, 310.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BytesPerSecond(pub u64);

impl BytesPerSecond {
    /// Zero bandwidth.
    pub const ZERO: BytesPerSecond = BytesPerSecond(0);

    /// Converts to decimal gigabytes per second (1 GB = 10⁹ B, the convention
    /// used by the study and by memory-vendor datasheets).
    #[must_use]
    pub fn to_gigabytes_per_second(self) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0 as f64 / 1.0e9)
    }
}

impl fmt::Display for BytesPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B/s", self.0)
    }
}

impl Add for BytesPerSecond {
    type Output = BytesPerSecond;
    fn add(self, rhs: BytesPerSecond) -> BytesPerSecond {
        BytesPerSecond(self.0 + rhs.0)
    }
}

impl Sum for BytesPerSecond {
    fn sum<I: Iterator<Item = BytesPerSecond>>(iter: I) -> BytesPerSecond {
        BytesPerSecond(iter.map(|x| x.0).sum())
    }
}

/// A data rate in decimal gigabytes per second.
///
/// # Examples
///
/// ```
/// use hbm_units::GigabytesPerSecond;
///
/// let peak = GigabytesPerSecond(429.0);
/// let achieved = GigabytesPerSecond(310.0);
/// let efficiency = achieved / peak;
/// assert!((efficiency - 0.7226).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct GigabytesPerSecond(pub f64);

impl GigabytesPerSecond {
    /// Zero bandwidth.
    pub const ZERO: GigabytesPerSecond = GigabytesPerSecond(0.0);

    /// Returns the raw value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts to exact bytes per second, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or NaN.
    #[must_use]
    pub fn to_bytes_per_second(self) -> BytesPerSecond {
        assert!(
            self.0.is_finite() && self.0 >= 0.0,
            "bandwidth out of range: {} GB/s",
            self.0
        );
        BytesPerSecond((self.0 * 1.0e9) as u64)
    }

    /// Returns the smaller of two bandwidths.
    #[must_use]
    pub fn min(self, other: GigabytesPerSecond) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0.min(other.0))
    }
}

impl fmt::Display for GigabytesPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} GB/s", precision, self.0)
        } else {
            write!(f, "{} GB/s", self.0)
        }
    }
}

impl Add for GigabytesPerSecond {
    type Output = GigabytesPerSecond;
    fn add(self, rhs: GigabytesPerSecond) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0 + rhs.0)
    }
}

impl AddAssign for GigabytesPerSecond {
    fn add_assign(&mut self, rhs: GigabytesPerSecond) {
        self.0 += rhs.0;
    }
}

impl Sub for GigabytesPerSecond {
    type Output = GigabytesPerSecond;
    fn sub(self, rhs: GigabytesPerSecond) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0 - rhs.0)
    }
}

impl Mul<f64> for GigabytesPerSecond {
    type Output = GigabytesPerSecond;
    fn mul(self, rhs: f64) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0 * rhs)
    }
}

impl Div<f64> for GigabytesPerSecond {
    type Output = GigabytesPerSecond;
    fn div(self, rhs: f64) -> GigabytesPerSecond {
        GigabytesPerSecond(self.0 / rhs)
    }
}

impl Div<GigabytesPerSecond> for GigabytesPerSecond {
    /// Dividing two bandwidths yields a dimensionless utilization ratio.
    type Output = f64;
    fn div(self, rhs: GigabytesPerSecond) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for GigabytesPerSecond {
    fn sum<I: Iterator<Item = GigabytesPerSecond>>(iter: I) -> GigabytesPerSecond {
        GigabytesPerSecond(iter.map(|x| x.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let rate = GigabytesPerSecond(310.0);
        assert_eq!(rate.to_bytes_per_second(), BytesPerSecond(310_000_000_000));
        assert_eq!(rate.to_bytes_per_second().to_gigabytes_per_second(), rate);
    }

    #[test]
    fn utilization_ratio() {
        let util = GigabytesPerSecond(155.0) / GigabytesPerSecond(310.0);
        assert_eq!(util, 0.5);
    }

    #[test]
    fn arithmetic() {
        let a = GigabytesPerSecond(100.0) + GigabytesPerSecond(55.0);
        assert_eq!(a, GigabytesPerSecond(155.0));
        assert_eq!(a * 2.0, GigabytesPerSecond(310.0));
        assert_eq!(a / 2.0, GigabytesPerSecond(77.5));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.1}", GigabytesPerSecond(310.0)), "310.0 GB/s");
        assert_eq!(BytesPerSecond(42).to_string(), "42 B/s");
    }

    #[test]
    #[should_panic(expected = "bandwidth out of range")]
    fn negative_bandwidth_rejected() {
        let _ = GigabytesPerSecond(-1.0).to_bytes_per_second();
    }

    #[test]
    fn sums() {
        let total: GigabytesPerSecond = (0..4).map(|_| GigabytesPerSecond(77.5)).sum();
        assert_eq!(total, GigabytesPerSecond(310.0));
        let total: BytesPerSecond = (0..3).map(|_| BytesPerSecond(10)).sum();
        assert_eq!(total, BytesPerSecond(30));
    }
}
