//! Fleet-compress bench: fits parametric fault models for a 256-device
//! fault-onset grid (0.90 V down to the crash band in 5 mV steps),
//! recording fit throughput, the exact-vs-model storage ratio, and the
//! fidelity metrics of the compressed form, to
//! `BENCH_fleet_compress.json`.
//!
//! Two acceptance properties are asserted, not just recorded: the model
//! column is at least 20× smaller than the exact FAULTS column it
//! replaces, and the *served* operating-point recommendations from the
//! compressed (model-only) store agree with the exact ones on at least
//! 99% of devices — the fidelity envelope either proves the exact answer
//! or the service falls back to a rescan, so any miss here means the
//! envelope is unsound. The raw point-estimate agreement of the model
//! alone (no envelope, no fallback) is recorded alongside, together with
//! the fraction of queries the model decided without exact evidence.
//! That fraction is a worst case by construction: every synthetic device
//! here faults mid-grid, and a Recommend answer is the fault-onset
//! locator itself, whose marginal cells sit within a few percent of the
//! target threshold — closer than any sound 50-byte envelope can
//! certify, so the service correctly abstains to the rescan path.
//! Clean and crash-limited devices are decided model-only (pinned by the
//! serve-layer tests); mid-grid onsets are exactly where fallback is the
//! right answer.
//!
//! This is a plain `harness = false` binary (not Criterion) because the
//! deliverable is a machine-readable size/fidelity record, not a
//! statistical distribution. Run with:
//! `cargo bench -p hbm-bench --bench fleet_compress`.

use std::time::Instant;

use hbm_fleet::{artifact, model, sweep, FleetConfig, FleetRequest, FleetService, FleetStore};
use serde::Serialize;

const SEED: u64 = 7;
const DEVICES: u32 = 256;
const ITERATIONS: u32 = 3;

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    seed: u64,
    iterations: u32,
    devices: u32,
    pcs: u32,
    knots: usize,
    words_per_pc: u64,
    note: &'static str,
    fit_seconds: f64,
    fit_devices_per_sec: f64,
    exact_bytes: u64,
    model_bytes: u64,
    compression_ratio: f64,
    artifact_bytes_exact: usize,
    artifact_bytes_compressed: usize,
    max_abs_rate_error: f64,
    mean_abs_rate_error: f64,
    weak_recall: f64,
    weak_precision: f64,
    v_min_agreement: f64,
    v_min_max_delta_mv: u16,
    operating_agreement: f64,
    served_agreement: f64,
    model_coverage: f64,
    serve_seconds: f64,
    serve_queries_per_sec: f64,
}

/// The same onset grid as the `fleet_sweep` bench: every knot below the
/// weak reference carries measured fault rates, which is exactly the
/// region the exponential onset model has to reproduce.
fn config() -> FleetConfig {
    FleetConfig {
        devices: DEVICES,
        base_seed: SEED,
        workers: 0,
        from: hbm_units::Millivolts(900),
        down_to: hbm_units::Millivolts(820),
        step: hbm_units::Millivolts(5),
        weak_reference: hbm_units::Millivolts(900),
        ..FleetConfig::default()
    }
}

fn main() {
    println!("fleet_compress: {DEVICES} devices, seed {SEED}, best of {ITERATIONS} runs");

    let cfg = config();
    let records = sweep::run(&cfg).expect("fleet sweep").records;
    let exact_artifact = artifact::encode(&cfg, &records);
    let exact = FleetStore::from_bytes(exact_artifact.clone()).expect("exact store");

    // Best-of-N wall clock for the deterministic fit alone (compression
    // minus artifact re-encoding).
    let mut fit_secs = f64::INFINITY;
    for _ in 0..ITERATIONS {
        let start = Instant::now();
        let models = model::fit_store(&exact).expect("fit models");
        fit_secs = fit_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(models.len(), DEVICES as usize);
    }
    println!(
        "  fit      : {fit_secs:.3}s ({:.0} devices/s)",
        f64::from(DEVICES) / fit_secs
    );

    let compressed_bytes = model::compress_store(&exact, false).expect("compress");
    let compressed_len = compressed_bytes.len();
    let with_model =
        FleetStore::from_bytes(model::compress_store(&exact, true).expect("compress keep-exact"))
            .expect("store with exact + model");
    let models = model::fit_store(&exact).expect("fit models");
    let report = model::FidelityReport::compute(&with_model, &models).expect("fidelity");

    println!(
        "  exact {} B vs model {} B ({:.1}x smaller); artifact {} B -> {} B",
        report.exact_bytes,
        report.model_bytes,
        report.compression_ratio,
        exact_artifact.len(),
        compressed_len
    );
    println!(
        "  fidelity : v_min agreement {:.3}, operating agreement {:.3}, \
         max |rate err| {:.2e}",
        report.v_min_agreement, report.operating_agreement, report.max_abs_rate_error
    );

    assert!(
        report.compression_ratio >= 20.0,
        "model column must be >= 20x smaller than the exact FAULTS column \
         ({} B vs {} B = {:.1}x)",
        report.exact_bytes,
        report.model_bytes,
        report.compression_ratio
    );

    // Serve the operating-point query for every device from the
    // compressed store (no exact column at all) and from the exact store,
    // and compare the answers.
    let compressed_service = FleetService::new(
        FleetStore::from_bytes(compressed_bytes.clone()).expect("compressed store"),
    );
    let exact_service = FleetService::new(exact.clone());
    let min_pcs = u32::from(cfg.geometry.total_pcs()).div_ceil(2);
    let mut served_agree = 0u32;
    let serve_start = Instant::now();
    for device_id in 0..DEVICES {
        let request = FleetRequest::Recommend {
            device_id,
            target_rate: model::OPERATING_TARGET_RATE,
            min_pcs,
        };
        if compressed_service.handle(&request) == exact_service.handle(&request) {
            served_agree += 1;
        }
    }
    let serve_secs = serve_start.elapsed().as_secs_f64();
    let stats = compressed_service.stats();
    let served_agreement = f64::from(served_agree) / f64::from(DEVICES);
    let model_coverage = stats.compressed_hits as f64 / f64::from(DEVICES);
    println!(
        "  serving  : {served_agree}/{DEVICES} agree, {:.0}% decided by the \
         model alone, {:.3}s for both transports",
        model_coverage * 100.0,
        serve_secs
    );
    assert!(
        served_agreement >= 0.99,
        "served recommendations from the compressed store must agree with \
         exact ones on >= 99% of devices (got {served_agreement:.4}); the \
         fidelity envelope is unsound"
    );

    let record = Record {
        bench: "fleet_compress",
        seed: SEED,
        iterations: ITERATIONS,
        devices: DEVICES,
        pcs: u32::from(cfg.geometry.total_pcs()),
        knots: cfg.knots().len(),
        words_per_pc: cfg.words_per_pc,
        note: "model column asserted >= 20x smaller than the exact FAULTS \
               column; operating-point recommendations served from the \
               compressed store asserted to agree with exact ones on >= 99% \
               of devices (envelope-gated, rescan fallback); raw \
               point-estimate agreement recorded unasserted; model_coverage \
               is a worst case: every device here faults mid-grid, where a \
               sound envelope must abstain to the rescan path",
        fit_seconds: fit_secs,
        fit_devices_per_sec: f64::from(DEVICES) / fit_secs,
        exact_bytes: report.exact_bytes,
        model_bytes: report.model_bytes,
        compression_ratio: report.compression_ratio,
        artifact_bytes_exact: exact_artifact.len(),
        artifact_bytes_compressed: compressed_len,
        max_abs_rate_error: report.max_abs_rate_error,
        mean_abs_rate_error: report.mean_abs_rate_error,
        weak_recall: report.weak_recall,
        weak_precision: report.weak_precision,
        v_min_agreement: report.v_min_agreement,
        v_min_max_delta_mv: report.v_min_max_delta_mv,
        operating_agreement: report.operating_agreement,
        served_agreement,
        model_coverage,
        serve_seconds: serve_secs,
        serve_queries_per_sec: 2.0 * f64::from(DEVICES) / serve_secs,
    };

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_fleet_compress.json"
    );
    let body = serde_json::to_string_pretty(&record).expect("serialize record");
    std::fs::write(path, body + "\n").expect("write BENCH_fleet_compress.json");
    println!("wrote {path}");
}
