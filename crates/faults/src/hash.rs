//! Deterministic hashing used to derive per-bit uniform draws.
//!
//! Every random-looking quantity in the fault model (a bit's failure
//! threshold, its polarity class, a region's weakness) is a pure function of
//! the device seed and the entity's address, computed with a SplitMix64-style
//! mixer. That makes fault maps reproducible across runs and platforms and
//! gives the monotone-in-voltage fault sets the trade-off analysis relies
//! on.

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
///
/// # Examples
///
/// ```
/// use hbm_faults::hash::mix64;
///
/// // Deterministic and sensitive to every input bit.
/// assert_eq!(mix64(42), mix64(42));
/// assert_ne!(mix64(42), mix64(43));
/// ```
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines several 64-bit parts into one hash by iterated mixing.
///
/// # Examples
///
/// ```
/// use hbm_faults::hash::combine;
///
/// assert_ne!(combine(&[1, 2]), combine(&[2, 1])); // order matters
/// ```
#[must_use]
pub fn combine(parts: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // π digits; arbitrary non-zero seed
    for &part in parts {
        acc = mix64(acc ^ part);
    }
    acc
}

/// Maps a hash to a uniform `f64` in `[0, 1)` with full 53-bit precision.
///
/// # Examples
///
/// ```
/// use hbm_faults::hash::{mix64, unit};
///
/// let u = unit(mix64(123));
/// assert!((0.0..1.0).contains(&u));
/// ```
#[must_use]
pub fn unit(hash: u64) -> f64 {
    // Take the top 53 bits as the mantissa of a uniform in [0, 1).
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The 53-bit sort key underlying [`unit`]: `key_unit(gate_key(h))` equals
/// `unit(h)` exactly, and the key order equals the uniform order.
///
/// The skip-sampling gate index stores these keys instead of `f64` uniforms
/// so gated prefixes can be located with integer binary search.
///
/// # Examples
///
/// ```
/// use hbm_faults::hash::{gate_key, key_unit, mix64, unit};
///
/// let h = mix64(99);
/// assert_eq!(key_unit(gate_key(h)), unit(h));
/// ```
#[must_use]
pub fn gate_key(hash: u64) -> u64 {
    hash >> 11
}

/// Maps a 53-bit [`gate_key`] back to the uniform it represents.
#[must_use]
pub fn key_unit(key: u64) -> f64 {
    key as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Splits a 64-bit hash into two independent 32-bit uniforms in `[0, 1)`.
#[must_use]
pub fn unit_pair(hash: u64) -> (f64, f64) {
    let lo = (hash & 0xFFFF_FFFF) as f64 / f64::from(u32::MAX) / (1.0 + f64::EPSILON);
    let hi = (hash >> 32) as f64 / f64::from(u32::MAX) / (1.0 + f64::EPSILON);
    (lo, hi)
}

/// The exact integer cutoff of a [`unit_pair`] comparison: the number of raw
/// 32-bit values `x` whose uniform `u(x)` is strictly below `t`, so that for
/// any hash half `r` (a raw `u32` widened to `u64`)
///
/// `u(r) < t  ⟺  r < unit_cutoff(t)`.
///
/// This is what lets the bit-sliced kernel replace the per-bit
/// float-division-and-compare with one integer compare per bit while staying
/// bit-identical to the scalar path: the cutoff is computed once per tile by
/// binary search over the monotone map `u(x) = x / (2³² − 1) / (1 + ε)`, and
/// every representable `t` (including `0.0`, `1.0`, values below `u(1)`, and
/// `NaN`, which cuts nothing) resolves to the exact comparison boundary.
#[must_use]
pub fn unit_cutoff(t: f64) -> u64 {
    if t.is_nan() || t <= 0.0 {
        return 0; // zero, negative, or NaN: nothing passes `u < t`
    }
    let uniform = |x: u64| x as f64 / f64::from(u32::MAX) / (1.0 + f64::EPSILON);
    let (mut lo, mut hi) = (0u64, 1u64 << 32);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if uniform(mid) < t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_known_good_dispersion() {
        // Consecutive inputs should produce wildly different outputs.
        let a = mix64(0);
        let b = mix64(1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn combine_is_order_sensitive_and_deterministic() {
        assert_eq!(combine(&[7, 8, 9]), combine(&[7, 8, 9]));
        assert_ne!(combine(&[7, 8, 9]), combine(&[9, 8, 7]));
        assert_ne!(combine(&[]), combine(&[0]));
    }

    #[test]
    fn unit_in_range_and_uniform_ish() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = unit(mix64(i));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n as u32);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gate_key_roundtrips_through_unit() {
        for i in 0..10_000u64 {
            let h = mix64(i);
            assert_eq!(key_unit(gate_key(h)), unit(h), "hash {h:#x}");
        }
        // Key order is uniform order: monotonicity is what lets the gate
        // index binary-search a probability threshold.
        let (a, b) = (mix64(3), mix64(4));
        assert_eq!(gate_key(a) < gate_key(b), unit(a) < unit(b));
    }

    #[test]
    fn unit_pair_in_range() {
        for i in 0..1000 {
            let (lo, hi) = unit_pair(mix64(i));
            assert!((0.0..1.0).contains(&lo));
            assert!((0.0..1.0).contains(&hi));
        }
    }

    #[test]
    fn unit_cutoff_is_the_exact_comparison_boundary() {
        let uniform = |x: u64| x as f64 / f64::from(u32::MAX) / (1.0 + f64::EPSILON);
        // Degenerate thresholds.
        assert_eq!(unit_cutoff(0.0), 0);
        assert_eq!(unit_cutoff(-1.0), 0);
        assert_eq!(unit_cutoff(f64::NAN), 0);
        // Every uniform is strictly below 1.0 (the `1 + ε` divisor), so the
        // full threshold admits the entire raw range.
        assert_eq!(unit_cutoff(1.0), 1 << 32);
        // Exact agreement with the float comparison on random hash halves
        // and adversarial thresholds: exact raw images, their neighbours,
        // and random uniforms.
        for i in 0..2000u64 {
            let h = mix64(i);
            let (lo, hi) = unit_pair(h);
            let raw_lo = h & 0xFFFF_FFFF;
            let raw_hi = h >> 32;
            for t in [
                lo,
                hi,
                uniform(raw_lo.saturating_sub(1)),
                uniform((raw_hi + 1).min(u64::from(u32::MAX))),
                unit(mix64(i ^ 0xABCD)),
                1e-13,
                0.5,
            ] {
                let cut = unit_cutoff(t);
                assert_eq!(raw_lo < cut, lo < t, "lo half, t = {t:e}, h = {h:#x}");
                assert_eq!(raw_hi < cut, hi < t, "hi half, t = {t:e}, h = {h:#x}");
            }
        }
    }

    #[test]
    fn unit_preserves_full_precision() {
        // Probabilities as small as 1e-13 must be resolvable.
        let tiny = 1e-13;
        let below = (tiny * (1u64 << 53) as f64) as u64;
        assert!(below > 0, "53-bit uniforms resolve 1e-13");
        assert!(unit(below << 11) > 0.0);
        assert!(unit(0) < tiny);
    }
}
