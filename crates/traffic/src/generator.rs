//! The traffic generator and the memory-port abstraction it drives.

use hbm_device::{DeviceError, HbmDevice, PortId, Word256, WordOffset};

use crate::program::{MacroCommand, MacroProgram};
use crate::stats::PortStats;

/// Word-granular access through one AXI port.
///
/// The platform layer implements this with undervolting fault injection on
/// the read path; [`DirectPort`] provides the fault-free implementation over
/// a bare [`HbmDevice`].
pub trait MemoryPort {
    /// Writes one word.
    ///
    /// # Errors
    ///
    /// Device errors (crash, disabled port, out-of-range address).
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError>;

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// Device errors (crash, disabled port, out-of-range address).
    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError>;
}

/// Fault-free port access over a bare device (no undervolting effects).
#[derive(Debug)]
pub struct DirectPort<'a> {
    device: &'a mut HbmDevice,
    port: PortId,
}

impl<'a> DirectPort<'a> {
    /// Wraps one AXI port of a device.
    pub fn new(device: &'a mut HbmDevice, port: PortId) -> Self {
        DirectPort { device, port }
    }
}

impl MemoryPort for DirectPort<'_> {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.device.axi_write(self.port, offset, word)
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        self.device.axi_read(self.port, offset)
    }
}

impl<P: MemoryPort + ?Sized> MemoryPort for &mut P {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        (**self).write(offset, word)
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        (**self).read(offset)
    }
}

/// A source of [`MemoryPort`]s by port id — what a
/// [`StackController`](crate::StackController) drives its generators
/// through. Implemented by
/// [`HbmDevice`] (fault-free direct access) and by the platform layer's
/// undervolted device view (with fault injection).
pub trait PortProvider {
    /// The port access type lent out per call.
    type Port<'a>: MemoryPort
    where
        Self: 'a;

    /// Lends access to one AXI port.
    fn port(&mut self, id: PortId) -> Self::Port<'_>;
}

impl PortProvider for HbmDevice {
    type Port<'a> = DirectPort<'a>;

    fn port(&mut self, id: PortId) -> DirectPort<'_> {
        DirectPort::new(self, id)
    }
}

/// One AXI traffic generator: executes macro programs through a port and
/// gathers statistics.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmDevice, HbmGeometry, PortId};
/// use hbm_traffic::{DataPattern, DirectPort, MacroProgram, TrafficGenerator};
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let mut device = HbmDevice::new(HbmGeometry::vcu128_reduced());
/// let port = PortId::new(7)?;
/// let mut tg = TrafficGenerator::new(port);
/// let program = MacroProgram::write_then_check(0..64, DataPattern::Checkerboard);
/// let stats = tg.run(&program, &mut DirectPort::new(&mut device, port))?;
/// assert_eq!(stats.words_read, 64);
/// assert_eq!(stats.faulty_words, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    port: PortId,
    cumulative: PortStats,
}

impl TrafficGenerator {
    /// Creates the generator for one port.
    #[must_use]
    pub fn new(port: PortId) -> Self {
        TrafficGenerator {
            port,
            cumulative: PortStats::default(),
        }
    }

    /// The port this generator drives.
    #[must_use]
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Runs a program through `port`, returning this run's statistics and
    /// accumulating them into the generator's totals.
    ///
    /// # Errors
    ///
    /// Propagates the first device error (e.g. the device crashed below the
    /// critical voltage); statistics gathered up to that point are kept in
    /// the cumulative totals.
    pub fn run<P: MemoryPort>(
        &mut self,
        program: &MacroProgram,
        port: &mut P,
    ) -> Result<PortStats, DeviceError> {
        let mut stats = PortStats::default();
        let result = self.execute(program, port, &mut stats);
        self.cumulative.merge(&stats);
        result.map(|()| stats)
    }

    fn execute<P: MemoryPort>(
        &mut self,
        program: &MacroProgram,
        port: &mut P,
        stats: &mut PortStats,
    ) -> Result<(), DeviceError> {
        for command in program.commands() {
            match *command {
                MacroCommand::Write {
                    start,
                    count,
                    pattern,
                } => {
                    for i in 0..count {
                        port.write(WordOffset(start + i), pattern.word_at(start + i))?;
                        stats.words_written += 1;
                    }
                }
                MacroCommand::ReadCheck {
                    start,
                    count,
                    pattern,
                } => {
                    for i in 0..count {
                        let offset = start + i;
                        let observed = port.read(WordOffset(offset))?;
                        stats.words_read += 1;
                        let expected = pattern.word_at(offset);
                        if observed != expected {
                            stats.faulty_words += 1;
                            let (f10, f01) = observed.flips_from(expected);
                            stats.flips_1to0 += u64::from(f10);
                            stats.flips_0to1 += u64::from(f01);
                        }
                    }
                }
                MacroCommand::Read { start, count } => {
                    for i in 0..count {
                        port.read(WordOffset(start + i))?;
                        stats.words_read += 1;
                    }
                }
                MacroCommand::ReadStrided {
                    start,
                    count,
                    stride,
                } => {
                    for i in 0..count {
                        port.read(WordOffset(start + i * stride))?;
                        stats.words_read += 1;
                    }
                }
                MacroCommand::ReadRandom { seed, count, span } => {
                    for i in 0..count {
                        let offset = MacroCommand::random_offset(seed, span, i);
                        port.read(WordOffset(offset))?;
                        stats.words_read += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Accumulates externally gathered statistics (e.g. one shard's result
    /// from a parallel run) into the cumulative totals.
    pub fn absorb(&mut self, stats: &PortStats) {
        self.cumulative.merge(stats);
    }

    /// Statistics accumulated across all runs since construction or the
    /// last [`TrafficGenerator::reset`].
    #[must_use]
    pub fn cumulative(&self) -> PortStats {
        self.cumulative
    }

    /// Clears the cumulative statistics (the study's `reset_axi_ports()`).
    pub fn reset(&mut self) {
        self.cumulative = PortStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DataPattern;
    use hbm_device::HbmGeometry;
    use hbm_units::Millivolts;

    fn device() -> HbmDevice {
        HbmDevice::new(HbmGeometry::vcu128_reduced())
    }

    fn port(i: u8) -> PortId {
        PortId::new(i).unwrap()
    }

    #[test]
    fn write_then_check_clean_device() {
        let mut dev = device();
        let mut tg = TrafficGenerator::new(port(0));
        for pattern in [
            DataPattern::AllOnes,
            DataPattern::AllZeros,
            DataPattern::Checkerboard,
            DataPattern::Prbs { seed: 5 },
            DataPattern::AddressAsData,
        ] {
            let program = MacroProgram::write_then_check(0..512, pattern);
            let stats = tg
                .run(&program, &mut DirectPort::new(&mut dev, port(0)))
                .unwrap();
            assert_eq!(stats.words_written, 512, "{pattern}");
            assert_eq!(stats.words_read, 512);
            assert_eq!(stats.faulty_words, 0, "{pattern}");
            assert_eq!(stats.total_flips(), 0);
        }
    }

    #[test]
    fn detects_mismatches_with_polarity() {
        // Write zeros, then check against ones: every bit reads as a 1→0
        // flip (expected 1, observed 0).
        let mut dev = device();
        let mut tg = TrafficGenerator::new(port(1));
        let program = MacroProgram::new()
            .then(MacroCommand::Write {
                start: 0,
                count: 4,
                pattern: DataPattern::AllZeros,
            })
            .then(MacroCommand::ReadCheck {
                start: 0,
                count: 4,
                pattern: DataPattern::AllOnes,
            });
        let stats = tg
            .run(&program, &mut DirectPort::new(&mut dev, port(1)))
            .unwrap();
        assert_eq!(stats.faulty_words, 4);
        assert_eq!(stats.flips_1to0, 4 * 256);
        assert_eq!(stats.flips_0to1, 0);
    }

    #[test]
    fn cumulative_accumulates_and_resets() {
        let mut dev = device();
        let mut tg = TrafficGenerator::new(port(2));
        let program = MacroProgram::write_then_check(0..16, DataPattern::AllOnes);
        tg.run(&program, &mut DirectPort::new(&mut dev, port(2)))
            .unwrap();
        tg.run(&program, &mut DirectPort::new(&mut dev, port(2)))
            .unwrap();
        assert_eq!(tg.cumulative().words_written, 32);
        tg.reset();
        assert_eq!(tg.cumulative(), PortStats::default());
    }

    #[test]
    fn crash_mid_program_propagates() {
        let mut dev = device();
        dev.set_supply(Millivolts(800)); // below critical: crashed
        let mut tg = TrafficGenerator::new(port(3));
        let program = MacroProgram::write_then_check(0..8, DataPattern::AllOnes);
        let err = tg
            .run(&program, &mut DirectPort::new(&mut dev, port(3)))
            .unwrap_err();
        assert_eq!(err, DeviceError::Crashed);
    }

    #[test]
    fn streaming_reads_count_bandwidth_words() {
        let mut dev = device();
        let mut tg = TrafficGenerator::new(port(4));
        let program = MacroProgram::streaming_reads(0..128, 3);
        let stats = tg
            .run(&program, &mut DirectPort::new(&mut dev, port(4)))
            .unwrap();
        assert_eq!(stats.words_read, 384);
        assert_eq!(stats.words_written, 0);
        assert_eq!(stats.faulty_words, 0);
    }

    #[test]
    fn memory_port_trait_object_usable() {
        let mut dev = device();
        let mut direct = DirectPort::new(&mut dev, port(5));
        let dyn_port: &mut dyn MemoryPort = &mut direct;
        let mut tg = TrafficGenerator::new(port(5));
        let program = MacroProgram::write_then_check(0..4, DataPattern::AllOnes);
        let stats = tg.run(&program, &mut &mut *dyn_port).unwrap();
        assert_eq!(stats.words_read, 4);
    }
}
