//! Portable bit-sliced mask generation: whole 256-bit words hashed a
//! 64-bit lane at a time, with the per-bit polarity/threshold comparisons
//! turned into integer compares against per-tile cutoffs and packed into
//! `u64` bitplanes.
//!
//! The scalar kernel draws each bit as `h = mix64(prefix ^ bit)` (the
//! [`crate::hash::combine`] chain over `(seed, pc, word, tag)` folded into
//! `prefix` once per word) and then compares the two 32-bit halves of `h`
//! against `f64` probabilities through [`crate::hash::unit_pair`]. Here the
//! probabilities arrive pre-converted to their exact integer images by
//! [`crate::hash::unit_cutoff`], so each bit costs one mix and two integer
//! compares — and the AVX2 tier ([`super::simd`]) does four bits per
//! instruction. Bit-for-bit equality with the scalar path is a theorem
//! (the cutoffs are exact), enforced end to end by the
//! `bitsliced_matches_scalar` proptests.

use hbm_device::Word256;

use super::InstructionSet;
use crate::hash::mix64;

/// Generates one word's `(stuck0, stuck1)` bitplanes for the per-voltage
/// field: bit `b` is stuck-at-0 iff its class half is below `class_cut` and
/// its threshold half is below `cut0`; stuck-at-1 iff the class half is at
/// or above `class_cut` and the threshold half is below `cut1`.
pub(crate) fn bit_planes(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
    isa: InstructionSet,
) -> (Word256, Word256) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        InstructionSet::Avx2 => super::simd::bit_planes_avx2(prefix, class_cut, cut0, cut1),
        _ => bit_planes_portable(prefix, class_cut, cut0, cut1),
    }
}

/// The portable `u64`-bitplane tier of [`bit_planes`].
pub(crate) fn bit_planes_portable(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
) -> (Word256, Word256) {
    let mut plane0 = [0u64; 4];
    let mut plane1 = [0u64; 4];
    for (lane, (p0, p1)) in plane0.iter_mut().zip(plane1.iter_mut()).enumerate() {
        let base = lane as u64 * 64;
        let (mut m0, mut m1) = (0u64, 0u64);
        for b in 0..64u64 {
            let h = mix64(prefix ^ (base + b));
            let lo = h & 0xFFFF_FFFF;
            let hi = h >> 32;
            let is0 = lo < class_cut;
            m0 |= u64::from(is0 & (hi < cut0)) << b;
            m1 |= u64::from(!is0 & (hi < cut1)) << b;
        }
        *p0 = m0;
        *p1 = m1;
    }
    (Word256(plane0), Word256(plane1))
}

/// Generates one coupled-field word: the stuck planes at the current
/// `(cut0, cut1)` probability levels plus each class's minimum still-clean
/// raw threshold (`u64::MAX` when the class is exhausted), which the caller
/// converts back to the word's exact next activation level.
pub(crate) fn coupled_word(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
) -> (Word256, Word256, u64, u64) {
    let mut plane0 = [0u64; 4];
    let mut plane1 = [0u64; 4];
    let (mut min0, mut min1) = (u64::MAX, u64::MAX);
    for (lane, (p0, p1)) in plane0.iter_mut().zip(plane1.iter_mut()).enumerate() {
        let base = lane as u64 * 64;
        let (mut m0, mut m1) = (0u64, 0u64);
        for b in 0..64u64 {
            let h = mix64(prefix ^ (base + b));
            let lo = h & 0xFFFF_FFFF;
            let hi = h >> 32;
            if lo < class_cut {
                if hi < cut0 {
                    m0 |= 1 << b;
                } else if hi < min0 {
                    min0 = hi;
                }
            } else if hi < cut1 {
                m1 |= 1 << b;
            } else if hi < min1 {
                min1 = hi;
            }
        }
        *p0 = m0;
        *p1 = m1;
    }
    (Word256(plane0), Word256(plane1), min0, min1)
}

/// The carry-start variant of [`coupled_word`]: also records every bit's
/// raw 32-bit threshold into `raws` and returns the class plane (bit set =
/// stuck-at-0 class), so the caller can fill per-tile pending lists for the
/// still-clean bits of each class without re-hashing anything.
pub(crate) fn coupled_scan(
    prefix: u64,
    class_cut: u64,
    cut0: u64,
    cut1: u64,
    raws: &mut [u32; 256],
) -> (Word256, Word256, Word256) {
    let mut class_plane = [0u64; 4];
    let mut plane0 = [0u64; 4];
    let mut plane1 = [0u64; 4];
    for lane in 0..4usize {
        let base = lane as u64 * 64;
        let (mut cls, mut m0, mut m1) = (0u64, 0u64, 0u64);
        for b in 0..64u64 {
            let h = mix64(prefix ^ (base + b));
            let lo = h & 0xFFFF_FFFF;
            let hi = h >> 32;
            raws[(base + b) as usize] = hi as u32;
            let is0 = lo < class_cut;
            cls |= u64::from(is0) << b;
            m0 |= u64::from(is0 & (hi < cut0)) << b;
            m1 |= u64::from(!is0 & (hi < cut1)) << b;
        }
        class_plane[lane] = cls;
        plane0[lane] = m0;
        plane1[lane] = m1;
    }
    (Word256(class_plane), Word256(plane0), Word256(plane1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::combine;

    #[test]
    fn planes_agree_with_direct_per_bit_hashing() {
        for seed in 0..8u64 {
            let prefix = combine(&[seed, 3, 77, 0x6269_7400]);
            let class_cut = 1u64 << 31; // ~half the bits in class 0
            let (cut0, cut1) = (1u64 << 30, 1u64 << 29);
            let (s0, s1) = bit_planes_portable(prefix, class_cut, cut0, cut1);
            for bit in 0..256u32 {
                let h = mix64(prefix ^ u64::from(bit));
                let is0 = (h & 0xFFFF_FFFF) < class_cut;
                let expect0 = is0 && (h >> 32) < cut0;
                let expect1 = !is0 && (h >> 32) < cut1;
                assert_eq!(s0.bit(bit), expect0, "seed {seed} bit {bit}");
                assert_eq!(s1.bit(bit), expect1, "seed {seed} bit {bit}");
            }
            assert!((s0 & s1).is_zero(), "polarity planes overlap");
        }
    }

    #[test]
    fn coupled_word_mins_track_the_cleanest_clean_bit() {
        let prefix = combine(&[9, 0, 5, 0x6362_6974]);
        let class_cut = 1u64 << 31;
        let (cut0, cut1) = (1u64 << 24, 1u64 << 26);
        let (s0, s1, min0, min1) = coupled_word(prefix, class_cut, cut0, cut1);
        let (mut expect_min0, mut expect_min1) = (u64::MAX, u64::MAX);
        for bit in 0..256u32 {
            let h = mix64(prefix ^ u64::from(bit));
            let hi = h >> 32;
            if (h & 0xFFFF_FFFF) < class_cut {
                if !s0.bit(bit) && hi < expect_min0 {
                    expect_min0 = hi;
                }
            } else if !s1.bit(bit) && hi < expect_min1 {
                expect_min1 = hi;
            }
        }
        assert_eq!(min0, expect_min0);
        assert_eq!(min1, expect_min1);
        // The mins sit at or above their cut (they are still clean).
        assert!(min0 >= cut0 && min1 >= cut1);
        assert!((s0 & s1).is_zero());
    }

    #[test]
    fn coupled_scan_matches_coupled_word_and_records_raws() {
        let prefix = combine(&[4, 1, 9, 0x6362_6974]);
        let class_cut = (1u64 << 32) / 3;
        let (cut0, cut1) = (1u64 << 28, 1u64 << 27);
        let mut raws = [0u32; 256];
        let (class_plane, s0, s1) = coupled_scan(prefix, class_cut, cut0, cut1, &mut raws);
        let (w0, w1, _, _) = coupled_word(prefix, class_cut, cut0, cut1);
        assert_eq!((s0, s1), (w0, w1));
        for bit in 0..256u32 {
            let h = mix64(prefix ^ u64::from(bit));
            assert_eq!(u64::from(raws[bit as usize]), h >> 32);
            assert_eq!(class_plane.bit(bit), (h & 0xFFFF_FFFF) < class_cut);
        }
    }
}
