//! The fault injector: turns the statistical model into concrete stuck-bit
//! masks for every word of the device, deterministically.

use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
use hbm_units::{Celsius, Millivolts};
use serde::{Deserialize, Serialize};

use crate::hash::{combine, unit, unit_pair};
use crate::params::FaultModelParams;
use crate::variation::ShiftTable;

/// The failure polarity of a faulty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPolarity {
    /// The bit reads 0 regardless of the stored value (observed as a 1→0
    /// flip when a 1 was written).
    StuckAtZero,
    /// The bit reads 1 regardless of the stored value (observed as a 0→1
    /// flip when a 0 was written).
    StuckAtOne,
}

/// Deterministic fault injector.
///
/// For every `(pseudo channel, word offset, bit)` and supply voltage, the
/// injector decides whether the bit is stuck and in which polarity, as a
/// pure function of the device seed. Key properties (all property-tested):
///
/// - **guardband**: no faults at or above V_min;
/// - **determinism**: identical masks for identical inputs;
/// - **monotonicity**: the faulty-bit set only grows as voltage drops;
/// - **exact rates**: the expected per-bit fault probability equals
///   `share_π × c_π(v_eff)` per polarity class.
///
/// # Performance
///
/// A naive implementation hashes every bit (256 hashes per word). The
/// injector instead uses exact two-level sampling: one 64-bit hash per word
/// and polarity acts as a gate with probability
/// `p_any = 1 − (1 − s·c)^256`; only gated words enumerate their bits, each
/// bit testing its (class-conditional) draw against `c / p_any`. Because
/// `x ↦ c/(1−(1−sc)^256)` is increasing in `c` (chord slope of a concave
/// function through the origin), monotonicity in voltage is preserved, and
/// the per-bit marginal probability is exactly `s·c`. In the fault-free
/// and low-fault regimes this costs ~2 hashes per word.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
/// use hbm_faults::{FaultInjector, FaultModelParams};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let injector = FaultInjector::new(
///     FaultModelParams::date21(),
///     HbmGeometry::vcu128_reduced(),
///     99,
/// );
/// let pc = PcIndex::new(0)?;
/// let (stuck0, stuck1) = injector.stuck_masks(pc, WordOffset(0), Millivolts(850));
/// // Masks never overlap: a bit fails towards exactly one value.
/// assert!((stuck0 & stuck1).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    params: FaultModelParams,
    geometry: HbmGeometry,
    seed: u64,
    temperature: Celsius,
    shift_table: ShiftTable,
}

/// Domain-separation tags for the hash streams.
const TAG_GATE0: u64 = 0x6761_7430;
const TAG_GATE1: u64 = 0x6761_7431;
const TAG_BIT: u64 = 0x6269_7400;

impl FaultInjector {
    /// Creates an injector for a device geometry with a device seed (the
    /// seed identifies the simulated silicon specimen).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: FaultModelParams, geometry: HbmGeometry, seed: u64) -> Self {
        params.validate();
        let shift_table = ShiftTable::new(&params.variation, seed, geometry);
        FaultInjector {
            params,
            geometry,
            seed,
            temperature: Celsius::STUDY_AMBIENT,
            shift_table,
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &FaultModelParams {
        &self.params
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.geometry
    }

    /// The device seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The modelled operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Sets the operating temperature (the study keeps it at 35 ± 1 °C).
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
    }

    /// Total local variation shift of a word's location, in volts.
    fn local_shift_volts(&self, pc: PcIndex, offset: WordOffset) -> f64 {
        let decoded = offset.decode(self.geometry);
        let var = &self.params.variation;
        self.shift_table.pc_shift_volts(pc)
            + var.bank_shift_volts(self.seed, pc, decoded.bank)
            + var.region_shift_volts(self.seed, pc, decoded.bank, decoded.row)
            + var.temperature_shift_volts(self.temperature)
    }

    /// Class-conditional fault probabilities `(c_stuck0, c_stuck1)` at a
    /// location for a supply voltage, after guardband gating.
    #[must_use]
    pub fn class_probabilities(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (f64, f64) {
        if supply >= self.params.landmarks.v_min {
            return (0.0, 0.0);
        }
        let v = f64::from(supply.as_u32()) / 1000.0;
        let shift = self.local_shift_volts(pc, offset);
        (
            self.params
                .class_probability(&self.params.curve_stuck0, v, shift),
            self.params
                .class_probability(&self.params.curve_stuck1, v, shift),
        )
    }

    /// Computes the stuck-at masks of one word at a supply voltage:
    /// `(stuck-at-0 mask, stuck-at-1 mask)`. The masks are disjoint.
    #[must_use]
    pub fn stuck_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        let (c0, c1) = self.class_probabilities(pc, offset, supply);
        if c0 == 0.0 && c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }

        let s0 = self.params.stuck0_share;
        let s1 = self.params.stuck1_share();
        // Word-level any-fault gates, one per polarity class.
        let p_any0 = p_any(s0 * c0);
        let p_any1 = p_any(s1 * c1);
        let base = &[self.seed, u64::from(pc.as_u8()), offset.0];
        let gate0 = p_any0 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE0])) < p_any0;
        let gate1 = p_any1 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE1])) < p_any1;
        if !gate0 && !gate1 {
            return (Word256::ZERO, Word256::ZERO);
        }

        // Conditional per-bit thresholds within a gated word.
        let cond0 = if gate0 { (c0 / p_any0).min(1.0) } else { 0.0 };
        let cond1 = if gate1 { (c1 / p_any1).min(1.0) } else { 0.0 };

        let mut stuck0 = Word256::ZERO;
        let mut stuck1 = Word256::ZERO;
        for bit in 0u32..Word256::BITS {
            let h = combine(&[base[0], base[1], base[2], TAG_BIT, u64::from(bit)]);
            let (class_u, thresh_u) = unit_pair(h);
            if class_u < s0 {
                if thresh_u < cond0 {
                    stuck0 = stuck0.with_bit_set(bit);
                }
            } else if thresh_u < cond1 {
                stuck1 = stuck1.with_bit_set(bit);
            }
        }
        (stuck0, stuck1)
    }

    /// Applies the fault model to a stored word: what a read at `supply`
    /// observes.
    #[must_use]
    pub fn observe(
        &self,
        stored: Word256,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> Word256 {
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        stored.with_stuck_bits(stuck0, stuck1)
    }

    /// Queries a single bit: `None` if healthy at `supply`, otherwise its
    /// polarity. Slower than [`FaultInjector::stuck_masks`] per word; meant
    /// for fault-map spot checks.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 256`.
    #[must_use]
    pub fn bit_fault(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        bit: u32,
        supply: Millivolts,
    ) -> Option<FaultPolarity> {
        assert!(bit < Word256::BITS, "bit index {bit} out of range");
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        if stuck0.bit(bit) {
            Some(FaultPolarity::StuckAtZero)
        } else if stuck1.bit(bit) {
            Some(FaultPolarity::StuckAtOne)
        } else {
            None
        }
    }

    /// Counts faulty bits of each polarity over a contiguous word range of
    /// one pseudo channel: `(stuck-at-0, stuck-at-1)`.
    ///
    /// This is what a write/read-back test with both data patterns measures.
    #[must_use]
    pub fn count_range(
        &self,
        pc: PcIndex,
        words: std::ops::Range<u64>,
        supply: Millivolts,
    ) -> (u64, u64) {
        let mut n0 = 0u64;
        let mut n1 = 0u64;
        for w in words {
            let (stuck0, stuck1) = self.stuck_masks(pc, WordOffset(w), supply);
            n0 += u64::from(stuck0.count_ones());
            n1 += u64::from(stuck1.count_ones());
        }
        (n0, n1)
    }

    /// Iterates over the *faulty* words of a range, yielding
    /// `(offset, stuck0, stuck1)` and skipping clean words at the cost of
    /// the two word-gate hashes only — the fast path for building fault
    /// maps and health scans in the sparse-fault regime.
    pub fn scan_faulty(
        &self,
        pc: PcIndex,
        words: std::ops::Range<u64>,
        supply: Millivolts,
    ) -> impl Iterator<Item = (WordOffset, Word256, Word256)> + '_ {
        words.filter_map(move |w| {
            let offset = WordOffset(w);
            let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
            if stuck0.is_zero() && stuck1.is_zero() {
                None
            } else {
                Some((offset, stuck0, stuck1))
            }
        })
    }
}

/// `1 − (1 − p)^256` computed stably for tiny `p`.
fn p_any(p_bit: f64) -> f64 {
    if p_bit <= 0.0 {
        return 0.0;
    }
    if p_bit >= 1.0 {
        return 1.0;
    }
    // 1 − (1−p)^256 = −expm1(256·ln1p(−p)), stable for tiny p.
    (-(256.0 * f64::ln_1p(-p_bit)).exp_m1()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector() -> FaultInjector {
        FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            1234,
        )
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn p_any_matches_naive() {
        for p in [1e-12, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 0.999, 1.0] {
            let naive = 1.0 - (1.0 - p as f64).powi(256);
            let fast = p_any(p);
            assert!((fast - naive).abs() < 1e-9, "p = {p}: {fast} vs {naive}");
        }
        assert_eq!(p_any(0.0), 0.0);
        // Tiny probabilities must not underflow to zero.
        assert!(p_any(1e-300) > 0.0);
    }

    #[test]
    fn guardband_is_fault_free() {
        let inj = injector();
        for v in [1200u32, 1100, 1000, 990, 980] {
            for w in 0..256 {
                let (s0, s1) = inj.stuck_masks(pc(5), WordOffset(w), Millivolts(v));
                assert!(s0.is_zero() && s1.is_zero(), "fault at {v} mV");
            }
        }
    }

    #[test]
    fn saturation_makes_everything_faulty() {
        let inj = injector();
        for w in 0..64 {
            let (s0, s1) = inj.stuck_masks(pc(0), WordOffset(w), Millivolts(820));
            assert_eq!((s0 | s1).count_ones(), 256, "word {w} not fully faulty");
            assert!((s0 & s1).is_zero());
        }
    }

    #[test]
    fn polarity_split_near_configured_share() {
        let inj = injector();
        let (n0, n1) = inj.count_range(pc(0), 0..2048, Millivolts(820));
        let total = (n0 + n1) as f64;
        let share0 = n0 as f64 / total;
        assert!((share0 - 0.47).abs() < 0.02, "share0 = {share0}");
    }

    #[test]
    fn masks_are_deterministic() {
        let a = injector();
        let b = injector();
        for w in [0u64, 17, 4091] {
            assert_eq!(
                a.stuck_masks(pc(9), WordOffset(w), Millivolts(880)),
                b.stuck_masks(pc(9), WordOffset(w), Millivolts(880))
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = injector();
        let b = FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            4321,
        );
        let mut differs = false;
        for w in 0..512 {
            if a.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
                != b.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "distinct specimens must have distinct fault maps");
    }

    #[test]
    fn fault_set_monotone_in_voltage() {
        let inj = injector();
        // Sweep down in 10 mV steps; the union mask may only grow.
        for w in 0..128u64 {
            let mut prev = Word256::ZERO;
            let mut v = Millivolts(980);
            while v >= Millivolts(820) {
                let (s0, s1) = inj.stuck_masks(pc(2), WordOffset(w), v);
                let union = s0 | s1;
                assert_eq!(union & prev, prev, "fault set shrank at {v} word {w}");
                prev = union;
                v = v.saturating_sub(Millivolts(10));
            }
        }
    }

    #[test]
    fn observe_applies_polarities() {
        let inj = injector();
        let v = Millivolts(830);
        let w = WordOffset(3);
        let (s0, s1) = inj.stuck_masks(pc(1), w, v);
        // All-ones written: stuck-at-0 bits flip to 0.
        let ones = inj.observe(Word256::ONES, pc(1), w, v);
        let (f10, f01) = ones.flips_from(Word256::ONES);
        assert_eq!(f10, s0.count_ones());
        assert_eq!(f01, 0);
        // All-zeros written: stuck-at-1 bits flip to 1.
        let zeros = inj.observe(Word256::ZERO, pc(1), w, v);
        let (f10, f01) = zeros.flips_from(Word256::ZERO);
        assert_eq!(f01, s1.count_ones());
        assert_eq!(f10, 0);
    }

    #[test]
    fn bit_fault_agrees_with_masks() {
        let inj = injector();
        let v = Millivolts(845);
        let w = WordOffset(11);
        let (s0, s1) = inj.stuck_masks(pc(3), w, v);
        for bit in 0..256 {
            let expected = if s0.bit(bit) {
                Some(FaultPolarity::StuckAtZero)
            } else if s1.bit(bit) {
                Some(FaultPolarity::StuckAtOne)
            } else {
                None
            };
            assert_eq!(inj.bit_fault(pc(3), w, bit, v), expected);
        }
    }

    #[test]
    fn measured_rate_tracks_model_rate() {
        // At a mid-range voltage, the empirical rate over a decent sample
        // should approximate s0·c0 + s1·c1 averaged over variation.
        let inj = injector();
        let v = Millivolts(860);
        let words = 8192u64;
        let (n0, n1) = inj.count_range(pc(7), 0..words, v);
        let measured = (n0 + n1) as f64 / (words as f64 * 256.0);

        // Average the analytic rate over the same words.
        let mut expected = 0.0;
        for w in 0..words {
            let (c0, c1) = inj.class_probabilities(pc(7), WordOffset(w), v);
            expected += 0.47 * c0 + 0.53 * c1;
        }
        expected /= words as f64;

        let ratio = measured / expected;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured {measured:.3e} vs expected {expected:.3e}"
        );
    }

    #[test]
    fn hotter_device_is_weaker() {
        let mut hot = injector();
        hot.set_temperature(Celsius(55.0));
        let cold = injector();
        let v = Millivolts(900);
        let (h0, h1) = hot.count_range(pc(0), 0..4096, v);
        let (c0, c1) = cold.count_range(pc(0), 0..4096, v);
        assert!(h0 + h1 >= c0 + c1, "hot {h0}+{h1} vs cold {c0}+{c1}");
    }

    #[test]
    fn scan_faulty_agrees_with_full_enumeration() {
        let inj = injector();
        let v = Millivolts(880);
        let scanned: Vec<_> = inj.scan_faulty(pc(4), 0..4096, v).collect();
        // Same totals as the counting walk.
        let (n0, n1) = inj.count_range(pc(4), 0..4096, v);
        let scan0: u64 = scanned
            .iter()
            .map(|(_, s0, _)| u64::from(s0.count_ones()))
            .sum();
        let scan1: u64 = scanned
            .iter()
            .map(|(_, _, s1)| u64::from(s1.count_ones()))
            .sum();
        assert_eq!((scan0, scan1), (n0, n1));
        // Every yielded word really is faulty, and none is yielded twice.
        let mut seen = std::collections::HashSet::new();
        for (offset, s0, s1) in &scanned {
            assert!(!(*s0 | *s1).is_zero());
            assert!(seen.insert(offset.0));
        }
        // In the guardband, the scan yields nothing.
        assert_eq!(inj.scan_faulty(pc(4), 0..4096, Millivolts(990)).count(), 0);
    }

    #[test]
    fn conditional_threshold_monotone_in_c() {
        // c / p_any(s·c) must be increasing in c so fault sets are monotone.
        let s = 0.47;
        let mut last = 0.0;
        for i in 1..=10_000 {
            let c = f64::from(i) / 10_000.0;
            let ratio = c / p_any(s * c);
            assert!(ratio >= last, "non-monotone at c = {c}");
            last = ratio;
        }
    }
}
