//! Fault-map-guided region remapping: instead of *correcting* undervolting
//! faults, *avoid* them.
//!
//! The paper's Fig. 6 trades capacity at pseudo-channel granularity (256 MB
//! steps). Because the workspace's fault model (like real undervolted DRAM)
//! clusters faults in small row regions, discarding only the weak regions
//! retains far more capacity at the same voltage — this module implements
//! that finer-grained trade-off.

use hbm_device::{BankId, DecodedAddress, DeviceError, HbmGeometry, PcIndex, RowId, WordOffset};
use hbm_faults::FaultInjector;
use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

/// Health of one row region of a pseudo channel at one voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionHealth {
    /// Bank the region lives in.
    pub bank: u16,
    /// Region index within the bank.
    pub region: u32,
    /// Words scanned.
    pub words: u64,
    /// Faulty bits found (either polarity).
    pub faulty_bits: u64,
}

impl RegionHealth {
    /// `true` if the scan found no faulty bit.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.faulty_bits == 0
    }
}

/// The scanned health map of one pseudo channel at one voltage.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex};
/// use hbm_ecc::HealthMap;
/// use hbm_faults::{FaultInjector, FaultModelParams};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let injector = FaultInjector::new(
///     FaultModelParams::date21(),
///     HbmGeometry::vcu128_reduced(),
///     7,
/// );
/// let pc = PcIndex::new(0)?;
/// // In the guardband everything is healthy.
/// let map = HealthMap::scan(&injector, pc, Millivolts(980));
/// assert_eq!(map.healthy_fraction(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthMap {
    /// The scanned pseudo channel.
    pub pc: u8,
    /// The scanned voltage.
    pub voltage: Millivolts,
    /// Rows per region used by the scan.
    pub region_rows: u32,
    /// One entry per (bank, region), bank-major.
    pub regions: Vec<RegionHealth>,
}

impl HealthMap {
    /// Scans every word of the pseudo channel through the injector,
    /// grouping fault counts by `(bank, region)` with the injector's own
    /// region granularity.
    #[must_use]
    pub fn scan(injector: &FaultInjector, pc: PcIndex, voltage: Millivolts) -> Self {
        let geometry = injector.geometry();
        let region_rows = injector.params().variation.region_rows.max(1);
        let regions_per_bank = (geometry.rows_per_bank() / region_rows).max(1);
        let banks = u32::from(geometry.banks_per_pc());

        let mut regions: Vec<RegionHealth> = (0..banks)
            .flat_map(|bank| {
                (0..regions_per_bank).map(move |region| RegionHealth {
                    bank: bank as u16,
                    region,
                    words: 0,
                    faulty_bits: 0,
                })
            })
            .collect();

        for w in 0..geometry.words_per_pc() {
            let offset = WordOffset(w);
            let DecodedAddress { bank, row, .. } = offset.decode(geometry);
            let region = (row.0 / region_rows).min(regions_per_bank - 1);
            let index = (u32::from(bank.0) * regions_per_bank + region) as usize;
            let (s0, s1) = injector.stuck_masks(pc, offset, voltage);
            regions[index].words += 1;
            regions[index].faulty_bits += u64::from((s0 | s1).count_ones());
        }
        HealthMap {
            pc: pc.as_u8(),
            voltage,
            region_rows,
            regions,
        }
    }

    /// Fraction of regions with zero faulty bits.
    #[must_use]
    pub fn healthy_fraction(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        self.regions.iter().filter(|r| r.is_healthy()).count() as f64 / self.regions.len() as f64
    }

    /// Total words residing in healthy regions.
    #[must_use]
    pub fn healthy_words(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.is_healthy())
            .map(|r| r.words)
            .sum()
    }

    /// Fraction of all faults concentrated in the weakest `fraction` of
    /// regions (the clustering observation of §III-B: most faults sit in
    /// small regions).
    #[must_use]
    pub fn fault_concentration(&self, fraction: f64) -> f64 {
        let total: u64 = self.regions.iter().map(|r| r.faulty_bits).sum();
        if total == 0 {
            return 0.0;
        }
        let mut counts: Vec<u64> = self.regions.iter().map(|r| r.faulty_bits).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = ((counts.len() as f64 * fraction).ceil() as usize).max(1);
        counts[..top].iter().sum::<u64>() as f64 / total as f64
    }

    /// Builds a remap plan exposing only the healthy regions as a
    /// contiguous logical space.
    #[must_use]
    pub fn plan(&self, geometry: HbmGeometry) -> RemapPlan {
        // On geometries with fewer rows per bank than the region size, a
        // region spans the whole bank.
        let rows_per_region = self.region_rows.min(geometry.rows_per_bank());
        let healthy: Vec<(u16, u32)> = self
            .regions
            .iter()
            .filter(|r| r.is_healthy())
            .map(|r| (r.bank, r.region))
            .collect();
        RemapPlan {
            geometry,
            rows_per_region,
            healthy,
        }
    }
}

/// A mapping from a contiguous logical word space onto the healthy regions
/// of a pseudo channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapPlan {
    geometry: HbmGeometry,
    rows_per_region: u32,
    healthy: Vec<(u16, u32)>,
}

impl RemapPlan {
    /// Words available through the plan.
    #[must_use]
    pub fn logical_words(&self) -> u64 {
        self.healthy.len() as u64 * self.words_per_region()
    }

    /// Usable capacity as a fraction of the pseudo channel.
    #[must_use]
    pub fn capacity_fraction(&self) -> f64 {
        self.logical_words() as f64 / self.geometry.words_per_pc() as f64
    }

    fn words_per_region(&self) -> u64 {
        u64::from(self.rows_per_region) * u64::from(self.geometry.words_per_row())
    }

    /// Translates a logical word offset into the physical offset of a
    /// healthy region.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::AddressOutOfRange`] when `logical` exceeds
    /// the plan's capacity.
    pub fn to_physical(&self, logical: WordOffset) -> Result<WordOffset, DeviceError> {
        let per_region = self.words_per_region();
        let index = (logical.0 / per_region) as usize;
        let within = logical.0 % per_region;
        let Some(&(bank, region)) = self.healthy.get(index) else {
            return Err(DeviceError::AddressOutOfRange {
                offset: logical.0,
                capacity_words: self.logical_words(),
            });
        };
        let words_per_row = u64::from(self.geometry.words_per_row());
        let row_in_region = (within / words_per_row) as u32;
        let col = (within % words_per_row) as u16;
        let row = region * self.rows_per_region + row_in_region;
        Ok(DecodedAddress {
            bank: BankId(bank),
            row: RowId(row),
            col,
        }
        .encode(self.geometry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_faults::FaultModelParams;

    fn injector() -> FaultInjector {
        FaultInjector::new(FaultModelParams::date21(), HbmGeometry::vcu128_reduced(), 7)
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn guardband_scan_is_all_healthy() {
        let map = HealthMap::scan(&injector(), pc(0), Millivolts(1000));
        assert_eq!(map.healthy_fraction(), 1.0);
        assert_eq!(
            map.healthy_words(),
            HbmGeometry::vcu128_reduced().words_per_pc()
        );
        assert_eq!(map.fault_concentration(0.05), 0.0);
    }

    #[test]
    fn saturation_scan_is_all_faulty() {
        let map = HealthMap::scan(&injector(), pc(0), Millivolts(820));
        assert_eq!(map.healthy_fraction(), 0.0);
        assert_eq!(map.healthy_words(), 0);
    }

    #[test]
    fn onset_faults_are_clustered() {
        // Find the onset: the highest voltage at which PC4 shows at least a
        // handful of faults, and check they concentrate in few regions.
        let inj = injector();
        let mut v = Millivolts(960);
        let map = loop {
            let map = HealthMap::scan(&inj, pc(4), v);
            let total: u64 = map.regions.iter().map(|r| r.faulty_bits).sum();
            if total >= 10 {
                break map;
            }
            v = v.saturating_sub(Millivolts(10));
            assert!(v >= Millivolts(850), "no faults found above 0.85 V");
        };
        // At the onset, the weakest quarter of regions holds the clear
        // majority of the faults (§III-B: faults cluster in small regions).
        let concentration = map.fault_concentration(0.25);
        assert!(concentration > 0.5, "concentration {concentration} at {v}");
        // And remapping away the faulty regions still retains capacity.
        assert!(map.healthy_fraction() > 0.05);
    }

    #[test]
    fn scan_covers_every_word_exactly_once() {
        let map = HealthMap::scan(&injector(), pc(1), Millivolts(950));
        let scanned: u64 = map.regions.iter().map(|r| r.words).sum();
        assert_eq!(scanned, HbmGeometry::vcu128_reduced().words_per_pc());
        // Every region got the same share.
        let per_region = map.regions[0].words;
        assert!(map.regions.iter().all(|r| r.words == per_region));
    }

    #[test]
    fn remap_plan_addresses_only_healthy_regions() {
        let inj = injector();
        let voltage = Millivolts(900);
        let map = HealthMap::scan(&inj, pc(4), voltage);
        let plan = map.plan(HbmGeometry::vcu128_reduced());
        assert!(plan.logical_words() > 0);
        assert!(plan.capacity_fraction() <= 1.0);

        // Every remapped word is fault-free at the scan voltage.
        for logical in 0..plan.logical_words() {
            let physical = plan.to_physical(WordOffset(logical)).unwrap();
            let (s0, s1) = inj.stuck_masks(pc(4), physical, voltage);
            assert!(
                (s0 | s1).is_zero(),
                "remapped word {logical} -> {physical} is faulty"
            );
        }

        // Out-of-range logical addresses are rejected.
        assert!(plan.to_physical(WordOffset(plan.logical_words())).is_err());
    }

    #[test]
    fn remap_is_injective() {
        let map = HealthMap::scan(&injector(), pc(2), Millivolts(920));
        let plan = map.plan(HbmGeometry::vcu128_reduced());
        let mut seen = std::collections::HashSet::new();
        for logical in 0..plan.logical_words() {
            let physical = plan.to_physical(WordOffset(logical)).unwrap();
            assert!(seen.insert(physical.0), "physical word reused: {physical}");
        }
    }

    #[test]
    fn region_remap_beats_pc_granularity() {
        // At a voltage where a sensitive PC has faults, the PC-granular
        // trade-off discards all 100 % of it; region remapping keeps most.
        let inj = injector();
        let map = HealthMap::scan(&inj, pc(4), Millivolts(910));
        let total_faults: u64 = map.regions.iter().map(|r| r.faulty_bits).sum();
        assert!(total_faults > 0, "PC4 must be faulty at 0.91 V");
        let plan = map.plan(HbmGeometry::vcu128_reduced());
        assert!(
            plan.capacity_fraction() > 0.5,
            "region remapping must retain most capacity, got {}",
            plan.capacity_fraction()
        );
    }
}
