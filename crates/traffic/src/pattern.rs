//! Test data patterns.

use std::fmt;

use hbm_device::Word256;
use serde::{Deserialize, Serialize};

/// A deterministic data pattern: a function from word index to 256-bit
/// word.
///
/// The study's reliability tester uses `AllOnes` (exposing 1→0 flips of
/// stuck-at-0 bits) and `AllZeros` (exposing 0→1 flips of stuck-at-1 bits).
/// The additional patterns support the pattern-sensitivity extension
/// experiments.
///
/// # Examples
///
/// ```
/// use hbm_device::Word256;
/// use hbm_traffic::DataPattern;
///
/// assert_eq!(DataPattern::AllOnes.word_at(123), Word256::ONES);
/// assert_eq!(DataPattern::AllZeros.word_at(0), Word256::ZERO);
///
/// // A checkerboard exposes both polarities at half density each.
/// let cb = DataPattern::Checkerboard.word_at(0);
/// assert_eq!(cb.count_ones(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DataPattern {
    /// Every bit one — detects stuck-at-0 faults (1→0 flips).
    AllOnes,
    /// Every bit zero — detects stuck-at-1 faults (0→1 flips).
    AllZeros,
    /// Alternating `0xAA…` bits.
    Checkerboard,
    /// Alternating `0x55…` bits (the checkerboard's complement).
    InverseCheckerboard,
    /// A single walking one per 64-bit lane, rotating with the word index.
    WalkingOnes,
    /// Pseudo-random data from a seeded xorshift stream keyed by the word
    /// index (reproducible without storing the data).
    Prbs {
        /// Stream seed.
        seed: u64,
    },
    /// The word index replicated into every lane ("address as data").
    AddressAsData,
    /// A fixed caller-supplied word.
    Custom(Word256),
}

impl DataPattern {
    /// The pattern word at a given word index.
    #[must_use]
    pub fn word_at(self, index: u64) -> Word256 {
        match self {
            DataPattern::AllOnes => Word256::ONES,
            DataPattern::AllZeros => Word256::ZERO,
            DataPattern::Checkerboard => Word256::splat(0xAAAA_AAAA_AAAA_AAAA),
            DataPattern::InverseCheckerboard => Word256::splat(0x5555_5555_5555_5555),
            DataPattern::WalkingOnes => Word256::splat(1u64.rotate_left((index % 64) as u32)),
            DataPattern::Prbs { seed } => {
                let mut lanes = [0u64; 4];
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    *slot = xorshift(seed ^ index.wrapping_mul(4).wrapping_add(lane as u64));
                }
                Word256(lanes)
            }
            DataPattern::AddressAsData => Word256::splat(index),
            DataPattern::Custom(word) => word,
        }
    }

    /// The complementary pattern (each word inverted), useful for
    /// march-style test pairs.
    #[must_use]
    pub fn complement(self) -> DataPattern {
        match self {
            DataPattern::AllOnes => DataPattern::AllZeros,
            DataPattern::AllZeros => DataPattern::AllOnes,
            DataPattern::Checkerboard => DataPattern::InverseCheckerboard,
            DataPattern::InverseCheckerboard => DataPattern::Checkerboard,
            DataPattern::WalkingOnes
            | DataPattern::Prbs { .. }
            | DataPattern::AddressAsData
            | DataPattern::Custom(_) => DataPattern::Custom(!self.word_at(0)),
        }
    }

    /// Fraction of one-bits the pattern writes (exactly, for the uniform
    /// patterns; in expectation for PRBS).
    #[must_use]
    pub fn ones_density(self) -> f64 {
        match self {
            DataPattern::AllOnes => 1.0,
            DataPattern::AllZeros => 0.0,
            DataPattern::Checkerboard
            | DataPattern::InverseCheckerboard
            | DataPattern::Prbs { .. } => 0.5,
            DataPattern::WalkingOnes => 4.0 / 256.0,
            DataPattern::AddressAsData => 0.5, // indeterminate; nominal
            DataPattern::Custom(word) => f64::from(word.count_ones()) / 256.0,
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPattern::AllOnes => write!(f, "all-1s"),
            DataPattern::AllZeros => write!(f, "all-0s"),
            DataPattern::Checkerboard => write!(f, "checkerboard"),
            DataPattern::InverseCheckerboard => write!(f, "inverse-checkerboard"),
            DataPattern::WalkingOnes => write!(f, "walking-1s"),
            DataPattern::Prbs { seed } => write!(f, "prbs({seed})"),
            DataPattern::AddressAsData => write!(f, "address-as-data"),
            DataPattern::Custom(_) => write!(f, "custom"),
        }
    }
}

/// One round of xorshift64* keyed by the input.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_patterns() {
        for i in [0u64, 1, 1000, u64::MAX] {
            assert_eq!(DataPattern::AllOnes.word_at(i), Word256::ONES);
            assert_eq!(DataPattern::AllZeros.word_at(i), Word256::ZERO);
            assert_eq!(DataPattern::Checkerboard.word_at(i).count_ones(), 128);
        }
    }

    #[test]
    fn checkerboards_complement_each_other() {
        let a = DataPattern::Checkerboard.word_at(5);
        let b = DataPattern::InverseCheckerboard.word_at(5);
        assert_eq!(a & b, Word256::ZERO);
        assert_eq!(a | b, Word256::ONES);
        assert_eq!(
            DataPattern::Checkerboard.complement(),
            DataPattern::InverseCheckerboard
        );
        assert_eq!(DataPattern::AllOnes.complement(), DataPattern::AllZeros);
    }

    #[test]
    fn walking_ones_rotates() {
        let w0 = DataPattern::WalkingOnes.word_at(0);
        let w1 = DataPattern::WalkingOnes.word_at(1);
        assert_eq!(w0.count_ones(), 4);
        assert_ne!(w0, w1);
        assert_eq!(w0, DataPattern::WalkingOnes.word_at(64)); // period 64
    }

    #[test]
    fn prbs_is_deterministic_and_varied() {
        let p = DataPattern::Prbs { seed: 9 };
        assert_eq!(p.word_at(3), p.word_at(3));
        assert_ne!(p.word_at(3), p.word_at(4));
        let q = DataPattern::Prbs { seed: 10 };
        assert_ne!(p.word_at(3), q.word_at(3));
        // Roughly half ones across a sample.
        let ones: u32 = (0..64).map(|i| p.word_at(i).count_ones()).sum();
        let density = f64::from(ones) / (64.0 * 256.0);
        assert!((0.45..0.55).contains(&density), "density {density}");
    }

    #[test]
    fn address_as_data_round_trips_index() {
        let w = DataPattern::AddressAsData.word_at(0xDEAD);
        assert_eq!(w.0[0], 0xDEAD);
        assert_eq!(w.0[3], 0xDEAD);
    }

    #[test]
    fn ones_density_values() {
        assert_eq!(DataPattern::AllOnes.ones_density(), 1.0);
        assert_eq!(DataPattern::AllZeros.ones_density(), 0.0);
        assert_eq!(DataPattern::Checkerboard.ones_density(), 0.5);
        assert_eq!(DataPattern::Custom(Word256::ONES).ones_density(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DataPattern::AllOnes.to_string(), "all-1s");
        assert_eq!(DataPattern::AllZeros.to_string(), "all-0s");
        assert_eq!(DataPattern::Prbs { seed: 3 }.to_string(), "prbs(3)");
    }
}
