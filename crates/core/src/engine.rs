//! The parallel sweep execution engine.
//!
//! Every measurement loop in this crate boils down to "run one macro program
//! per AXI port and collect per-port statistics". The engine executes that
//! shape either sequentially (the historical per-port loop) or sharded
//! across `std::thread::scope` workers, one disjoint pseudo-channel shard
//! per job. The two modes are bit-identical:
//!
//! - the fault injector is a pure function of `(seed, pc, offset, supply)` —
//!   it holds no RNG state a schedule could perturb;
//! - each shard owns its pseudo channel's array and counters outright, so no
//!   write of one worker is visible to another;
//! - any sampled randomness is keyed per work item via
//!   [`hbm_faults::pc_stream`], never drawn from shared state;
//! - results are reassembled in job order regardless of completion order.
//!
//! `workers` comes from the platform ([`crate::PlatformBuilder::workers`]);
//! the default of 1 keeps the exact sequential code path.

use hbm_device::{DeviceError, PcIndex, PcShard, PortId, Word256, WordOffset};
use hbm_faults::{
    CarryStats, FaultFieldMode, FaultInjector, FieldKernel, KernelBackend, MaskKernel,
};
use hbm_traffic::{DataPattern, MacroProgram, MemoryPort, PortStats, TrafficGenerator};
use hbm_units::Millivolts;

use crate::error::ExperimentError;
use crate::platform::Platform;
use crate::reliability::SweepCarry;
use crate::telemetry::{Telemetry, TelemetryEvent};

/// Fault-injecting access to one pseudo-channel shard: the parallel
/// counterpart of [`crate::UndervoltedPort`]. Writes go straight to the
/// shard's array; reads pass through the undervolting fault model at the
/// supply voltage snapshotted when the shard set was created.
#[derive(Debug)]
pub struct ShardPort<'a> {
    shard: PcShard<'a>,
    injector: &'a FaultInjector,
}

impl<'a> ShardPort<'a> {
    pub(crate) fn new(shard: PcShard<'a>, injector: &'a FaultInjector) -> Self {
        ShardPort { shard, injector }
    }

    /// The AXI port this shard models.
    #[must_use]
    pub fn port(&self) -> PortId {
        self.shard.port()
    }
}

impl MemoryPort for ShardPort<'_> {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.shard.write(offset, word)
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        let stored = self.shard.read(offset)?;
        Ok(self.injector.observe(
            stored,
            self.shard.port().direct_pc(),
            offset,
            self.shard.supply(),
        ))
    }
}

/// Runs one macro program per port and returns per-port statistics in job
/// order, using the platform's configured worker count.
///
/// With one worker this is exactly the sequential per-port loop over
/// [`Platform::port`]; with more workers the device is split into
/// per-pseudo-channel shards and the jobs run on scoped threads.
///
/// After every job joins, one [`TelemetryEvent::WorkerShardDone`] is emitted
/// per job in job order — never from inside a worker — so the trace is
/// identical at every worker count.
///
/// # Errors
///
/// The first device error in job order; a configuration error if a port
/// appears twice in a sharded batch (a port's shard can only be handed to
/// one job).
pub(crate) fn run_jobs(
    platform: &mut Platform,
    jobs: &[(PortId, MacroProgram)],
    telemetry: &Telemetry,
) -> Result<Vec<(PortId, PortStats)>, ExperimentError> {
    let results = run_jobs_inner(platform, jobs)?;
    for (port, stats) in &results {
        telemetry.emit(TelemetryEvent::WorkerShardDone {
            port: port.as_u8(),
            words: stats.words_written + stats.words_read,
        });
    }
    Ok(results)
}

fn run_jobs_inner(
    platform: &mut Platform,
    jobs: &[(PortId, MacroProgram)],
) -> Result<Vec<(PortId, PortStats)>, ExperimentError> {
    let workers = platform.workers();
    if workers <= 1 {
        let mut results = Vec::with_capacity(jobs.len());
        for (port, program) in jobs {
            let mut tg = TrafficGenerator::new(*port);
            let stats = tg
                .run(program, &mut platform.port(*port))
                .map_err(ExperimentError::from)?;
            results.push((*port, stats));
        }
        return Ok(results);
    }

    let shards = platform.shard_ports()?;
    let mut slots: Vec<Option<ShardPort<'_>>> = shards.into_iter().map(Some).collect();
    let mut sharded = Vec::with_capacity(jobs.len());
    for (port, program) in jobs {
        let access = slots
            .get_mut(usize::from(port.as_u8()))
            .and_then(Option::take)
            .ok_or_else(|| {
                ExperimentError::config(format!(
                    "port {} appears more than once in a sharded batch",
                    port.as_u8()
                ))
            })?;
        sharded.push((*port, program, access));
    }
    hbm_traffic::run_sharded(sharded, workers).map_err(ExperimentError::from)
}

/// Every checked word's stuck-at masks for one port at one voltage — the
/// batch/pattern reuse working set of the reliability tester's cached-mask
/// mode. Built once per voltage point by [`build_mask_sets`], then replayed
/// across every batch pass and data pattern via [`PortMasks::stats_for`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PortMasks {
    port: PortId,
    set: MaskSet,
}

#[derive(Debug, Clone, PartialEq)]
enum MaskSet {
    /// Sequential walk over `0..words`: only the faulty words are stored —
    /// the injector's skip-sampling enumeration never visits the rest.
    Sequential {
        words: u64,
        faulty: Vec<(WordOffset, Word256, Word256)>,
    },
    /// Sampled mode: every drawn offset in draw order, duplicates kept —
    /// the traffic path checks duplicates per occurrence, so must the
    /// replay.
    Sampled {
        samples: Vec<(u64, Word256, Word256)>,
    },
    /// Dense-regime streaming fold: the per-pattern pass statistics were
    /// computed *during* enumeration and no masks are stored at all, so
    /// the working set stays O(patterns) even when nearly every word of
    /// the range is faulty. Mask sums commute, so the fold is identical to
    /// replaying a collected vector.
    Streamed {
        words: u64,
        stats: Vec<(DataPattern, PortStats)>,
    },
}

impl PortMasks {
    /// The AXI port this working set covers.
    pub(crate) fn port(&self) -> PortId {
        self.port
    }

    /// Number of word checks one batch pass performs against this set.
    pub(crate) fn words_checked(&self) -> u64 {
        match &self.set {
            MaskSet::Sequential { words, .. } | MaskSet::Streamed { words, .. } => *words,
            MaskSet::Sampled { samples } => samples.len() as u64,
        }
    }

    /// The port statistics one full write/read-back pass would produce
    /// under `pattern` — bit-identical to running the traffic generator,
    /// by the determinism of the stuck-at model.
    pub(crate) fn stats_for(&self, pattern: DataPattern) -> PortStats {
        if let MaskSet::Streamed { stats, .. } = &self.set {
            return stats
                .iter()
                .find(|(p, _)| *p == pattern)
                .map(|(_, s)| *s)
                .expect("pattern folded at build time");
        }
        let mut stats = PortStats {
            words_written: self.words_checked(),
            words_read: self.words_checked(),
            ..PortStats::default()
        };
        match &self.set {
            MaskSet::Sequential { faulty, .. } => {
                for &(offset, s0, s1) in faulty {
                    tally(&mut stats, pattern.word_at(offset.0), s0, s1);
                }
            }
            MaskSet::Sampled { samples } => {
                for &(offset, s0, s1) in samples {
                    tally(&mut stats, pattern.word_at(offset), s0, s1);
                }
            }
            MaskSet::Streamed { .. } => unreachable!("handled above"),
        }
        stats
    }
}

/// Folds one word's masks into the pass statistics exactly the way the
/// traffic generator's read-check does.
fn tally(stats: &mut PortStats, expected: Word256, stuck0: Word256, stuck1: Word256) {
    let observed = expected.with_stuck_bits(stuck0, stuck1);
    if observed != expected {
        stats.faulty_words += 1;
        let (f10, f01) = observed.flips_from(expected);
        stats.flips_1to0 += u64::from(f10);
        stats.flips_0to1 += u64::from(f01);
    }
}

/// Above this predicted fraction of faulty words, a sequential build folds
/// its per-pattern statistics during enumeration ([`MaskSet::Streamed`])
/// instead of collecting a mask vector that would rival the size of the
/// scanned range itself. The prediction comes from the injector's tile
/// cache ([`FaultInjector::expected_active_fraction`]), so the choice is
/// made before enumerating anything.
const STREAM_DENSITY_THRESHOLD: f64 = 0.5;

/// Folds a stream of faulty-word masks into one [`PortStats`] per pattern
/// without storing any mask: the streamed counterpart of replaying a
/// collected vector through [`PortMasks::stats_for`]. The fold is a sum of
/// per-word contributions, so it is independent of enumeration order.
fn streamed_stats<F>(words: u64, patterns: &[DataPattern], for_each: F) -> MaskSet
where
    F: FnOnce(&mut dyn FnMut(WordOffset, Word256, Word256)),
{
    let mut stats: Vec<(DataPattern, PortStats)> = patterns
        .iter()
        .map(|&pattern| {
            (
                pattern,
                PortStats {
                    words_written: words,
                    words_read: words,
                    ..PortStats::default()
                },
            )
        })
        .collect();
    for_each(&mut |offset, s0, s1| {
        for (pattern, port_stats) in &mut stats {
            tally(port_stats, pattern.word_at(offset.0), s0, s1);
        }
    });
    MaskSet::Streamed { words, stats }
}

/// Builds one sequential-walk working set, picking between the sparse
/// collected representation and the dense streaming fold by predicted
/// fault density.
fn build_sequential(
    kernel: FieldKernel<'_>,
    pc: PcIndex,
    words: u64,
    voltage: Millivolts,
    patterns: &[DataPattern],
) -> MaskSet {
    if kernel.expected_active_fraction(pc, voltage) > STREAM_DENSITY_THRESHOLD {
        return streamed_stats(words, patterns, |fold| {
            kernel.for_each_faulty_word(pc, 0..words, voltage, fold);
        });
    }
    MaskSet::Sequential {
        words,
        faulty: kernel.faulty_words(pc, 0..words, voltage),
    }
}

/// Builds the cached-mask working sets for one voltage point, one per port,
/// fanning the per-port kernel invocations across the platform's worker
/// threads (the injector is `Sync`; its tile cache is shared). Results come
/// back in `ports` order regardless of scheduling, and one
/// [`TelemetryEvent::WorkerShardDone`] is emitted per port in that order
/// after all builders join — so the trace is identical at every worker
/// count.
///
/// `fault_field` and `backend` pick the [`MaskKernel`] that supplies the
/// masks (all backends are bit-identical, so `backend` only affects speed);
/// `patterns` is needed up front because dense-regime sequential builds
/// fold their per-pattern statistics during enumeration (streaming mode)
/// instead of collecting masks.
///
/// # Errors
///
/// [`DeviceError::PortDisabled`] if a scoped port is disabled — matching
/// what the traffic path's first AXI access would report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_mask_sets(
    platform: &Platform,
    ports: &[PortId],
    words: u64,
    sample_words: Option<u64>,
    voltage: Millivolts,
    fault_field: FaultFieldMode,
    backend: KernelBackend,
    patterns: &[DataPattern],
    telemetry: &Telemetry,
) -> Result<Vec<PortMasks>, ExperimentError> {
    for &port in ports {
        if !platform.device().ports().is_enabled(port) {
            return Err(DeviceError::PortDisabled {
                index: port.as_u8(),
            }
            .into());
        }
    }
    let kernel = platform.injector().kernel(fault_field, backend);
    let seed = platform.seed();
    let build = move |port: PortId| -> PortMasks {
        let pc = port.direct_pc();
        let set = match sample_words {
            None => build_sequential(kernel, pc, words, voltage, patterns),
            Some(samples) => MaskSet::Sampled {
                samples: hbm_faults::stream::sample_offsets(seed, voltage, pc, samples, words)
                    .into_iter()
                    .map(|w| {
                        let (s0, s1) = kernel.masks(pc, WordOffset(w), voltage);
                        (w, s0, s1)
                    })
                    .collect(),
            },
        };
        PortMasks { port, set }
    };
    let workers = platform.workers().min(ports.len()).max(1);
    let sets: Vec<PortMasks> = if workers <= 1 {
        ports.iter().map(|&p| build(p)).collect()
    } else {
        let chunk = ports.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ports
                .chunks(chunk)
                .map(|slice| {
                    let build = &build;
                    scope.spawn(move || slice.iter().map(|&p| build(p)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("mask builder thread panicked"))
                .collect()
        })
    };
    for set in &sets {
        telemetry.emit(TelemetryEvent::WorkerShardDone {
            port: set.port().as_u8(),
            words: set.words_checked(),
        });
    }
    Ok(sets)
}

/// The incremental counterpart of [`build_mask_sets`] for the coupled
/// fault field: advances each port's carried faulty-word working set to
/// `voltage` — re-enumerating only words whose masks changed since the
/// previous point — and folds the carried masks straight into per-pattern
/// [`MaskSet::Streamed`] statistics, so no point ever materializes a mask
/// vector. A port with no carry yet (or a carry over a different word
/// range) is rebuilt from scratch, accounted as `activated`.
///
/// The resulting statistics are bit-identical to a from-scratch
/// [`build_mask_sets`] at the same voltage: the carry's masks are exact
/// ([`MaskKernel::carry_advance`] guarantees it, for every backend) and the
/// fold is the same sum.
/// Ports are processed sequentially — the carry is mutable shared state,
/// and the advance's per-port cost is proportional to the mask *delta*,
/// which is exactly the work parallelism would amortize away.
///
/// Returns the mask sets in `ports` order plus the aggregated carry
/// accounting for the point.
///
/// # Errors
///
/// [`DeviceError::PortDisabled`] if a scoped port is disabled, exactly
/// like [`build_mask_sets`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_mask_sets_carried(
    platform: &Platform,
    ports: &[PortId],
    words: u64,
    voltage: Millivolts,
    carry: &mut SweepCarry,
    backend: KernelBackend,
    patterns: &[DataPattern],
    telemetry: &Telemetry,
) -> Result<(Vec<PortMasks>, CarryStats), ExperimentError> {
    for &port in ports {
        if !platform.device().ports().is_enabled(port) {
            return Err(DeviceError::PortDisabled {
                index: port.as_u8(),
            }
            .into());
        }
    }
    let kernel = platform
        .injector()
        .kernel(FaultFieldMode::MonotoneCoupled, backend);
    let mut total = CarryStats::default();
    let mut sets = Vec::with_capacity(ports.len());
    for &port in ports {
        let pc = port.direct_pc();
        let id = port.as_u8();
        let existing = carry
            .carries
            .iter()
            .position(|(p, c)| *p == id && c.words() == (0..words));
        let (stats, index) = match existing {
            Some(index) => (
                kernel.carry_advance(&mut carry.carries[index].1, voltage),
                index,
            ),
            None => {
                // Also drops a stale same-port carry over a different
                // word range — it can never be advanced to this one.
                carry.carries.retain(|(p, _)| *p != id);
                let (fresh, stats) = kernel.carry_start(pc, 0..words, voltage);
                carry.carries.push((id, fresh));
                (stats, carry.carries.len() - 1)
            }
        };
        total.absorb(stats);
        let pc_carry = &carry.carries[index].1;
        let set = streamed_stats(words, patterns, |fold| pc_carry.for_each_mask(fold));
        sets.push(PortMasks { port, set });
    }
    for set in &sets {
        telemetry.emit(TelemetryEvent::WorkerShardDone {
            port: set.port().as_u8(),
            words: set.words_checked(),
        });
    }
    Ok((sets, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_for(
        platform: &Platform,
        words: u64,
        pattern: DataPattern,
    ) -> Vec<(PortId, MacroProgram)> {
        (0..platform.geometry().total_pcs())
            .map(|i| {
                (
                    PortId::new(i).unwrap(),
                    MacroProgram::write_then_check(0..words, pattern),
                )
            })
            .collect()
    }

    fn run_at(workers: usize, voltage: Millivolts) -> Vec<(PortId, PortStats)> {
        let mut platform = Platform::builder().seed(7).workers(workers).build();
        platform.set_voltage(voltage).unwrap();
        let jobs = jobs_for(&platform, 128, DataPattern::AllOnes);
        run_jobs(&mut platform, &jobs, Telemetry::disabled()).unwrap()
    }

    #[test]
    fn sequential_and_parallel_agree_with_faults() {
        let sequential = run_at(1, Millivolts(860));
        assert_eq!(sequential.len(), 32);
        assert!(
            sequential.iter().any(|(_, s)| s.total_flips() > 0),
            "860 mV must show faults"
        );
        for workers in [2, 4, 8] {
            assert_eq!(
                sequential,
                run_at(workers, Millivolts(860)),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn duplicate_port_rejected_in_sharded_mode() {
        let mut platform = Platform::builder().seed(7).workers(4).build();
        let port = PortId::new(3).unwrap();
        let program = MacroProgram::write_then_check(0..4, DataPattern::AllOnes);
        let jobs = vec![(port, program.clone()), (port, program)];
        let err = run_jobs(&mut platform, &jobs, Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, ExperimentError::Config { .. }));
    }

    #[test]
    fn mask_sets_match_traffic_generator_stats() {
        let mut platform = Platform::builder().seed(7).build();
        platform.set_voltage(Millivolts(860)).unwrap();
        let ports: Vec<PortId> = (0..4).map(|i| PortId::new(i).unwrap()).collect();
        for sample_words in [None, Some(96)] {
            let sets = build_mask_sets(
                &platform,
                &ports,
                128,
                sample_words,
                Millivolts(860),
                FaultFieldMode::PerVoltage,
                KernelBackend::Auto,
                &[DataPattern::AllOnes, DataPattern::Checkerboard],
                Telemetry::disabled(),
            )
            .unwrap();
            for (set, &port) in sets.iter().zip(&ports) {
                assert_eq!(set.port(), port);
                for pattern in [DataPattern::AllOnes, DataPattern::Checkerboard] {
                    let program = match sample_words {
                        None => MacroProgram::write_then_check(0..128, pattern),
                        Some(n) => {
                            let offsets = hbm_faults::stream::sample_offsets(
                                platform.seed(),
                                Millivolts(860),
                                port.direct_pc(),
                                n,
                                128,
                            );
                            MacroProgram::write_then_check_at(&offsets, pattern)
                        }
                    };
                    let mut tg = TrafficGenerator::new(port);
                    let stats = tg.run(&program, &mut platform.port(port)).unwrap();
                    assert_eq!(set.stats_for(pattern), stats, "port {port:?} {pattern}");
                }
            }
        }
    }

    #[test]
    fn mask_sets_are_worker_count_invariant() {
        let sets_with = |workers: usize| {
            let mut platform = Platform::builder().seed(7).workers(workers).build();
            platform.set_voltage(Millivolts(880)).unwrap();
            let ports: Vec<PortId> = (0..platform.geometry().total_pcs())
                .map(|i| PortId::new(i).unwrap())
                .collect();
            build_mask_sets(
                &platform,
                &ports,
                256,
                None,
                Millivolts(880),
                FaultFieldMode::PerVoltage,
                KernelBackend::Auto,
                &[DataPattern::AllOnes],
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let sequential = sets_with(1);
        assert!(sequential.iter().any(|s| s.words_checked() == 256));
        for workers in [3usize, 8] {
            assert_eq!(sequential, sets_with(workers), "{workers} workers");
        }
    }

    #[test]
    fn mask_sets_reject_disabled_ports() {
        let mut platform = Platform::builder().seed(7).build();
        platform.enable_ports(4);
        platform.set_voltage(Millivolts(900)).unwrap();
        let ports = [PortId::new(6).unwrap()];
        let err = build_mask_sets(
            &platform,
            &ports,
            64,
            None,
            Millivolts(900),
            FaultFieldMode::PerVoltage,
            KernelBackend::Auto,
            &[DataPattern::AllOnes],
            Telemetry::disabled(),
        )
        .unwrap_err();
        assert!(err.to_string().contains('6'), "{err}");
    }

    #[test]
    fn parallel_mode_updates_device_stats_like_sequential() {
        let total_stats = |workers: usize| {
            let mut platform = Platform::builder().seed(7).workers(workers).build();
            platform.set_voltage(Millivolts(900)).unwrap();
            let jobs = jobs_for(&platform, 64, DataPattern::Checkerboard);
            run_jobs(&mut platform, &jobs, Telemetry::disabled()).unwrap();
            platform.device().total_stats()
        };
        assert_eq!(total_stats(1), total_stats(8));
    }
}
