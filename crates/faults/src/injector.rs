//! The fault injector: turns the statistical model into concrete stuck-bit
//! masks for every word of the device, deterministically.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use hbm_device::{BankId, HbmGeometry, PcIndex, Word256, WordOffset};
use hbm_units::{Celsius, Millivolts, Volts};
use serde::{Deserialize, Serialize};

use crate::field::{CarryEntry, CarryStats, PcSweepCarry, PendingBits, PendingClass};
use crate::hash::{combine, gate_key, key_unit, unit, unit_cutoff, unit_pair};
use crate::kernel::{bitsliced, BackendSel, InstructionSet};
use crate::params::FaultModelParams;
use crate::variation::ShiftTable;

/// The failure polarity of a faulty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPolarity {
    /// The bit reads 0 regardless of the stored value (observed as a 1→0
    /// flip when a 1 was written).
    StuckAtZero,
    /// The bit reads 1 regardless of the stored value (observed as a 0→1
    /// flip when a 0 was written).
    StuckAtOne,
}

/// Deterministic fault injector.
///
/// For every `(pseudo channel, word offset, bit)` and supply voltage, the
/// injector decides whether the bit is stuck and in which polarity, as a
/// pure function of the device seed. Key properties (all property-tested):
///
/// - **guardband**: no faults at or above V_min;
/// - **determinism**: identical masks for identical inputs;
/// - **monotonicity**: the faulty-bit set only grows as voltage drops;
/// - **exact rates**: the expected per-bit fault probability equals
///   `share_π × c_π(v_eff)` per polarity class.
///
/// # Performance
///
/// The query kernel is a four-level pipeline; each level removes work the
/// level below would otherwise repeat. With `W` words per pseudo channel,
/// `T` (PC, bank, row-region) tiles and `F` gated words at the queried
/// voltage:
///
/// 1. **Region-tile probability cache.** The local variation shift — and
///    therefore the class probabilities `(c0, c1)`, the word gates
///    `p_any = 1 − (1 − s·c)^256` and the conditional per-bit thresholds
///    `c / p_any` — is constant within a tile. They are computed once per
///    `(PC, voltage, temperature)` into a `T`-entry table (`O(T)` response
///    curve evaluations instead of `O(W)`) and invalidated when the
///    temperature changes. A per-word query is then a shift-and-mask tile
///    lookup.
/// 2. **Geometric skip enumeration of gated words.** The per-word gate
///    draws `unit(hash(seed, pc, offset, class))` never depend on voltage —
///    only the threshold `p_any` does. Per class and tile, the injector
///    keeps the words sorted by their gate draw (a voltage-independent,
///    build-once index), so the gated set at any voltage is a prefix found
///    by binary search: `O(T·log W + F)` per range scan instead of `O(W)`
///    gate hashes. Within the sorted prefix, the offset gaps between
///    consecutive gated words follow the geometric distribution implied by
///    `p_any` — this is the deterministic, replayable equivalent of drawing
///    skip distances from that distribution, so fault-free and low-fault
///    voltages cost `O(F)`, not `O(W)`. (Geometries too large to index fall
///    back to a per-word gate walk that still uses level 1.)
/// 3. **Density-adaptive dispatch.** Per tile, the backend selector
///    ([`crate::KernelBackend`], resolved to a
///    [`crate::kernel`]-internal choice through the runtime
///    [`crate::InstructionSet`] probe) compares the tile's word-gate
///    probability against a density threshold. Sparse tiles — the safe
///    region and the fault onset — keep the scalar per-bit enumeration of
///    level 4a. Dense tiles, where most words gate open and per-bit work
///    dominates, switch to the bit-sliced generation of level 4b. `Scalar`
///    and `BitSliced` force one arm; `Auto` applies the threshold.
/// 4. **Per-bit mask generation**, in one of two bit-identical arms:
///    - **(a) scalar enumeration**: each of the 256 bits hashes and tests
///      its class-conditional draw against `c / p_any` as an `f64`
///      comparison. Because `c ↦ c/(1−(1−sc)^256)` is increasing (chord
///      slope of a concave function through the origin), monotonicity in
///      voltage is preserved and the per-bit marginal probability is
///      exactly `s·c`.
///    - **(b) bit-sliced generation**: the word's hash prefix is combined
///      once, the per-tile `f64` thresholds are converted to their exact
///      integer images by [`crate::hash::unit_cutoff`], and the 256 bits
///      are produced a 64-bit lane at a time as `u64` bitplanes — one
///      integer mix and two integer compares per bit, with an AVX2 tier
///      (four lanes per instruction) behind the runtime feature probe.
///      The cutoffs are exact, so equality with arm (a) is a theorem,
///      enforced end to end by the `bitsliced_matches_scalar` proptests.
///
/// A range scan therefore costs `O(T·log W + F·256)` after the `O(W log W)`
/// one-time index build, and a single-word query costs the tile lookup plus
/// two gate hashes. All four levels sit behind the [`crate::MaskKernel`]
/// trait ([`FaultInjector::kernel`] constructs one); the pre-cache per-word
/// oracle is kept as [`crate::MaskKernel::reference_masks`] (selected at the
/// experiment layer by `ExecutionMode::Traffic`); property tests assert all
/// paths are bit-identical.
///
/// # Examples
///
/// ```
/// use hbm_device::{HbmGeometry, PcIndex, Word256, WordOffset};
/// use hbm_faults::{FaultInjector, FaultModelParams};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_device::DeviceError> {
/// let injector = FaultInjector::new(
///     FaultModelParams::date21(),
///     HbmGeometry::vcu128_reduced(),
///     99,
/// );
/// let pc = PcIndex::new(0)?;
/// let (stuck0, stuck1) = injector.stuck_masks(pc, WordOffset(0), Millivolts(850));
/// // Masks never overlap: a bit fails towards exactly one value.
/// assert!((stuck0 & stuck1).is_zero());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    params: FaultModelParams,
    geometry: HbmGeometry,
    seed: u64,
    temperature: Celsius,
    shift_table: ShiftTable,
    grid: TileGrid,
    /// Per-PC tile probability tables for the most recent
    /// `(voltage, temperature)`; rebuilt lazily on any mismatch.
    tile_cache: RwLock<Vec<Option<Arc<TileTable>>>>,
    /// Per-PC sorted gate-draw indexes; voltage- and temperature-free.
    gate_index: RwLock<Vec<Option<Arc<GateIndex>>>>,
    /// Per-PC coupled-field activation indexes (per-class sorted minimum
    /// bit thresholds); voltage- and temperature-free.
    coupled_index: RwLock<Vec<Option<Arc<CoupledIndex>>>>,
    /// Lifetime tile-table lookups served from `tile_cache`.
    cache_hits: AtomicU64,
    /// Lifetime tile-table lookups that had to rebuild the table.
    cache_misses: AtomicU64,
    /// Lifetime range-scan tiles dispatched to the bit-sliced arm.
    dense_tiles_bitsliced: AtomicU64,
    /// Lifetime range-scan tiles dispatched to the scalar arm.
    sparse_tiles_scalar: AtomicU64,
}

/// Domain-separation tags for the hash streams.
const TAG_GATE0: u64 = 0x6761_7430;
const TAG_GATE1: u64 = 0x6761_7431;
const TAG_BIT: u64 = 0x6269_7400;
/// Coupled-field per-bit persistent thresholds ("cbit"); a domain distinct
/// from `TAG_BIT` so the two fault fields are statistically independent.
const TAG_CBIT: u64 = 0x6362_6974;

/// Largest pseudo channel (in words) the gate index is built for; larger
/// geometries fall back to per-word gate hashing (still tile-cached).
const MAX_INDEXED_WORDS_PER_PC: u64 = 1 << 16;

/// Largest word range a [`PcSweepCarry`] keeps bit-granular pending
/// thresholds for. The bit tier stores every still-clean bit of the range
/// (≈2 KiB per word transiently, shrinking to zero as the sweep saturates);
/// above this cap the carry falls back to word-granular refresh tracking,
/// which stays O(entries) in memory at any scale.
const MAX_BIT_CARRY_WORDS: u64 = 4096;

/// Exact reconstruction of a pending bit's threshold from its stored raw
/// 32-bit key — the identical `f64` that [`unit_pair`] produced when the
/// bit was first hashed, so the prefix-drain comparison and the per-bit
/// fault test are the same comparison on the same value.
fn threshold_from_raw(raw: u32) -> f64 {
    unit_pair(u64::from(raw) << 32).1
}

/// Exact reconstruction of a bit-sliced minimum raw key as the `f64`
/// threshold the scalar kernel would have tracked (`INFINITY` when the
/// class was exhausted, encoded as a key above `u32::MAX`).
fn raw_min_threshold(min: u64) -> f64 {
    u32::try_from(min).map_or(f64::INFINITY, threshold_from_raw)
}

/// One tile's thresholds converted to their exact integer images for the
/// bit-sliced arm: the polarity-class cutoff and the two per-class fault
/// cutoffs ([`unit_cutoff`] images of the tile's `f64` probabilities).
#[derive(Debug, Clone, Copy)]
struct TileCuts {
    class_cut: u64,
    cut0: u64,
    cut1: u64,
}

/// The (bank, row-region) tiling of a pseudo channel: the granularity at
/// which the variation shift — and so every derived probability — is
/// constant. Mirrors the bit layout of [`WordOffset::decode`].
#[derive(Debug, Clone, Copy)]
struct TileGrid {
    col_bits: u32,
    bank_bits: u32,
    region_rows: u32,
    regions_per_bank: u32,
    words_per_pc: u64,
    tile_count: usize,
}

impl TileGrid {
    fn new(geometry: HbmGeometry, region_rows: u32) -> Self {
        let region_rows = region_rows.max(1);
        let regions_per_bank = (geometry.rows_per_bank() - 1) / region_rows + 1;
        let banks = 1u32 << geometry.bank_bits();
        TileGrid {
            col_bits: geometry.col_bits(),
            bank_bits: geometry.bank_bits(),
            region_rows,
            regions_per_bank,
            words_per_pc: geometry.words_per_pc(),
            tile_count: (banks * regions_per_bank) as usize,
        }
    }

    /// Tile index of a word offset (same decode as [`WordOffset::decode`]).
    fn tile_of(&self, offset: u64) -> usize {
        assert!(
            offset < self.words_per_pc,
            "word offset {} out of range for geometry ({} words/pc)",
            offset,
            self.words_per_pc
        );
        let bank = ((offset >> self.col_bits) & ((1 << self.bank_bits) - 1)) as u32;
        let row = (offset >> (self.col_bits + self.bank_bits)) as u32;
        (bank * self.regions_per_bank + row / self.region_rows) as usize
    }

    /// Inverse of [`TileGrid::tile_of`]'s tile numbering.
    fn bank_and_region(&self, tile: usize) -> (BankId, u32) {
        let tile = tile as u32;
        (
            BankId((tile / self.regions_per_bank) as u16),
            tile % self.regions_per_bank,
        )
    }
}

/// Everything the bit-enumeration kernel needs about one tile at one
/// `(voltage, temperature)`.
#[derive(Debug, Clone, Copy)]
struct TileProbs {
    /// Class-conditional fault probabilities.
    c0: f64,
    c1: f64,
    /// Word-level any-fault gate probabilities, `1 − (1 − s·c)^256`.
    p_any0: f64,
    p_any1: f64,
    /// Conditional per-bit thresholds within a gated word, `(c/p_any).min(1)`.
    cond0: f64,
    cond1: f64,
}

/// One pseudo channel's tile probabilities at a fixed voltage and
/// temperature.
#[derive(Debug)]
struct TileTable {
    voltage: Millivolts,
    temperature: Celsius,
    tiles: Vec<TileProbs>,
}

/// One polarity class's gate draws for a pseudo channel, grouped by tile and
/// sorted by draw so the gated words at any voltage form a binary-searchable
/// prefix.
#[derive(Debug)]
struct GateClassIndex {
    /// Slice bounds of each tile in `keys`/`offsets` (length `tiles + 1`).
    starts: Vec<u32>,
    /// 53-bit gate keys (see [`gate_key`]), ascending within each tile.
    keys: Vec<u64>,
    /// Word offsets, parallel to `keys`.
    offsets: Vec<u32>,
}

impl GateClassIndex {
    /// The offsets of tile `tile` whose gate draw passes `p_any`.
    fn gated(&self, tile: usize, p_any: f64) -> &[u32] {
        let lo = self.starts[tile] as usize;
        let hi = self.starts[tile + 1] as usize;
        let n = self.keys[lo..hi].partition_point(|&k| key_unit(k) < p_any);
        &self.offsets[lo..lo + n]
    }
}

/// Both classes' gate indexes for one pseudo channel.
#[derive(Debug)]
struct GateIndex {
    class0: GateClassIndex,
    class1: GateClassIndex,
}

/// One polarity class of the coupled field's word-activation index for a
/// pseudo channel: every word's minimum per-bit threshold, grouped by tile
/// and sorted, so the words with at least one faulty bit of the class at
/// probability `c` form a binary-searchable prefix. The per-bit fault test
/// and the prefix predicate are the *same* comparison (`threshold < c`),
/// so prefix membership is exact — no conditional rescaling, no recheck.
#[derive(Debug)]
struct CoupledClassIndex {
    /// Slice bounds of each tile in `thresholds`/`offsets` (length
    /// `tiles + 1`).
    starts: Vec<u32>,
    /// Per-word minimum bit thresholds, ascending within each tile.
    thresholds: Vec<f64>,
    /// Word offsets, parallel to `thresholds`.
    offsets: Vec<u32>,
    /// Minimum bit threshold indexed by word offset (activation lookup).
    by_word: Vec<f64>,
}

impl CoupledClassIndex {
    /// The offsets of tile `tile` with at least one faulty bit of this
    /// class at class probability `c`.
    fn active(&self, tile: usize, c: f64) -> &[u32] {
        let lo = self.starts[tile] as usize;
        let hi = self.starts[tile + 1] as usize;
        let n = self.thresholds[lo..hi].partition_point(|&t| t < c);
        &self.offsets[lo..lo + n]
    }

    /// The offsets of tile `tile` whose first bit of this class activates
    /// as the class probability grows from `c_prev` to `c_next`.
    fn activated(&self, tile: usize, c_prev: f64, c_next: f64) -> &[u32] {
        let lo = self.starts[tile] as usize;
        let hi = self.starts[tile + 1] as usize;
        let slice = &self.thresholds[lo..hi];
        let a = slice.partition_point(|&t| t < c_prev);
        let b = slice.partition_point(|&t| t < c_next);
        &self.offsets[lo + a..lo + b.max(a)]
    }
}

/// Both classes' activation indexes for one pseudo channel.
#[derive(Debug)]
struct CoupledIndex {
    class0: CoupledClassIndex,
    class1: CoupledClassIndex,
}

impl Clone for FaultInjector {
    fn clone(&self) -> Self {
        FaultInjector {
            params: self.params.clone(),
            geometry: self.geometry,
            seed: self.seed,
            temperature: self.temperature,
            shift_table: self.shift_table.clone(),
            grid: self.grid,
            // Cached tables are immutable snapshots behind `Arc`s, so clones
            // share them cheaply; each clone invalidates independently (its
            // own locks), so diverging temperatures cannot cross-pollute.
            tile_cache: RwLock::new(self.tile_cache.read().expect("tile cache poisoned").clone()),
            gate_index: RwLock::new(self.gate_index.read().expect("gate index poisoned").clone()),
            coupled_index: RwLock::new(
                self.coupled_index
                    .read()
                    .expect("coupled index poisoned")
                    .clone(),
            ),
            cache_hits: AtomicU64::new(self.cache_hits.load(Ordering::Relaxed)),
            cache_misses: AtomicU64::new(self.cache_misses.load(Ordering::Relaxed)),
            dense_tiles_bitsliced: AtomicU64::new(
                self.dense_tiles_bitsliced.load(Ordering::Relaxed),
            ),
            sparse_tiles_scalar: AtomicU64::new(self.sparse_tiles_scalar.load(Ordering::Relaxed)),
        }
    }
}

impl FaultInjector {
    /// Creates an injector for a device geometry with a device seed (the
    /// seed identifies the simulated silicon specimen).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: FaultModelParams, geometry: HbmGeometry, seed: u64) -> Self {
        params.validate();
        let shift_table = ShiftTable::new(&params.variation, seed, geometry);
        let grid = TileGrid::new(geometry, params.variation.region_rows);
        let pcs = usize::from(geometry.total_pcs());
        FaultInjector {
            params,
            geometry,
            seed,
            temperature: Celsius::STUDY_AMBIENT,
            shift_table,
            grid,
            tile_cache: RwLock::new(vec![None; pcs]),
            gate_index: RwLock::new(vec![None; pcs]),
            coupled_index: RwLock::new(vec![None; pcs]),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            dense_tiles_bitsliced: AtomicU64::new(0),
            sparse_tiles_scalar: AtomicU64::new(0),
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &FaultModelParams {
        &self.params
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> HbmGeometry {
        self.geometry
    }

    /// The device seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The modelled operating temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Lifetime `(hits, misses)` of the region-tile probability cache.
    ///
    /// A hit serves a tile-table lookup from the cached
    /// `(voltage, temperature)` snapshot; a miss rebuilds the table. The
    /// split is scheduling-dependent under parallel engine workers (whoever
    /// reaches a pseudo channel first takes the miss), so it belongs in a
    /// metrics registry, never in a deterministic trace.
    #[must_use]
    pub fn tile_cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Lifetime `(dense, sparse)` kernel-dispatch decisions: range-scan and
    /// carry tiles sent to the bit-sliced arm vs the scalar arm.
    ///
    /// Like [`FaultInjector::tile_cache_stats`], the totals depend on how
    /// work was scheduled across engine workers, so they belong in a metrics
    /// registry, never in a deterministic trace.
    #[must_use]
    pub fn kernel_dispatch_stats(&self) -> (u64, u64) {
        (
            self.dense_tiles_bitsliced.load(Ordering::Relaxed),
            self.sparse_tiles_scalar.load(Ordering::Relaxed),
        )
    }

    /// Sets the operating temperature (the study keeps it at 35 ± 1 °C).
    ///
    /// Invalidates the region-tile probability cache: local shifts depend on
    /// temperature. The gate index survives — gate draws are functions of
    /// `(seed, PC, offset)` only.
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
        for slot in self
            .tile_cache
            .write()
            .expect("tile cache poisoned")
            .iter_mut()
        {
            *slot = None;
        }
    }

    /// Total local variation shift of a word's location, in volts.
    fn local_shift_volts(&self, pc: PcIndex, offset: WordOffset) -> f64 {
        let decoded = offset.decode(self.geometry);
        let var = &self.params.variation;
        self.shift_table.pc_shift_volts(pc)
            + var.bank_shift_volts(self.seed, pc, decoded.bank)
            + var.region_shift_volts(self.seed, pc, decoded.bank, decoded.row)
            + var.temperature_shift_volts(self.temperature)
    }

    /// The tile probability table of `pc` at `supply` (below the guardband
    /// only), from the cache or built on demand.
    fn tile_table(&self, pc: PcIndex, supply: Millivolts) -> Arc<TileTable> {
        debug_assert!(supply < self.params.landmarks.v_min);
        {
            let cache = self.tile_cache.read().expect("tile cache poisoned");
            if let Some(table) = &cache[pc.as_usize()] {
                if table.voltage == supply && table.temperature == self.temperature {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(table);
                }
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(self.build_tile_table(pc, supply));
        self.tile_cache.write().expect("tile cache poisoned")[pc.as_usize()] =
            Some(Arc::clone(&table));
        table
    }

    fn build_tile_table(&self, pc: PcIndex, supply: Millivolts) -> TileTable {
        let var = &self.params.variation;
        let v = supply.to_volts();
        let pc_shift = self.shift_table.pc_shift_volts(pc);
        let temp_shift = var.temperature_shift_volts(self.temperature);
        let s0 = self.params.stuck0_share;
        let s1 = self.params.stuck1_share();
        let tiles = (0..self.grid.tile_count)
            .map(|tile| {
                let (bank, region) = self.grid.bank_and_region(tile);
                // Exactly the per-word path's shift composition — the term
                // order matters, f64 addition is not associative.
                let shift = pc_shift
                    + var.bank_shift_volts(self.seed, pc, bank)
                    + var.region_shift_volts_by_index(self.seed, pc, bank, region)
                    + temp_shift;
                let (c0, c1) = self.params.class_probabilities(v, Volts(shift));
                let p_any0 = p_any(s0 * c0);
                let p_any1 = p_any(s1 * c1);
                TileProbs {
                    c0,
                    c1,
                    p_any0,
                    p_any1,
                    cond0: if p_any0 > 0.0 {
                        (c0 / p_any0).min(1.0)
                    } else {
                        0.0
                    },
                    cond1: if p_any1 > 0.0 {
                        (c1 / p_any1).min(1.0)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        TileTable {
            voltage: supply,
            temperature: self.temperature,
            tiles,
        }
    }

    /// The gate index of `pc`, or `None` for geometries too large to index.
    fn pc_gate_index(&self, pc: PcIndex) -> Option<Arc<GateIndex>> {
        if self.grid.words_per_pc > MAX_INDEXED_WORDS_PER_PC {
            return None;
        }
        {
            let cache = self.gate_index.read().expect("gate index poisoned");
            if let Some(index) = &cache[pc.as_usize()] {
                return Some(Arc::clone(index));
            }
        }
        let index = Arc::new(GateIndex {
            class0: self.build_class_index(pc, TAG_GATE0),
            class1: self.build_class_index(pc, TAG_GATE1),
        });
        self.gate_index.write().expect("gate index poisoned")[pc.as_usize()] =
            Some(Arc::clone(&index));
        Some(index)
    }

    fn build_class_index(&self, pc: PcIndex, tag: u64) -> GateClassIndex {
        let pcu = u64::from(pc.as_u8());
        let mut entries: Vec<(u32, u64, u32)> = (0..self.grid.words_per_pc)
            .map(|w| {
                let tile = self.grid.tile_of(w) as u32;
                (tile, gate_key(combine(&[self.seed, pcu, w, tag])), w as u32)
            })
            .collect();
        entries.sort_unstable();
        let mut starts = vec![0u32; self.grid.tile_count + 1];
        for &(tile, _, _) in &entries {
            starts[tile as usize + 1] += 1;
        }
        let mut acc = 0u32;
        for s in &mut starts {
            acc += *s;
            *s = acc;
        }
        GateClassIndex {
            starts,
            keys: entries.iter().map(|&(_, key, _)| key).collect(),
            offsets: entries.iter().map(|&(_, _, w)| w).collect(),
        }
    }

    /// Class-conditional fault probabilities `(c_stuck0, c_stuck1)` at a
    /// location for a supply voltage, after guardband gating.
    #[must_use]
    pub fn class_probabilities(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (f64, f64) {
        if supply >= self.params.landmarks.v_min {
            return (0.0, 0.0);
        }
        let table = self.tile_table(pc, supply);
        let probs = table.tiles[self.grid.tile_of(offset.0)];
        (probs.c0, probs.c1)
    }

    /// Reference implementation of [`FaultInjector::class_probabilities`]
    /// that recomputes the variation shift and response curves per word
    /// instead of consulting the tile cache. Internal validation oracle for
    /// the cached kernel, reachable through
    /// [`crate::MaskKernel::reference_masks`].
    #[must_use]
    pub(crate) fn class_probabilities_per_word(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (f64, f64) {
        if supply >= self.params.landmarks.v_min {
            return (0.0, 0.0);
        }
        let v = supply.to_volts();
        let shift = self.local_shift_volts(pc, offset);
        self.params.class_probabilities(v, Volts(shift))
    }

    /// Computes the stuck-at masks of one word at a supply voltage:
    /// `(stuck-at-0 mask, stuck-at-1 mask)`. The masks are disjoint.
    #[must_use]
    pub fn stuck_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        self.stuck_masks_sel(pc, offset, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::stuck_masks`]: the single-word
    /// entry point of [`crate::MaskKernel::masks`]. Single-word queries do
    /// not touch the dispatch counters — those track range-scan tiles.
    pub(crate) fn stuck_masks_sel(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (Word256, Word256) {
        if supply >= self.params.landmarks.v_min {
            return (Word256::ZERO, Word256::ZERO);
        }
        let table = self.tile_table(pc, supply);
        let probs = table.tiles[self.grid.tile_of(offset.0)];
        let plan = sel
            .bitsliced_for_tile(probs.p_any0.max(probs.p_any1))
            .then(|| self.tile_cuts(&probs, false));
        self.masks_from_probs_sel(pc, offset.0, probs, plan, sel.isa())
    }

    /// Reference per-word implementation of [`FaultInjector::stuck_masks`]:
    /// the pre-cache kernel, recomputing shift, probabilities and gates from
    /// scratch for every word. The scalar oracle every backend is tested
    /// against, reachable through [`crate::MaskKernel::reference_masks`].
    pub(crate) fn stuck_masks_per_word_impl(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        let (c0, c1) = self.class_probabilities_per_word(pc, offset, supply);
        if c0 == 0.0 && c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }

        let s0 = self.params.stuck0_share;
        let s1 = self.params.stuck1_share();
        // Word-level any-fault gates, one per polarity class.
        let p_any0 = p_any(s0 * c0);
        let p_any1 = p_any(s1 * c1);
        let base = &[self.seed, u64::from(pc.as_u8()), offset.0];
        let gate0 = p_any0 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE0])) < p_any0;
        let gate1 = p_any1 > 0.0 && unit(combine(&[base[0], base[1], base[2], TAG_GATE1])) < p_any1;
        if !gate0 && !gate1 {
            return (Word256::ZERO, Word256::ZERO);
        }

        // Conditional per-bit thresholds within a gated word.
        let cond0 = if gate0 { (c0 / p_any0).min(1.0) } else { 0.0 };
        let cond1 = if gate1 { (c1 / p_any1).min(1.0) } else { 0.0 };
        self.enumerate_bits(pc, offset.0, cond0, cond1)
    }

    /// The gate tests and bit enumeration for one word with its tile
    /// probabilities already in hand. `plan` carries the tile's integer
    /// cutoffs when the dispatch chose the bit-sliced arm; gate tests stay
    /// scalar either way (two hashes per word, identical in both arms).
    fn masks_from_probs_sel(
        &self,
        pc: PcIndex,
        w: u64,
        probs: TileProbs,
        plan: Option<TileCuts>,
        isa: InstructionSet,
    ) -> (Word256, Word256) {
        if probs.c0 == 0.0 && probs.c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }
        let pcu = u64::from(pc.as_u8());
        let gate0 =
            probs.p_any0 > 0.0 && unit(combine(&[self.seed, pcu, w, TAG_GATE0])) < probs.p_any0;
        let gate1 =
            probs.p_any1 > 0.0 && unit(combine(&[self.seed, pcu, w, TAG_GATE1])) < probs.p_any1;
        if !gate0 && !gate1 {
            return (Word256::ZERO, Word256::ZERO);
        }
        match plan {
            Some(cuts) => self.enumerate_bits_sliced(
                pc,
                w,
                if gate0 { cuts.cut0 } else { 0 },
                if gate1 { cuts.cut1 } else { 0 },
                cuts.class_cut,
                isa,
            ),
            None => self.enumerate_bits(
                pc,
                w,
                if gate0 { probs.cond0 } else { 0.0 },
                if gate1 { probs.cond1 } else { 0.0 },
            ),
        }
    }

    /// The scalar-arm [`FaultInjector::masks_from_probs_sel`].
    fn masks_from_probs(&self, pc: PcIndex, w: u64, probs: TileProbs) -> (Word256, Word256) {
        self.masks_from_probs_sel(pc, w, probs, None, InstructionSet::Portable)
    }

    /// One tile's probabilities as exact integer cutoffs for the bit-sliced
    /// arm: the per-voltage field compares bits against the conditional
    /// thresholds of gated words, the coupled field against the raw class
    /// probabilities.
    fn tile_cuts(&self, probs: &TileProbs, coupled: bool) -> TileCuts {
        let (t0, t1) = if coupled {
            (probs.c0, probs.c1)
        } else {
            (probs.cond0, probs.cond1)
        };
        TileCuts {
            class_cut: unit_cutoff(self.params.stuck0_share),
            cut0: unit_cutoff(t0),
            cut1: unit_cutoff(t1),
        }
    }

    /// The per-tile dispatch decision of a range scan: `None` keeps the
    /// scalar arm, `Some` carries the cutoffs for the bit-sliced arm. Bumps
    /// the lifetime dispatch counters.
    fn tile_plan(&self, sel: BackendSel, probs: &TileProbs, coupled: bool) -> Option<TileCuts> {
        if !sel.bitsliced_for_tile(probs.p_any0.max(probs.p_any1)) {
            self.sparse_tiles_scalar.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.dense_tiles_bitsliced.fetch_add(1, Ordering::Relaxed);
        Some(self.tile_cuts(probs, coupled))
    }

    /// The per-bit draws of a gated word against the class-conditional
    /// thresholds (zero for an ungated class).
    fn enumerate_bits(&self, pc: PcIndex, w: u64, cond0: f64, cond1: f64) -> (Word256, Word256) {
        let s0 = self.params.stuck0_share;
        let pcu = u64::from(pc.as_u8());
        let mut stuck0 = Word256::ZERO;
        let mut stuck1 = Word256::ZERO;
        for bit in 0u32..Word256::BITS {
            let h = combine(&[self.seed, pcu, w, TAG_BIT, u64::from(bit)]);
            let (class_u, thresh_u) = unit_pair(h);
            if class_u < s0 {
                if thresh_u < cond0 {
                    stuck0 = stuck0.with_bit_set(bit);
                }
            } else if thresh_u < cond1 {
                stuck1 = stuck1.with_bit_set(bit);
            }
        }
        (stuck0, stuck1)
    }

    /// The bit-sliced arm of [`FaultInjector::enumerate_bits`]: the word's
    /// hash prefix is combined once (`combine` folds each suffix part with
    /// one `mix64`, so `combine(&[.., TAG_BIT, bit])` equals
    /// `mix64(prefix ^ bit)`), and the 256 bits are generated as `u64`
    /// bitplanes against the tile's integer cutoffs.
    fn enumerate_bits_sliced(
        &self,
        pc: PcIndex,
        w: u64,
        cut0: u64,
        cut1: u64,
        class_cut: u64,
        isa: InstructionSet,
    ) -> (Word256, Word256) {
        let prefix = combine(&[self.seed, u64::from(pc.as_u8()), w, TAG_BIT]);
        bitsliced::bit_planes(prefix, class_cut, cut0, cut1, isa)
    }

    /// Applies the fault model to a stored word: what a read at `supply`
    /// observes.
    #[must_use]
    pub fn observe(
        &self,
        stored: Word256,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> Word256 {
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        stored.with_stuck_bits(stuck0, stuck1)
    }

    /// Queries a single bit: `None` if healthy at `supply`, otherwise its
    /// polarity. Slower than [`FaultInjector::stuck_masks`] per word; meant
    /// for fault-map spot checks.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 256`.
    #[must_use]
    pub fn bit_fault(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        bit: u32,
        supply: Millivolts,
    ) -> Option<FaultPolarity> {
        assert!(bit < Word256::BITS, "bit index {bit} out of range");
        let (stuck0, stuck1) = self.stuck_masks(pc, offset, supply);
        if stuck0.bit(bit) {
            Some(FaultPolarity::StuckAtZero)
        } else if stuck1.bit(bit) {
            Some(FaultPolarity::StuckAtOne)
        } else {
            None
        }
    }

    /// Runs `f` over every faulty word of the range, in unspecified order,
    /// through the skip-sampling kernel where the geometry is indexed, with
    /// the per-tile backend dispatch of `sel`.
    fn for_each_faulty_sel<F: FnMut(u64, Word256, Word256)>(
        &self,
        pc: PcIndex,
        words: &Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
        mut f: F,
    ) {
        if words.is_empty() || supply >= self.params.landmarks.v_min {
            return;
        }
        assert!(
            words.end <= self.grid.words_per_pc,
            "word range end {} out of range for geometry ({} words/pc)",
            words.end,
            self.grid.words_per_pc
        );
        let table = self.tile_table(pc, supply);
        let pcu = u64::from(pc.as_u8());
        let Some(index) = self.pc_gate_index(pc) else {
            // Unindexed fallback: per-word gate hashes over the tile cache,
            // the dispatch decision memoized per visited tile.
            let mut plans: Vec<Option<Option<TileCuts>>> = vec![None; self.grid.tile_count];
            for w in words.clone() {
                let tile = self.grid.tile_of(w);
                let probs = table.tiles[tile];
                if probs.c0 == 0.0 && probs.c1 == 0.0 {
                    continue;
                }
                let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, &probs, false));
                let (s0, s1) = self.masks_from_probs_sel(pc, w, probs, plan, sel.isa());
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
            return;
        };
        for (tile, probs) in table.tiles.iter().enumerate() {
            if probs.c0 == 0.0 && probs.c1 == 0.0 {
                continue;
            }
            let plan = self.tile_plan(sel, probs, false);
            // Words whose class-0 gate passes; their class-1 gate is an
            // extra hash test, exactly as in the per-word path.
            for &w32 in index.class0.gated(tile, probs.p_any0) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                let gate1 = probs.p_any1 > 0.0
                    && unit(combine(&[self.seed, pcu, w, TAG_GATE1])) < probs.p_any1;
                let (s0, s1) = match plan {
                    Some(cuts) => self.enumerate_bits_sliced(
                        pc,
                        w,
                        cuts.cut0,
                        if gate1 { cuts.cut1 } else { 0 },
                        cuts.class_cut,
                        sel.isa(),
                    ),
                    None => self.enumerate_bits(
                        pc,
                        w,
                        probs.cond0,
                        if gate1 { probs.cond1 } else { 0.0 },
                    ),
                };
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
            // Words gated only by class 1 (class-0-gated ones were already
            // handled above — the recomputed gate-0 test reproduces the
            // prefix membership exactly).
            for &w32 in index.class1.gated(tile, probs.p_any1) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                let gate0 = probs.p_any0 > 0.0
                    && unit(combine(&[self.seed, pcu, w, TAG_GATE0])) < probs.p_any0;
                if gate0 {
                    continue;
                }
                let (s0, s1) = match plan {
                    Some(cuts) => {
                        self.enumerate_bits_sliced(pc, w, 0, cuts.cut1, cuts.class_cut, sel.isa())
                    }
                    None => self.enumerate_bits(pc, w, 0.0, probs.cond1),
                };
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1);
                }
            }
        }
    }

    /// Counts faulty bits of each polarity over a contiguous word range of
    /// one pseudo channel: `(stuck-at-0, stuck-at-1)`.
    ///
    /// This is what a write/read-back test with both data patterns measures.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::count_range")]
    #[must_use]
    pub fn count_range(&self, pc: PcIndex, words: Range<u64>, supply: Millivolts) -> (u64, u64) {
        self.count_range_sel(pc, words, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::count_range`].
    pub(crate) fn count_range_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (u64, u64) {
        let mut n0 = 0u64;
        let mut n1 = 0u64;
        self.for_each_faulty_sel(pc, &words, supply, sel, |_, s0, s1| {
            n0 += u64::from(s0.count_ones());
            n1 += u64::from(s1.count_ones());
        });
        (n0, n1)
    }

    /// Collects the faulty words of a range in ascending offset order,
    /// yielding `(offset, stuck0, stuck1)` per faulty word. This is the
    /// bulk-kernel entry point the cached-mask execution mode reuses across
    /// batch passes and data patterns.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::faulty_words")]
    #[must_use]
    pub fn faulty_words(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        self.faulty_words_sel(pc, words, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::faulty_words`].
    pub(crate) fn faulty_words_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        let mut out = Vec::new();
        self.for_each_faulty_sel(pc, &words, supply, sel, |w, s0, s1| {
            out.push((WordOffset(w), s0, s1));
        });
        out.sort_unstable_by_key(|&(offset, _, _)| offset.0);
        out
    }

    /// Streams every faulty word of the range through `f` as
    /// `(offset, stuck0, stuck1)`, in unspecified order, without
    /// materializing a mask vector. This is the zero-allocation counterpart
    /// of [`FaultInjector::faulty_words`] for callers that fold the masks
    /// into order-independent aggregates (sums, counts) on the fly — the
    /// dense-fault regime where a collected vector would rival the size of
    /// the scanned range itself.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::for_each_faulty_word")]
    pub fn for_each_faulty_word<F: FnMut(WordOffset, Word256, Word256)>(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        mut f: F,
    ) {
        self.for_each_faulty_word_sel(pc, words, supply, BackendSel::Scalar, &mut |o, s0, s1| {
            f(o, s0, s1);
        });
    }

    /// Backend-selected [`FaultInjector::for_each_faulty_word`]. Takes a
    /// `dyn` callback so the [`crate::MaskKernel`] trait stays object-safe.
    pub(crate) fn for_each_faulty_word_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
        f: &mut dyn FnMut(WordOffset, Word256, Word256),
    ) {
        self.for_each_faulty_sel(pc, &words, supply, sel, |w, s0, s1| {
            f(WordOffset(w), s0, s1);
        });
    }

    /// Iterates over the *faulty* words of a range in ascending offset
    /// order, yielding `(offset, stuck0, stuck1)` and skipping clean words —
    /// the fast path for building fault maps and health scans in the
    /// sparse-fault regime.
    pub fn scan_faulty(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Box<dyn Iterator<Item = (WordOffset, Word256, Word256)> + '_> {
        if supply >= self.params.landmarks.v_min || words.is_empty() {
            return Box::new(std::iter::empty());
        }
        if self.grid.words_per_pc <= MAX_INDEXED_WORDS_PER_PC {
            return Box::new(
                self.faulty_words_sel(pc, words, supply, BackendSel::Scalar)
                    .into_iter(),
            );
        }
        // Unindexed geometries keep the lazy walk (no allocation
        // proportional to the fault count).
        let table = self.tile_table(pc, supply);
        Box::new(words.filter_map(move |w| {
            let probs = table.tiles[self.grid.tile_of(w)];
            let (s0, s1) = self.masks_from_probs(pc, w, probs);
            (!(s0.is_zero() && s1.is_zero())).then_some((WordOffset(w), s0, s1))
        }))
    }

    // ------------------------------------------------------------------
    // Coupled fault field (`FaultFieldMode::MonotoneCoupled`)
    // ------------------------------------------------------------------

    /// One word's coupled-field draws against the class probabilities: the
    /// stuck masks plus each class's smallest still-clean bit threshold
    /// (`f64::INFINITY` when every bit of the class is already faulty).
    fn coupled_word(&self, pc: PcIndex, w: u64, c0: f64, c1: f64) -> (Word256, Word256, f64, f64) {
        let s0_share = self.params.stuck0_share;
        let pcu = u64::from(pc.as_u8());
        let mut stuck0 = Word256::ZERO;
        let mut stuck1 = Word256::ZERO;
        let mut next0 = f64::INFINITY;
        let mut next1 = f64::INFINITY;
        for bit in 0u32..Word256::BITS {
            let h = combine(&[self.seed, pcu, w, TAG_CBIT, u64::from(bit)]);
            let (class_u, t) = unit_pair(h);
            if class_u < s0_share {
                if t < c0 {
                    stuck0 = stuck0.with_bit_set(bit);
                } else if t < next0 {
                    next0 = t;
                }
            } else if t < c1 {
                stuck1 = stuck1.with_bit_set(bit);
            } else if t < next1 {
                next1 = t;
            }
        }
        (stuck0, stuck1, next0, next1)
    }

    /// The bit-sliced arm of [`FaultInjector::coupled_word`]: whole-word
    /// counter hashing against the tile's integer cutoffs, the per-class
    /// minimum still-clean raw keys converted back to the exact `f64`
    /// thresholds the scalar arm tracks (monotone conversion, so the
    /// minimum commutes with it).
    fn coupled_word_sliced(
        &self,
        pc: PcIndex,
        w: u64,
        cuts: TileCuts,
    ) -> (Word256, Word256, f64, f64) {
        let prefix = combine(&[self.seed, u64::from(pc.as_u8()), w, TAG_CBIT]);
        let (s0, s1, min0, min1) =
            bitsliced::coupled_word(prefix, cuts.class_cut, cuts.cut0, cuts.cut1);
        (s0, s1, raw_min_threshold(min0), raw_min_threshold(min1))
    }

    /// Dispatches one coupled word through the tile's plan.
    fn coupled_word_sel(
        &self,
        pc: PcIndex,
        w: u64,
        probs: &TileProbs,
        plan: Option<TileCuts>,
    ) -> (Word256, Word256, f64, f64) {
        match plan {
            Some(cuts) => self.coupled_word_sliced(pc, w, cuts),
            None => self.coupled_word(pc, w, probs.c0, probs.c1),
        }
    }

    /// The coupled-field activation index of `pc`, or `None` for geometries
    /// too large to index.
    fn pc_coupled_index(&self, pc: PcIndex) -> Option<Arc<CoupledIndex>> {
        if self.grid.words_per_pc > MAX_INDEXED_WORDS_PER_PC {
            return None;
        }
        {
            let cache = self.coupled_index.read().expect("coupled index poisoned");
            if let Some(index) = &cache[pc.as_usize()] {
                return Some(Arc::clone(index));
            }
        }
        let index = Arc::new(self.build_coupled_index(pc));
        self.coupled_index.write().expect("coupled index poisoned")[pc.as_usize()] =
            Some(Arc::clone(&index));
        Some(index)
    }

    /// One pass over every bit of the pseudo channel, recording each word's
    /// minimum threshold per class; thresholds never depend on voltage or
    /// temperature, so the index is built once per PC.
    fn build_coupled_index(&self, pc: PcIndex) -> CoupledIndex {
        let s0_share = self.params.stuck0_share;
        let pcu = u64::from(pc.as_u8());
        let words = usize::try_from(self.grid.words_per_pc).expect("indexed geometry fits usize");
        let mut by0 = vec![f64::INFINITY; words];
        let mut by1 = vec![f64::INFINITY; words];
        for w in 0..self.grid.words_per_pc {
            let (mut m0, mut m1) = (f64::INFINITY, f64::INFINITY);
            for bit in 0u32..Word256::BITS {
                let h = combine(&[self.seed, pcu, w, TAG_CBIT, u64::from(bit)]);
                let (class_u, t) = unit_pair(h);
                if class_u < s0_share {
                    m0 = m0.min(t);
                } else {
                    m1 = m1.min(t);
                }
            }
            by0[w as usize] = m0;
            by1[w as usize] = m1;
        }
        CoupledIndex {
            class0: self.sorted_threshold_index(by0),
            class1: self.sorted_threshold_index(by1),
        }
    }

    fn sorted_threshold_index(&self, by_word: Vec<f64>) -> CoupledClassIndex {
        let mut entries: Vec<(u32, f64, u32)> = by_word
            .iter()
            .enumerate()
            .map(|(w, &t)| (self.grid.tile_of(w as u64) as u32, t, w as u32))
            .collect();
        entries
            .sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut starts = vec![0u32; self.grid.tile_count + 1];
        for &(tile, _, _) in &entries {
            starts[tile as usize + 1] += 1;
        }
        let mut acc = 0u32;
        for s in &mut starts {
            acc += *s;
            *s = acc;
        }
        CoupledClassIndex {
            starts,
            thresholds: entries.iter().map(|&(_, t, _)| t).collect(),
            offsets: entries.iter().map(|&(_, _, w)| w).collect(),
            by_word,
        }
    }

    /// Computes the stuck-at masks of one word at a supply voltage under
    /// the coupled fault field ([`crate::FaultFieldMode::MonotoneCoupled`]).
    ///
    /// Each `(pc, word, bit)` owns one persistent threshold drawn from a
    /// counter-based hash of the device seed and the bit's address; the bit
    /// is faulty iff its polarity class's fault probability at `supply`
    /// exceeds the threshold. Masks are disjoint, deterministic, guardband
    /// fault-free, and inclusion-monotone across descending voltage by
    /// construction. The expected per-bit fault rate equals the legacy
    /// field's (`share_π × c_π`), so the two fields are statistically
    /// interchangeable at any single voltage.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::masks")]
    #[must_use]
    pub fn coupled_stuck_masks(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
    ) -> (Word256, Word256) {
        self.coupled_stuck_masks_sel(pc, offset, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::coupled_stuck_masks`].
    /// Single-word queries do not touch the dispatch counters.
    pub(crate) fn coupled_stuck_masks_sel(
        &self,
        pc: PcIndex,
        offset: WordOffset,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (Word256, Word256) {
        if supply >= self.params.landmarks.v_min {
            return (Word256::ZERO, Word256::ZERO);
        }
        let table = self.tile_table(pc, supply);
        let probs = table.tiles[self.grid.tile_of(offset.0)];
        if probs.c0 == 0.0 && probs.c1 == 0.0 {
            return (Word256::ZERO, Word256::ZERO);
        }
        let plan = sel
            .bitsliced_for_tile(probs.p_any0.max(probs.p_any1))
            .then(|| self.tile_cuts(&probs, true));
        let (s0, s1, _, _) = self.coupled_word_sel(pc, offset.0, &probs, plan);
        (s0, s1)
    }

    /// Runs `f` over every word of the range with at least one
    /// coupled-field faulty bit, in unspecified order, yielding the masks
    /// and both next-clean thresholds.
    fn coupled_for_each_active<F: FnMut(u64, Word256, Word256, f64, f64)>(
        &self,
        pc: PcIndex,
        words: &Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
        mut f: F,
    ) {
        if words.is_empty() || supply >= self.params.landmarks.v_min {
            return;
        }
        assert!(
            words.end <= self.grid.words_per_pc,
            "word range end {} out of range for geometry ({} words/pc)",
            words.end,
            self.grid.words_per_pc
        );
        let table = self.tile_table(pc, supply);
        let Some(index) = self.pc_coupled_index(pc) else {
            // Unindexed fallback: per-word bit walk over the tile cache,
            // the dispatch decision memoized per visited tile.
            let mut plans: Vec<Option<Option<TileCuts>>> = vec![None; self.grid.tile_count];
            for w in words.clone() {
                let tile = self.grid.tile_of(w);
                let probs = table.tiles[tile];
                if probs.c0 == 0.0 && probs.c1 == 0.0 {
                    continue;
                }
                let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, &probs, true));
                let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, &probs, plan);
                if !(s0.is_zero() && s1.is_zero()) {
                    f(w, s0, s1, n0, n1);
                }
            }
            return;
        };
        for (tile, probs) in table.tiles.iter().enumerate() {
            if probs.c0 == 0.0 && probs.c1 == 0.0 {
                continue;
            }
            let plan = self.tile_plan(sel, probs, true);
            // Words whose class-0 minimum threshold is crossed; each has at
            // least one stuck-at-0 bit by the prefix predicate.
            for &w32 in index.class0.active(tile, probs.c0) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, probs, plan);
                f(w, s0, s1, n0, n1);
            }
            // Words active only through class 1 (class-0-active words were
            // already yielded; the by-word lookup reproduces the prefix
            // membership exactly).
            for &w32 in index.class1.active(tile, probs.c1) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                if index.class0.by_word[w32 as usize] < probs.c0 {
                    continue;
                }
                let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, probs, plan);
                f(w, s0, s1, n0, n1);
            }
        }
    }

    /// Collects the coupled-field faulty words of a range in ascending
    /// offset order — the [`crate::FaultFieldMode::MonotoneCoupled`]
    /// counterpart of [`FaultInjector::faulty_words`].
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::faulty_words")]
    #[must_use]
    pub fn coupled_faulty_words(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        self.coupled_faulty_words_sel(pc, words, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::coupled_faulty_words`].
    pub(crate) fn coupled_faulty_words_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        let mut out = Vec::new();
        self.coupled_for_each_active(pc, &words, supply, sel, |w, s0, s1, _, _| {
            out.push((WordOffset(w), s0, s1));
        });
        out.sort_unstable_by_key(|&(offset, _, _)| offset.0);
        out
    }

    /// Streams every coupled-field faulty word of the range through `f` as
    /// `(offset, stuck0, stuck1)`, in unspecified order — the
    /// [`crate::FaultFieldMode::MonotoneCoupled`] counterpart of
    /// [`FaultInjector::for_each_faulty_word`] for dense-regime streaming
    /// folds.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::for_each_faulty_word")]
    pub fn coupled_for_each_faulty<F: FnMut(WordOffset, Word256, Word256)>(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        mut f: F,
    ) {
        self.coupled_for_each_faulty_sel(
            pc,
            words,
            supply,
            BackendSel::Scalar,
            &mut |o, s0, s1| {
                f(o, s0, s1);
            },
        );
    }

    /// Backend-selected [`FaultInjector::coupled_for_each_faulty`]. Takes a
    /// `dyn` callback so the [`crate::MaskKernel`] trait stays object-safe.
    pub(crate) fn coupled_for_each_faulty_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
        f: &mut dyn FnMut(WordOffset, Word256, Word256),
    ) {
        self.coupled_for_each_active(pc, &words, supply, sel, |w, s0, s1, _, _| {
            f(WordOffset(w), s0, s1);
        });
    }

    /// The expected fraction of words with at least one faulty bit at
    /// `supply`, averaged over the pseudo channel's tiles — `0.0` in the
    /// guardband. Identical for both fault-field modes (they share the
    /// analytic model) and cheap to evaluate (tile cache hit plus a pass
    /// over the tile probabilities), so callers can use it to pick between
    /// collecting faulty-word vectors (sparse regime) and streaming folds
    /// (dense regime) *before* enumerating anything.
    #[must_use]
    pub fn expected_active_fraction(&self, pc: PcIndex, supply: Millivolts) -> f64 {
        if supply >= self.params.landmarks.v_min {
            return 0.0;
        }
        let table = self.tile_table(pc, supply);
        if table.tiles.is_empty() {
            return 0.0;
        }
        let sum: f64 = table
            .tiles
            .iter()
            .map(|t| 1.0 - (1.0 - t.p_any0) * (1.0 - t.p_any1))
            .sum();
        sum / table.tiles.len() as f64
    }

    /// Counts coupled-field faulty bits of each polarity over a contiguous
    /// word range: `(stuck-at-0, stuck-at-1)`.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::count_range")]
    #[must_use]
    pub fn coupled_count_range(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> (u64, u64) {
        self.coupled_count_range_sel(pc, words, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::coupled_count_range`].
    pub(crate) fn coupled_count_range_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (u64, u64) {
        let mut n0 = 0u64;
        let mut n1 = 0u64;
        self.coupled_for_each_active(pc, &words, supply, sel, |_, s0, s1, _, _| {
            n0 += u64::from(s0.count_ones());
            n1 += u64::from(s1.count_ones());
        });
        (n0, n1)
    }

    /// The coupled-field words of `words` that *activate* — gain their
    /// first faulty bit — when the supply descends from `v_prev` to
    /// `v_next`, with their full masks at `v_next`, ascending by offset.
    ///
    /// A word already faulty at `v_prev` is **not** reported even if it
    /// gains further bits at `v_next`; callers patching a carried working
    /// set use [`FaultInjector::coupled_carry_advance`], which also
    /// refreshes grown words. With `v_prev` at or above the guardband this
    /// equals [`FaultInjector::coupled_faulty_words`] at `v_next`; with
    /// `v_next > v_prev` (not a descent) it is empty.
    ///
    /// # Performance
    ///
    /// Activations are located on the per-tile sorted
    /// minimum-bit-threshold index (built once per pseudo channel,
    /// voltage- and temperature-free): each tile and class contributes the
    /// slice of words whose minimum threshold lies in
    /// `[c(v_prev), c(v_next))`, found by two binary searches. The call
    /// therefore costs `O(T·log W + A·256)` hash draws, where `A` is the
    /// number of activating words — independent of how many words are
    /// already faulty, which is what makes a descending sweep scale with
    /// fault *deltas* instead of *points × words*. The per-bit fault test
    /// and the prefix predicate are the same comparison (`threshold < c`),
    /// so the enumerated set is exact, not a superset needing recheck.
    /// Geometries above the index cap fall back to a per-word walk of the
    /// range (one bit pass per word, evaluating both voltages at once).
    #[must_use]
    pub fn faulty_words_delta(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        v_prev: Millivolts,
        v_next: Millivolts,
    ) -> Vec<(WordOffset, Word256, Word256)> {
        let mut out = Vec::new();
        if words.is_empty() || v_next >= self.params.landmarks.v_min || v_next > v_prev {
            return out;
        }
        assert!(
            words.end <= self.grid.words_per_pc,
            "word range end {} out of range for geometry ({} words/pc)",
            words.end,
            self.grid.words_per_pc
        );
        let next = self.tile_table(pc, v_next);
        let prev_tiles =
            (v_prev < self.params.landmarks.v_min).then(|| self.build_tile_table(pc, v_prev).tiles);
        let prev_c = |tile: usize| {
            prev_tiles
                .as_ref()
                .map_or((0.0, 0.0), |t| (t[tile].c0, t[tile].c1))
        };
        let Some(index) = self.pc_coupled_index(pc) else {
            let s0_share = self.params.stuck0_share;
            let pcu = u64::from(pc.as_u8());
            for w in words.clone() {
                let tile = self.grid.tile_of(w);
                let probs = next.tiles[tile];
                if probs.c0 == 0.0 && probs.c1 == 0.0 {
                    continue;
                }
                let (c0p, c1p) = prev_c(tile);
                let mut active_prev = false;
                let mut stuck0 = Word256::ZERO;
                let mut stuck1 = Word256::ZERO;
                for bit in 0u32..Word256::BITS {
                    let h = combine(&[self.seed, pcu, w, TAG_CBIT, u64::from(bit)]);
                    let (class_u, t) = unit_pair(h);
                    if class_u < s0_share {
                        if t < probs.c0 {
                            stuck0 = stuck0.with_bit_set(bit);
                        }
                        active_prev |= t < c0p;
                    } else {
                        if t < probs.c1 {
                            stuck1 = stuck1.with_bit_set(bit);
                        }
                        active_prev |= t < c1p;
                    }
                }
                let active_next = !stuck0.is_zero() || !stuck1.is_zero();
                if !active_prev && active_next {
                    out.push((WordOffset(w), stuck0, stuck1));
                }
            }
            out.sort_unstable_by_key(|&(offset, _, _)| offset.0);
            return out;
        };
        for (tile, probs) in next.tiles.iter().enumerate() {
            if probs.c0 == 0.0 && probs.c1 == 0.0 {
                continue;
            }
            let (c0p, c1p) = prev_c(tile);
            for &w32 in index.class0.activated(tile, c0p, probs.c0) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                // Skip words that were already active through class 1.
                if index.class1.by_word[w32 as usize] < c1p {
                    continue;
                }
                let (s0, s1, _, _) = self.coupled_word(pc, w, probs.c0, probs.c1);
                out.push((WordOffset(w), s0, s1));
            }
            for &w32 in index.class1.activated(tile, c1p, probs.c1) {
                let w = u64::from(w32);
                if !words.contains(&w) {
                    continue;
                }
                // Skip words active — or activating — through class 0;
                // those were handled by the class-0 slice.
                if index.class0.by_word[w32 as usize] < probs.c0 {
                    continue;
                }
                let (s0, s1, _, _) = self.coupled_word(pc, w, probs.c0, probs.c1);
                out.push((WordOffset(w), s0, s1));
            }
        }
        out.sort_unstable_by_key(|&(offset, _, _)| offset.0);
        out
    }

    /// Builds the carried working set of a descending sweep at its first
    /// measured point: every coupled-field faulty word of the range at
    /// `supply`, plus the state that makes
    /// [`FaultInjector::coupled_carry_advance`] cheap.
    ///
    /// Ranges up to [`MAX_BIT_CARRY_WORDS`] get the *bit-granular* tier:
    /// one hash pass records every still-clean bit's threshold into
    /// per-tile sorted pending lists, after which a whole descending sweep
    /// never hashes any bit again — each advance drains the prefix of bits
    /// whose thresholds the new probabilities cross. Larger ranges get the
    /// word-granular tier (per-word next-change thresholds, re-enumerating
    /// a word's 256 bits whenever one crosses), which needs no per-bit
    /// storage. Both tiers produce bit-identical masks.
    ///
    /// The build is accounted as `activated` words in the returned stats.
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::carry_start")]
    #[must_use]
    pub fn coupled_carry_start(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
    ) -> (PcSweepCarry, CarryStats) {
        self.coupled_carry_start_sel(pc, words, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::coupled_carry_start`].
    pub(crate) fn coupled_carry_start_sel(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (PcSweepCarry, CarryStats) {
        let len = words.end.saturating_sub(words.start);
        if len > 0 && len <= MAX_BIT_CARRY_WORDS {
            return self.coupled_bit_carry_start(pc, words, supply, sel);
        }
        let mut entries = Vec::new();
        self.coupled_for_each_active(pc, &words, supply, sel, |w, s0, s1, n0, n1| {
            entries.push(CarryEntry {
                offset: w as u32,
                stuck0: s0,
                stuck1: s1,
                next0: n0,
                next1: n1,
                touch: 0,
            });
        });
        entries.sort_unstable_by_key(|e| e.offset);
        let stats = CarryStats {
            carried: 0,
            refreshed: 0,
            activated: entries.len() as u64,
        };
        (
            PcSweepCarry {
                pc,
                words,
                voltage: supply,
                temperature: self.temperature,
                entries,
                pending: None,
            },
            stats,
        )
    }

    /// The bit-granular carry build: one pass over every bit of the range,
    /// setting the masks faulty at `supply` and recording each still-clean
    /// bit's raw threshold key into its tile-and-class pending list.
    ///
    /// On dense tiles the bit-sliced arm hashes each word as whole 64-bit
    /// lanes ([`bitsliced::coupled_scan`]) and fills the pending lists from
    /// the recorded raw keys; the final per-list sort makes the push order
    /// immaterial, so both arms build identical carries.
    fn coupled_bit_carry_start(
        &self,
        pc: PcIndex,
        words: Range<u64>,
        supply: Millivolts,
        sel: BackendSel,
    ) -> (PcSweepCarry, CarryStats) {
        assert!(
            words.end <= self.grid.words_per_pc,
            "word range end {} out of range for geometry ({} words/pc)",
            words.end,
            self.grid.words_per_pc
        );
        let tiles = (supply < self.params.landmarks.v_min).then(|| self.tile_table(pc, supply));
        let s0_share = self.params.stuck0_share;
        let pcu = u64::from(pc.as_u8());
        let len = usize::try_from(words.end - words.start).expect("bit-carry range fits usize");
        let mut class0 = vec![PendingClass::default(); self.grid.tile_count];
        let mut class1 = vec![PendingClass::default(); self.grid.tile_count];
        let mut entry_of = vec![u32::MAX; len];
        let mut entries = Vec::new();
        let mut plans: Vec<Option<Option<TileCuts>>> = vec![None; self.grid.tile_count];
        let mut raws = [0u32; 256];
        for w in words.clone() {
            let tile = self.grid.tile_of(w);
            let slot = (w - words.start) as u32;
            // Inside the guardband there is no tile table; every bit is
            // clean and the scalar walk records all thresholds.
            let plan = match tiles.as_ref() {
                Some(t) => {
                    let probs = t.tiles[tile];
                    *plans[tile].get_or_insert_with(|| self.tile_plan(sel, &probs, true))
                }
                None => None,
            };
            let mut stuck0 = Word256::ZERO;
            let mut stuck1 = Word256::ZERO;
            match plan {
                Some(cuts) => {
                    let prefix = combine(&[self.seed, pcu, w, TAG_CBIT]);
                    let (class_plane, s0, s1) = bitsliced::coupled_scan(
                        prefix,
                        cuts.class_cut,
                        cuts.cut0,
                        cuts.cut1,
                        &mut raws,
                    );
                    stuck0 = s0;
                    stuck1 = s1;
                    // Still-clean bits per class, drained lane by lane.
                    let clean0 = class_plane & !s0;
                    let clean1 = !class_plane & !s1;
                    for (lane, (&l0, &l1)) in clean0.0.iter().zip(clean1.0.iter()).enumerate() {
                        let base = (lane * 64) as u32;
                        let mut m = l0;
                        while m != 0 {
                            let bit = base + m.trailing_zeros();
                            class0[tile]
                                .bits
                                .push((raws[bit as usize], (slot << 8) | bit));
                            m &= m - 1;
                        }
                        let mut m = l1;
                        while m != 0 {
                            let bit = base + m.trailing_zeros();
                            class1[tile]
                                .bits
                                .push((raws[bit as usize], (slot << 8) | bit));
                            m &= m - 1;
                        }
                    }
                }
                None => {
                    let (c0, c1) = tiles
                        .as_ref()
                        .map_or((0.0, 0.0), |t| (t.tiles[tile].c0, t.tiles[tile].c1));
                    for bit in 0u32..Word256::BITS {
                        let h = combine(&[self.seed, pcu, w, TAG_CBIT, u64::from(bit)]);
                        let (class_u, t) = unit_pair(h);
                        let raw = (h >> 32) as u32;
                        if class_u < s0_share {
                            if t < c0 {
                                stuck0 = stuck0.with_bit_set(bit);
                            } else {
                                class0[tile].bits.push((raw, (slot << 8) | bit));
                            }
                        } else if t < c1 {
                            stuck1 = stuck1.with_bit_set(bit);
                        } else {
                            class1[tile].bits.push((raw, (slot << 8) | bit));
                        }
                    }
                }
            }
            if !(stuck0.is_zero() && stuck1.is_zero()) {
                entry_of[slot as usize] = entries.len() as u32;
                entries.push(CarryEntry {
                    offset: w as u32,
                    stuck0,
                    stuck1,
                    next0: f64::INFINITY,
                    next1: f64::INFINITY,
                    touch: 0,
                });
            }
        }
        for pending in class0.iter_mut().chain(class1.iter_mut()) {
            pending.bits.sort_unstable();
        }
        let stats = CarryStats {
            carried: 0,
            refreshed: 0,
            activated: entries.len() as u64,
        };
        (
            PcSweepCarry {
                pc,
                words,
                voltage: supply,
                temperature: self.temperature,
                entries,
                pending: Some(PendingBits {
                    class0,
                    class1,
                    entry_of,
                    seq: 0,
                }),
            },
            stats,
        )
    }

    /// Advances a carried working set to a lower supply voltage, touching
    /// only the words whose masks change. The resulting masks are
    /// bit-identical to [`FaultInjector::coupled_faulty_words`] at
    /// `supply`.
    ///
    /// A non-descending `supply` or a temperature change since the carry
    /// was built voids the carry: it is rebuilt from scratch (accounted as
    /// `activated`). Advancing to the carry's own voltage is a no-op that
    /// reports every word as `carried`.
    ///
    /// # Performance
    ///
    /// On the bit-granular tier (ranges up to 4096 words) an advance
    /// hashes *nothing*: it drains, per tile and class, the sorted-prefix
    /// of pending bit thresholds the new probabilities cross and ORs
    /// exactly those bits into the carried masks, so a whole descent costs
    /// one hash pass at carry start plus `O(bit flips)` total — against
    /// `O(points × faulty words × 256)` draws for per-point rescans. On
    /// the word-granular fallback tier a carried word is reused untouched
    /// unless one of its still-clean minimum thresholds (`next0`/`next1`)
    /// is crossed, in which case its 256 bits are re-enumerated; newly
    /// activated words are appended from the activation index (the
    /// stateful counterpart of [`FaultInjector::faulty_words_delta`]).
    #[deprecated(note = "use FaultInjector::kernel(...) and MaskKernel::carry_advance")]
    pub fn coupled_carry_advance(
        &self,
        carry: &mut PcSweepCarry,
        supply: Millivolts,
    ) -> CarryStats {
        self.coupled_carry_advance_sel(carry, supply, BackendSel::Scalar)
    }

    /// Backend-selected [`FaultInjector::coupled_carry_advance`].
    pub(crate) fn coupled_carry_advance_sel(
        &self,
        carry: &mut PcSweepCarry,
        supply: Millivolts,
        sel: BackendSel,
    ) -> CarryStats {
        if supply > carry.voltage || carry.temperature != self.temperature {
            let (fresh, stats) =
                self.coupled_carry_start_sel(carry.pc, carry.words.clone(), supply, sel);
            *carry = fresh;
            return stats;
        }
        if supply == carry.voltage {
            return CarryStats {
                carried: carry.entries.len() as u64,
                refreshed: 0,
                activated: 0,
            };
        }
        if supply >= self.params.landmarks.v_min {
            // Still inside the guardband: nothing can be active.
            carry.voltage = supply;
            return CarryStats::default();
        }
        if carry.pending.is_some() {
            return self.coupled_bit_advance(carry, supply);
        }
        let pc = carry.pc;
        let table = self.tile_table(pc, supply);
        let prev_voltage = carry.voltage;
        let prev_tiles = (prev_voltage < self.params.landmarks.v_min)
            .then(|| self.build_tile_table(pc, prev_voltage).tiles);
        let prev_c = |tile: usize| {
            prev_tiles
                .as_ref()
                .map_or((0.0, 0.0), |t| (t[tile].c0, t[tile].c1))
        };
        let mut stats = CarryStats::default();
        // One dispatch decision per tile for the whole advance (refresh and
        // activation loops share the memo); only tiles that actually hash a
        // word are decided and counted.
        let mut plans: Vec<Option<Option<TileCuts>>> = vec![None; self.grid.tile_count];
        // (a) Refresh carried words whose next clean threshold was crossed;
        // monotonicity guarantees existing mask bits never disappear.
        for entry in &mut carry.entries {
            let tile = self.grid.tile_of(u64::from(entry.offset));
            let probs = table.tiles[tile];
            if entry.next0 < probs.c0 || entry.next1 < probs.c1 {
                let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, &probs, true));
                let (s0, s1, n0, n1) =
                    self.coupled_word_sel(pc, u64::from(entry.offset), &probs, plan);
                entry.stuck0 = s0;
                entry.stuck1 = s1;
                entry.next0 = n0;
                entry.next1 = n1;
                stats.refreshed += 1;
            } else {
                stats.carried += 1;
            }
        }
        // (b) Append the words activating in the (v_prev, supply] window.
        let mut fresh: Vec<CarryEntry> = Vec::new();
        if let Some(index) = self.pc_coupled_index(pc) {
            for (tile, probs) in table.tiles.iter().enumerate() {
                if probs.c0 == 0.0 && probs.c1 == 0.0 {
                    continue;
                }
                let (c0p, c1p) = prev_c(tile);
                for &w32 in index.class0.activated(tile, c0p, probs.c0) {
                    let w = u64::from(w32);
                    if !carry.words.contains(&w) {
                        continue;
                    }
                    if index.class1.by_word[w32 as usize] < c1p {
                        continue;
                    }
                    let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, probs, true));
                    let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, probs, plan);
                    fresh.push(CarryEntry {
                        offset: w32,
                        stuck0: s0,
                        stuck1: s1,
                        next0: n0,
                        next1: n1,
                        touch: 0,
                    });
                }
                for &w32 in index.class1.activated(tile, c1p, probs.c1) {
                    let w = u64::from(w32);
                    if !carry.words.contains(&w) {
                        continue;
                    }
                    if index.class0.by_word[w32 as usize] < probs.c0 {
                        continue;
                    }
                    let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, probs, true));
                    let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, probs, plan);
                    fresh.push(CarryEntry {
                        offset: w32,
                        stuck0: s0,
                        stuck1: s1,
                        next0: n0,
                        next1: n1,
                        touch: 0,
                    });
                }
            }
        } else {
            // Unindexed fallback: walk the range against the sorted carried
            // offsets, enumerating only non-carried words.
            let mut carried = carry.entries.iter().map(|e| u64::from(e.offset)).peekable();
            for w in carry.words.clone() {
                if carried.peek() == Some(&w) {
                    carried.next();
                    continue;
                }
                let tile = self.grid.tile_of(w);
                let probs = table.tiles[tile];
                if probs.c0 == 0.0 && probs.c1 == 0.0 {
                    continue;
                }
                let plan = *plans[tile].get_or_insert_with(|| self.tile_plan(sel, &probs, true));
                let (s0, s1, n0, n1) = self.coupled_word_sel(pc, w, &probs, plan);
                if !(s0.is_zero() && s1.is_zero()) {
                    fresh.push(CarryEntry {
                        offset: w as u32,
                        stuck0: s0,
                        stuck1: s1,
                        next0: n0,
                        next1: n1,
                        touch: 0,
                    });
                }
            }
        }
        stats.activated = fresh.len() as u64;
        if !fresh.is_empty() {
            carry.entries.extend(fresh);
            carry.entries.sort_unstable_by_key(|e| e.offset);
        }
        carry.voltage = supply;
        stats
    }

    /// The bit-granular advance: for each tile and class, drains the prefix
    /// of pending bits whose thresholds the new class probability crosses
    /// and sets exactly those bits in the carried masks. No bit is ever
    /// re-hashed — across a whole descent each `(word, bit)` is applied at
    /// most once, so the total advance work is proportional to the number
    /// of bit flips, not to `points × faulty words`.
    fn coupled_bit_advance(&self, carry: &mut PcSweepCarry, supply: Millivolts) -> CarryStats {
        let table = self.tile_table(carry.pc, supply);
        let start = carry.words.start;
        let before = carry.entries.len();
        let entries = &mut carry.entries;
        let pending = carry.pending.as_mut().expect("bit carry has pending state");
        pending.seq += 1;
        let seq = pending.seq;
        let mut refreshed = 0u64;
        for (tile, probs) in table.tiles.iter().enumerate() {
            drain_pending_class(
                &mut pending.class0[tile],
                probs.c0,
                true,
                start,
                seq,
                entries,
                &mut pending.entry_of,
                &mut refreshed,
            );
            drain_pending_class(
                &mut pending.class1[tile],
                probs.c1,
                false,
                start,
                seq,
                entries,
                &mut pending.entry_of,
                &mut refreshed,
            );
        }
        let activated = (entries.len() - before) as u64;
        if activated > 0 {
            entries.sort_unstable_by_key(|e| e.offset);
            for (i, entry) in entries.iter().enumerate() {
                pending.entry_of[(u64::from(entry.offset) - start) as usize] = i as u32;
            }
        }
        carry.voltage = supply;
        CarryStats {
            carried: before as u64 - refreshed,
            refreshed,
            activated,
        }
    }
}

/// Applies one tile-and-class pending prefix to the carried masks: every
/// bit whose threshold is below `c` becomes faulty now and is consumed
/// from the list (freeing the list entirely once the class saturates).
#[allow(clippy::too_many_arguments)]
fn drain_pending_class(
    pend: &mut PendingClass,
    c: f64,
    class0: bool,
    start: u64,
    seq: u32,
    entries: &mut Vec<CarryEntry>,
    entry_of: &mut [u32],
    refreshed: &mut u64,
) {
    while pend.cursor < pend.bits.len() {
        let (raw, packed) = pend.bits[pend.cursor];
        if threshold_from_raw(raw) >= c {
            break;
        }
        pend.cursor += 1;
        let slot = (packed >> 8) as usize;
        let bit = packed & 0xFF;
        let entry = if entry_of[slot] == u32::MAX {
            entry_of[slot] = entries.len() as u32;
            entries.push(CarryEntry {
                offset: (start + slot as u64) as u32,
                stuck0: Word256::ZERO,
                stuck1: Word256::ZERO,
                next0: f64::INFINITY,
                next1: f64::INFINITY,
                touch: seq,
            });
            entries.last_mut().expect("just pushed")
        } else {
            let entry = &mut entries[entry_of[slot] as usize];
            if entry.touch != seq {
                entry.touch = seq;
                *refreshed += 1;
            }
            entry
        };
        if class0 {
            entry.stuck0 = entry.stuck0.with_bit_set(bit);
        } else {
            entry.stuck1 = entry.stuck1.with_bit_set(bit);
        }
    }
    if pend.cursor == pend.bits.len() && !pend.bits.is_empty() {
        pend.bits = Vec::new();
        pend.cursor = 0;
    }
}

/// `1 − (1 − p)^256` computed stably for tiny `p`.
fn p_any(p_bit: f64) -> f64 {
    if p_bit <= 0.0 {
        return 0.0;
    }
    if p_bit >= 1.0 {
        return 1.0;
    }
    // 1 − (1−p)^256 = −expm1(256·ln1p(−p)), stable for tiny p.
    (-(256.0 * f64::ln_1p(-p_bit)).exp_m1()).clamp(0.0, 1.0)
}

#[cfg(test)]
// The legacy entry points stay under test for their deprecation release:
// they are the scalar reference the kernel backends are compared against.
#[allow(deprecated)]
mod tests {
    use super::*;

    fn injector() -> FaultInjector {
        FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            1234,
        )
    }

    fn pc(i: u8) -> PcIndex {
        PcIndex::new(i).unwrap()
    }

    #[test]
    fn p_any_matches_naive() {
        for p in [1e-12f64, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 0.999, 1.0] {
            let naive = 1.0 - (1.0 - p).powi(256);
            let fast = p_any(p);
            assert!((fast - naive).abs() < 1e-9, "p = {p}: {fast} vs {naive}");
        }
        assert_eq!(p_any(0.0), 0.0);
        // Tiny probabilities must not underflow to zero.
        assert!(p_any(1e-300) > 0.0);
    }

    #[test]
    fn guardband_is_fault_free() {
        let inj = injector();
        for v in [1200u32, 1100, 1000, 990, 980] {
            for w in 0..256 {
                let (s0, s1) = inj.stuck_masks(pc(5), WordOffset(w), Millivolts(v));
                assert!(s0.is_zero() && s1.is_zero(), "fault at {v} mV");
            }
        }
    }

    #[test]
    fn saturation_makes_everything_faulty() {
        let inj = injector();
        for w in 0..64 {
            let (s0, s1) = inj.stuck_masks(pc(0), WordOffset(w), Millivolts(820));
            assert_eq!((s0 | s1).count_ones(), 256, "word {w} not fully faulty");
            assert!((s0 & s1).is_zero());
        }
    }

    #[test]
    fn polarity_split_near_configured_share() {
        let inj = injector();
        let (n0, n1) = inj.count_range(pc(0), 0..2048, Millivolts(820));
        let total = (n0 + n1) as f64;
        let share0 = n0 as f64 / total;
        assert!((share0 - 0.47).abs() < 0.02, "share0 = {share0}");
    }

    #[test]
    fn tile_cache_stats_count_hits_and_misses() {
        let inj = injector();
        assert_eq!(inj.tile_cache_stats(), (0, 0));
        // First lookup at a voltage builds the table, repeats hit it.
        let _ = inj.stuck_masks(pc(0), WordOffset(0), Millivolts(880));
        let _ = inj.stuck_masks(pc(0), WordOffset(1), Millivolts(880));
        let (hits, misses) = inj.tile_cache_stats();
        assert_eq!(misses, 1, "one build for the first (PC, voltage)");
        assert!(hits >= 1, "second word must be served from the cache");
        // A new voltage invalidates that PC's entry: another miss.
        let _ = inj.stuck_masks(pc(0), WordOffset(0), Millivolts(870));
        assert_eq!(inj.tile_cache_stats().1, 2);
        // Clones inherit the counters but diverge independently.
        let cloned = inj.clone();
        assert_eq!(cloned.tile_cache_stats(), inj.tile_cache_stats());
        let _ = cloned.stuck_masks(pc(0), WordOffset(0), Millivolts(870));
        assert_eq!(cloned.tile_cache_stats().0, inj.tile_cache_stats().0 + 1);
    }

    #[test]
    fn masks_are_deterministic() {
        let a = injector();
        let b = injector();
        for w in [0u64, 17, 4091] {
            assert_eq!(
                a.stuck_masks(pc(9), WordOffset(w), Millivolts(880)),
                b.stuck_masks(pc(9), WordOffset(w), Millivolts(880))
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = injector();
        let b = FaultInjector::new(
            FaultModelParams::date21(),
            HbmGeometry::vcu128_reduced(),
            4321,
        );
        let mut differs = false;
        for w in 0..512 {
            if a.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
                != b.stuck_masks(pc(0), WordOffset(w), Millivolts(850))
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "distinct specimens must have distinct fault maps");
    }

    #[test]
    fn fault_set_monotone_in_voltage() {
        let inj = injector();
        // Sweep down in 10 mV steps; the union mask may only grow.
        for w in 0..128u64 {
            let mut prev = Word256::ZERO;
            let mut v = Millivolts(980);
            while v >= Millivolts(820) {
                let (s0, s1) = inj.stuck_masks(pc(2), WordOffset(w), v);
                let union = s0 | s1;
                assert_eq!(union & prev, prev, "fault set shrank at {v} word {w}");
                prev = union;
                v = v.saturating_sub(Millivolts(10));
            }
        }
    }

    #[test]
    fn observe_applies_polarities() {
        let inj = injector();
        let v = Millivolts(830);
        let w = WordOffset(3);
        let (s0, s1) = inj.stuck_masks(pc(1), w, v);
        // All-ones written: stuck-at-0 bits flip to 0.
        let ones = inj.observe(Word256::ONES, pc(1), w, v);
        let (f10, f01) = ones.flips_from(Word256::ONES);
        assert_eq!(f10, s0.count_ones());
        assert_eq!(f01, 0);
        // All-zeros written: stuck-at-1 bits flip to 1.
        let zeros = inj.observe(Word256::ZERO, pc(1), w, v);
        let (f10, f01) = zeros.flips_from(Word256::ZERO);
        assert_eq!(f01, s1.count_ones());
        assert_eq!(f10, 0);
    }

    #[test]
    fn bit_fault_agrees_with_masks() {
        let inj = injector();
        let v = Millivolts(845);
        let w = WordOffset(11);
        let (s0, s1) = inj.stuck_masks(pc(3), w, v);
        for bit in 0..256 {
            let expected = if s0.bit(bit) {
                Some(FaultPolarity::StuckAtZero)
            } else if s1.bit(bit) {
                Some(FaultPolarity::StuckAtOne)
            } else {
                None
            };
            assert_eq!(inj.bit_fault(pc(3), w, bit, v), expected);
        }
    }

    #[test]
    fn measured_rate_tracks_model_rate() {
        // At a mid-range voltage, the empirical rate over a decent sample
        // should approximate s0·c0 + s1·c1 averaged over variation.
        let inj = injector();
        let v = Millivolts(860);
        let words = 8192u64;
        let (n0, n1) = inj.count_range(pc(7), 0..words, v);
        let measured = (n0 + n1) as f64 / (words as f64 * 256.0);

        // Average the analytic rate over the same words.
        let mut expected = 0.0;
        for w in 0..words {
            let (c0, c1) = inj.class_probabilities(pc(7), WordOffset(w), v);
            expected += 0.47 * c0 + 0.53 * c1;
        }
        expected /= words as f64;

        let ratio = measured / expected;
        assert!(
            (0.8..1.25).contains(&ratio),
            "measured {measured:.3e} vs expected {expected:.3e}"
        );
    }

    #[test]
    fn hotter_device_is_weaker() {
        let mut hot = injector();
        hot.set_temperature(Celsius(55.0));
        let cold = injector();
        let v = Millivolts(900);
        let (h0, h1) = hot.count_range(pc(0), 0..4096, v);
        let (c0, c1) = cold.count_range(pc(0), 0..4096, v);
        assert!(h0 + h1 >= c0 + c1, "hot {h0}+{h1} vs cold {c0}+{c1}");
    }

    #[test]
    fn scan_faulty_agrees_with_full_enumeration() {
        let inj = injector();
        let v = Millivolts(880);
        let scanned: Vec<_> = inj.scan_faulty(pc(4), 0..4096, v).collect();
        // Same totals as the counting walk.
        let (n0, n1) = inj.count_range(pc(4), 0..4096, v);
        let scan0: u64 = scanned
            .iter()
            .map(|(_, s0, _)| u64::from(s0.count_ones()))
            .sum();
        let scan1: u64 = scanned
            .iter()
            .map(|(_, _, s1)| u64::from(s1.count_ones()))
            .sum();
        assert_eq!((scan0, scan1), (n0, n1));
        // Every yielded word really is faulty, and none is yielded twice.
        let mut seen = std::collections::HashSet::new();
        for (offset, s0, s1) in &scanned {
            assert!(!(*s0 | *s1).is_zero());
            assert!(seen.insert(offset.0));
        }
        // In the guardband, the scan yields nothing.
        assert_eq!(inj.scan_faulty(pc(4), 0..4096, Millivolts(990)).count(), 0);
    }

    #[test]
    fn conditional_threshold_monotone_in_c() {
        // c / p_any(s·c) must be increasing in c so fault sets are monotone.
        let s = 0.47;
        let mut last = 0.0;
        for i in 1..=10_000 {
            let c = f64::from(i) / 10_000.0;
            let ratio = c / p_any(s * c);
            assert!(ratio >= last, "non-monotone at c = {c}");
            last = ratio;
        }
    }

    #[test]
    fn cached_kernel_matches_reference_path() {
        let inj = injector();
        for v in [1000u32, 990, 979, 960, 930, 900, 870, 840, 820] {
            for w in [0u64, 1, 31, 32, 511, 512, 4095, 8191] {
                let v = Millivolts(v);
                let w = WordOffset(w);
                assert_eq!(
                    inj.stuck_masks(pc(6), w, v),
                    inj.stuck_masks_per_word_impl(pc(6), w, v),
                    "masks diverge at {v} {w}"
                );
                assert_eq!(
                    inj.class_probabilities(pc(6), w, v),
                    inj.class_probabilities_per_word(pc(6), w, v),
                    "probabilities diverge at {v} {w}"
                );
            }
        }
    }

    #[test]
    fn count_range_matches_per_word_walk() {
        let inj = injector();
        for v in [990u32, 940, 880, 830] {
            let v = Millivolts(v);
            let range = 100u64..2100;
            let mut n0 = 0u64;
            let mut n1 = 0u64;
            for w in range.clone() {
                let (s0, s1) = inj.stuck_masks_per_word_impl(pc(4), WordOffset(w), v);
                n0 += u64::from(s0.count_ones());
                n1 += u64::from(s1.count_ones());
            }
            assert_eq!(inj.count_range(pc(4), range, v), (n0, n1), "at {v}");
        }
    }

    #[test]
    fn temperature_change_invalidates_region_cache() {
        let mut inj = injector();
        let v = Millivolts(900);
        // Populate the tile cache at ambient …
        let cold = inj.count_range(pc(0), 0..4096, v);
        // … then heat the device: cached tile probabilities must be rebuilt,
        // matching an injector that never cached at ambient.
        inj.set_temperature(Celsius(55.0));
        let mut fresh = injector();
        fresh.set_temperature(Celsius(55.0));
        assert_eq!(
            inj.count_range(pc(0), 0..4096, v),
            fresh.count_range(pc(0), 0..4096, v)
        );
        assert_ne!(
            inj.count_range(pc(0), 0..4096, v),
            cold,
            "a 20 °C rise must change the fault count at 900 mV"
        );
        for w in 0..64 {
            assert_eq!(
                inj.stuck_masks(pc(0), WordOffset(w), v),
                inj.stuck_masks_per_word_impl(pc(0), WordOffset(w), v),
                "stale tile cache leaked after temperature change"
            );
        }
    }

    #[test]
    fn clones_invalidate_independently() {
        let mut original = injector();
        let v = Millivolts(900);
        let at_ambient = original.count_range(pc(0), 0..512, v); // warm cache
        let clone = original.clone();
        original.set_temperature(Celsius(55.0));
        assert_eq!(
            clone.count_range(pc(0), 0..512, v),
            at_ambient,
            "heating the original must not touch the clone's cache"
        );
    }

    #[test]
    fn faulty_words_sorted_and_matches_scan() {
        let inj = injector();
        let v = Millivolts(870);
        let bulk = inj.faulty_words(pc(2), 0..4096, v);
        assert!(bulk.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
        let scanned: Vec<_> = inj.scan_faulty(pc(2), 0..4096, v).collect();
        assert_eq!(bulk, scanned);
    }

    #[test]
    fn unindexed_geometry_uses_tile_cache_fallback() {
        // 131072 words/pc exceeds the gate-index cap, exercising the
        // per-word fallback over the tile cache.
        let geometry = HbmGeometry::vcu128().scaled(64);
        assert!(geometry.words_per_pc() > MAX_INDEXED_WORDS_PER_PC);
        let inj = FaultInjector::new(FaultModelParams::date21(), geometry, 77);
        for v in [990u32, 900, 850] {
            let v = Millivolts(v);
            let mut n0 = 0u64;
            let mut n1 = 0u64;
            for w in 0..2048 {
                let (s0, s1) = inj.stuck_masks_per_word_impl(pc(1), WordOffset(w), v);
                n0 += u64::from(s0.count_ones());
                n1 += u64::from(s1.count_ones());
            }
            assert_eq!(inj.count_range(pc(1), 0..2048, v), (n0, n1), "at {v}");
            let lazy: Vec<_> = inj.scan_faulty(pc(1), 0..2048, v).collect();
            assert_eq!(
                lazy,
                inj.faulty_words(pc(1), 0..2048, v),
                "lazy scan and bulk collection diverge at {v}"
            );
        }
    }

    #[test]
    fn coupled_guardband_is_fault_free() {
        let inj = injector();
        for v in [1200u32, 1000, 990, 980] {
            for w in 0..128 {
                let (s0, s1) = inj.coupled_stuck_masks(pc(5), WordOffset(w), Millivolts(v));
                assert!(s0.is_zero() && s1.is_zero(), "coupled fault at {v} mV");
            }
        }
    }

    #[test]
    fn coupled_masks_disjoint_deterministic_and_saturating() {
        let inj = injector();
        for w in 0..64 {
            let v = Millivolts(820);
            let (s0, s1) = inj.coupled_stuck_masks(pc(0), WordOffset(w), v);
            assert_eq!((s0 | s1).count_ones(), 256, "word {w} not fully faulty");
            assert!((s0 & s1).is_zero());
            assert_eq!(inj.coupled_stuck_masks(pc(0), WordOffset(w), v), (s0, s1));
        }
        // The coupled field is a different specimen realization than the
        // legacy field at the same seed (distinct hash domains).
        let mid = Millivolts(870);
        let differs = (0..512).any(|w| {
            inj.coupled_stuck_masks(pc(0), WordOffset(w), mid)
                != inj.stuck_masks(pc(0), WordOffset(w), mid)
        });
        assert!(differs, "coupled and legacy fields should not coincide");
    }

    #[test]
    fn coupled_fault_set_monotone_in_voltage() {
        let inj = injector();
        for w in 0..128u64 {
            let mut prev0 = Word256::ZERO;
            let mut prev1 = Word256::ZERO;
            let mut v = Millivolts(980);
            while v >= Millivolts(820) {
                let (s0, s1) = inj.coupled_stuck_masks(pc(2), WordOffset(w), v);
                assert_eq!(s0 & prev0, prev0, "stuck-0 set shrank at {v} word {w}");
                assert_eq!(s1 & prev1, prev1, "stuck-1 set shrank at {v} word {w}");
                prev0 = s0;
                prev1 = s1;
                v = v.saturating_sub(Millivolts(10));
            }
        }
    }

    #[test]
    fn coupled_enumeration_matches_per_word_masks() {
        let inj = injector();
        for v in [990u32, 965, 940, 900, 870, 840] {
            let v = Millivolts(v);
            let range = 0u64..2048;
            let mut expected = Vec::new();
            for w in range.clone() {
                let (s0, s1) = inj.coupled_stuck_masks(pc(6), WordOffset(w), v);
                if !(s0.is_zero() && s1.is_zero()) {
                    expected.push((WordOffset(w), s0, s1));
                }
            }
            let bulk = inj.coupled_faulty_words(pc(6), range.clone(), v);
            assert_eq!(bulk, expected, "coupled enumeration diverges at {v}");
            let (n0, n1) = inj.coupled_count_range(pc(6), range, v);
            let sum0: u64 = expected
                .iter()
                .map(|(_, s0, _)| u64::from(s0.count_ones()))
                .sum();
            let sum1: u64 = expected
                .iter()
                .map(|(_, _, s1)| u64::from(s1.count_ones()))
                .sum();
            assert_eq!((n0, n1), (sum0, sum1), "coupled counts diverge at {v}");
        }
    }

    #[test]
    fn coupled_rate_tracks_legacy_rate() {
        // Same marginal per-bit probability `s·c` in both fields: aggregate
        // counts over a decent sample must agree statistically.
        let inj = injector();
        let v = Millivolts(860);
        let (l0, l1) = inj.count_range(pc(7), 0..8192, v);
        let (c0, c1) = inj.coupled_count_range(pc(7), 0..8192, v);
        let legacy = (l0 + l1) as f64;
        let coupled = (c0 + c1) as f64;
        let ratio = coupled / legacy;
        assert!(
            (0.8..1.25).contains(&ratio),
            "coupled {coupled} vs legacy {legacy}"
        );
    }

    #[test]
    fn faulty_words_delta_matches_set_difference() {
        let inj = injector();
        let range = 0u64..4096;
        for (hi, lo) in [
            (990u32, 965u32),
            (965, 940),
            (940, 900),
            (900, 860),
            (860, 830),
        ] {
            let (hi, lo) = (Millivolts(hi), Millivolts(lo));
            let before: std::collections::HashSet<u64> = inj
                .coupled_faulty_words(pc(3), range.clone(), hi)
                .iter()
                .map(|&(offset, _, _)| offset.0)
                .collect();
            let expected: Vec<_> = inj
                .coupled_faulty_words(pc(3), range.clone(), lo)
                .into_iter()
                .filter(|(offset, _, _)| !before.contains(&offset.0))
                .collect();
            let delta = inj.faulty_words_delta(pc(3), range.clone(), hi, lo);
            assert_eq!(delta, expected, "delta diverges for {hi} → {lo}");
        }
        // A non-descent or a same-voltage window is empty.
        assert!(inj
            .faulty_words_delta(pc(3), range.clone(), Millivolts(900), Millivolts(900))
            .is_empty());
        assert!(inj
            .faulty_words_delta(pc(3), range.clone(), Millivolts(900), Millivolts(950))
            .is_empty());
        // From inside the guardband the delta is the full faulty set.
        assert_eq!(
            inj.faulty_words_delta(pc(3), range.clone(), Millivolts(1200), Millivolts(900)),
            inj.coupled_faulty_words(pc(3), range, Millivolts(900))
        );
    }

    #[test]
    fn carry_advance_is_bit_identical_to_rescan() {
        let inj = injector();
        let range = 0u64..4096;
        let mut v = Millivolts(990);
        let (mut carry, start) = inj.coupled_carry_start(pc(2), range.clone(), v);
        assert_eq!(carry.voltage(), v);
        assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc(2), range.clone(), v)
        );
        let mut total = start;
        while v > Millivolts(820) {
            v = v.saturating_sub(Millivolts(10));
            let stats = inj.coupled_carry_advance(&mut carry, v);
            total.absorb(stats);
            assert_eq!(carry.voltage(), v);
            assert_eq!(
                carry.masks(),
                inj.coupled_faulty_words(pc(2), range.clone(), v),
                "carry diverged from rescan at {v}"
            );
        }
        assert!(total.carried > 0, "descent never reused a carried word");
        assert!(!carry.is_empty());
        // Below both saturation voltages every bit has flipped: a further
        // advance is pure reuse — nothing pending, nothing re-enumerated.
        let stats = inj.coupled_carry_advance(&mut carry, Millivolts(815));
        assert_eq!(stats.carried, carry.len() as u64);
        assert_eq!(stats.delta_words(), 0);
        assert_eq!(stats.reuse_ratio(), 1.0);
    }

    #[test]
    fn word_tier_carry_advance_matches_rescan() {
        // A range above the bit-carry capacity exercises the word-granular
        // tier (per-word next-change thresholds, no pending bit lists).
        let inj = injector();
        let range = 0u64..8192;
        assert!(range.end - range.start > MAX_BIT_CARRY_WORDS);
        let (mut carry, _) = inj.coupled_carry_start(pc(2), range.clone(), Millivolts(990));
        for v in [970u32, 940, 900, 870, 840, 820] {
            let v = Millivolts(v);
            inj.coupled_carry_advance(&mut carry, v);
            assert_eq!(
                carry.masks(),
                inj.coupled_faulty_words(pc(2), range.clone(), v),
                "word-tier carry diverged from rescan at {v}"
            );
        }
        // Saturated: the word tier's next-thresholds are all exhausted, so
        // a further advance is also pure reuse.
        let stats = inj.coupled_carry_advance(&mut carry, Millivolts(815));
        assert_eq!(stats.carried, carry.len() as u64);
        assert_eq!(stats.delta_words(), 0);
    }

    #[test]
    fn carry_rebuilds_on_ascent_or_temperature_change() {
        let mut inj = injector();
        let range = 0u64..1024;
        let (mut carry, _) = inj.coupled_carry_start(pc(4), range.clone(), Millivolts(880));
        // Ascending is not a descent: the carry is rebuilt, still exact.
        let stats = inj.coupled_carry_advance(&mut carry, Millivolts(940));
        assert_eq!(stats.carried, 0);
        assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc(4), range.clone(), Millivolts(940))
        );
        // A temperature change voids the carried probabilities.
        inj.set_temperature(Celsius(55.0));
        let stats = inj.coupled_carry_advance(&mut carry, Millivolts(920));
        assert_eq!(stats.carried, 0);
        assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc(4), range.clone(), Millivolts(920))
        );
        // Advancing to the same voltage is a carried no-op.
        let len = carry.len() as u64;
        let stats = inj.coupled_carry_advance(&mut carry, Millivolts(920));
        assert_eq!(stats.carried, len);
        assert_eq!(stats.delta_words(), 0);
    }

    #[test]
    fn coupled_unindexed_geometry_falls_back() {
        let geometry = HbmGeometry::vcu128().scaled(64);
        assert!(geometry.words_per_pc() > MAX_INDEXED_WORDS_PER_PC);
        let inj = FaultInjector::new(FaultModelParams::date21(), geometry, 77);
        let range = 0u64..1024;
        for v in [940u32, 880] {
            let v = Millivolts(v);
            let mut expected = Vec::new();
            for w in range.clone() {
                let (s0, s1) = inj.coupled_stuck_masks(pc(1), WordOffset(w), v);
                if !(s0.is_zero() && s1.is_zero()) {
                    expected.push((WordOffset(w), s0, s1));
                }
            }
            assert_eq!(
                inj.coupled_faulty_words(pc(1), range.clone(), v),
                expected,
                "unindexed coupled enumeration diverges at {v}"
            );
        }
        // Delta and carry advance agree with rescans through the fallback.
        let delta = inj.faulty_words_delta(pc(1), range.clone(), Millivolts(940), Millivolts(880));
        let before: std::collections::HashSet<u64> = inj
            .coupled_faulty_words(pc(1), range.clone(), Millivolts(940))
            .iter()
            .map(|&(offset, _, _)| offset.0)
            .collect();
        let expected: Vec<_> = inj
            .coupled_faulty_words(pc(1), range.clone(), Millivolts(880))
            .into_iter()
            .filter(|(offset, _, _)| !before.contains(&offset.0))
            .collect();
        assert_eq!(delta, expected);
        let (mut carry, _) = inj.coupled_carry_start(pc(1), range.clone(), Millivolts(940));
        inj.coupled_carry_advance(&mut carry, Millivolts(880));
        assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc(1), range, Millivolts(880))
        );
        // A range above the bit-carry cap takes the word tier's unindexed
        // two-pointer fallback for newly activated words.
        let wide = 0u64..6000;
        assert!(wide.end - wide.start > MAX_BIT_CARRY_WORDS);
        let (mut carry, _) = inj.coupled_carry_start(pc(1), wide.clone(), Millivolts(940));
        inj.coupled_carry_advance(&mut carry, Millivolts(880));
        assert_eq!(
            carry.masks(),
            inj.coupled_faulty_words(pc(1), wide, Millivolts(880))
        );
    }
}
