//! Observed sweep: the same crash-heavy supervised campaign as
//! `resilient_sweep`, but watched through the telemetry layer. A JSONL
//! trace sink and a human progress sink are attached to the run; the
//! example prints the progress narration as it happens, then dissects the
//! recorded trace — event counts by type, retries, power cycles and the
//! final counter snapshot.
//!
//! Run with: `cargo run --release --example observed_sweep [seed]`

use std::collections::BTreeMap;

use hbm_undervolt_suite::device::TransientCrashModel;
use hbm_undervolt_suite::traffic::DataPattern;
use hbm_undervolt_suite::undervolt::telemetry::{
    JsonlSink, ProgressSink, SharedBuffer, Telemetry, TraceRecord,
};
use hbm_undervolt_suite::undervolt::{
    summarize, ReliabilityConfig, RetryPolicy, SweepConfig, VoltageSweep,
};
use hbm_units::Millivolts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    // A campaign across the crash cliff on a specimen with flaky
    // transients, so the trace has a recovery story to tell.
    let mut measurement = ReliabilityConfig::quick();
    measurement.sweep = VoltageSweep::new(Millivolts(860), Millivolts(790), Millivolts(10))?;
    measurement.batch_size = 1;
    measurement.words_per_pc = Some(64);
    measurement.patterns = vec![DataPattern::AllOnes, DataPattern::AllZeros];

    let campaign = SweepConfig::from_reliability(measurement)
        .seed(seed)
        .transient_crashes(TransientCrashModel::new(0.4, Millivolts(40)))
        .retry_policy(RetryPolicy::new(3));

    // Two observers on one hub: the machine-readable trace accumulates in
    // a buffer (hbmctl writes it to --trace-file instead), the progress
    // narration goes straight to stderr.
    let trace = SharedBuffer::new();
    let mut telemetry = Telemetry::new();
    telemetry.add_observer(Box::new(JsonlSink::new(trace.clone())));
    telemetry.add_observer(Box::new(ProgressSink::new(std::io::stderr())));

    let report = campaign.run_observed(&telemetry)?;
    telemetry.finish();
    println!("{}", summarize(&report));

    // The trace is one JSON record per line; tally the event types.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for line in trace.contents().lines() {
        let record: TraceRecord = serde_json::from_str(line)?;
        let name = serde_json::to_string(&record.event)?;
        let name = name
            .trim_start_matches(['{', '"'])
            .split('"')
            .next()
            .unwrap_or("?")
            .to_owned();
        *counts.entry(name).or_default() += 1;
    }
    println!("\nevent counts:");
    for (event, n) in &counts {
        println!("  {event:<20} {n}");
    }

    let snapshot = telemetry.metrics().snapshot();
    println!("\ncounters:");
    println!("  words scanned        {}", snapshot.words_scanned);
    println!("  masks scanned        {}", snapshot.masks_scanned);
    println!(
        "  retries (backoff ms) {} ({})",
        snapshot.retries, snapshot.retry_backoff_ms
    );
    println!("  power cycles         {}", snapshot.power_cycles);
    println!(
        "  tile cache hit/miss  {}/{}",
        snapshot.tile_cache_hits, snapshot.tile_cache_misses
    );
    Ok(())
}
