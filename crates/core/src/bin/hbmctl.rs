//! `hbmctl` — host-side control tool for the simulated HBM undervolting
//! platform, mirroring the custom host interface the study built to drive
//! its experiments.
//!
//! Every measurement command is dispatched through the unified
//! [`Experiment`] trait and rendered through [`Render`], so the tool is a
//! thin shell: build a platform, pick an experiment, pick an output
//! format.
//!
//! ```text
//! hbmctl guardband   [--seed N] [--workers N] [--format text|csv|json]
//! hbmctl power-sweep [--seed N] [--workers N] [--format text|csv|json]
//! hbmctl reliability [--seed N] [--workers N] [--format text|csv|json]
//!                    [--from MV] [--to MV] [--step MV]
//!                    [--batch N] [--words N] [--sample N]
//!                    [--kernel cached|traffic]
//! hbmctl trade-off   [--seed N] [--format text|csv|json]
//! hbmctl fault-map   [--seed N] [--out FILE]
//! hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE
//! ```

use std::process::ExitCode;

use hbm_faults::FaultMap;
use hbm_power::HbmPowerModel;
use hbm_traffic::DataPattern;
use hbm_undervolt::report::{to_json, Render};
use hbm_undervolt::{
    ExecutionMode, Experiment, GuardbandFinder, Platform, PowerSweep, ReliabilityConfig,
    ReliabilityTester, TestScope, TradeOffAnalysis, VoltageSweep,
};
use hbm_units::{Millivolts, Ratio};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_owned(), value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, raw)) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {raw}")),
        }
    }

    fn optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(None),
            Some((_, raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {raw}")),
        }
    }

    fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let (_, raw) = self
            .flags
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value for --{name}: {raw}"))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("hbmctl: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hbmctl guardband   [--seed N] [--workers N] [--format text|csv|json]
  hbmctl power-sweep [--seed N] [--workers N] [--format text|csv|json]
  hbmctl reliability [--seed N] [--workers N] [--format text|csv|json]
                     [--from MV] [--to MV] [--step MV] [--batch N] [--words N] [--sample N]
                     [--kernel cached|traffic]
  hbmctl trade-off   [--seed N] [--format text|csv|json]
  hbmctl fault-map   [--seed N] [--out FILE]
  hbmctl plan        [--seed N] --capacity-gb G --tolerance RATE";

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or("no command given")?;
    let seed: u64 = args.flag("seed", 7)?;
    let workers: usize = args.flag("workers", 1)?;

    match command {
        "guardband" => dispatch(&GuardbandFinder::new(), seed, workers, &args),
        "power-sweep" => dispatch(&PowerSweep::date21(), seed, workers, &args),
        "reliability" => {
            let tester = reliability_tester(&args)?;
            dispatch(&tester, seed, workers, &args)
        }
        "trade-off" => dispatch(&trade_off(seed), seed, workers, &args),
        "fault-map" => fault_map(seed, &args),
        "plan" => plan(seed, &args),
        other => Err(format!("unknown command: {other}")),
    }
}

fn platform(seed: u64, workers: usize) -> Platform {
    Platform::builder().seed(seed).workers(workers).build()
}

/// Runs any experiment and prints its report in the requested format —
/// the whole tool funnels through this one generic function.
fn dispatch<E>(experiment: &E, seed: u64, workers: usize, args: &Args) -> Result<(), String>
where
    E: Experiment,
    E::Report: Render + serde::Serialize,
{
    let format: String = args.flag("format", "text".to_owned())?;
    let mut p = platform(seed, workers);
    eprintln!(
        "hbmctl: {} (seed {seed}, {} worker{})",
        experiment.name(),
        p.workers(),
        if p.workers() == 1 { "" } else { "s" }
    );
    let report = experiment.run(&mut p).map_err(|e| e.to_string())?;
    match format.as_str() {
        "text" => print!("{}", report.to_text()),
        "csv" => print!("{}", report.to_csv()),
        "json" => println!("{}", to_json(&report).map_err(|e| e.to_string())?),
        other => return Err(format!("unknown format: {other} (use text, csv or json)")),
    }
    Ok(())
}

fn reliability_tester(args: &Args) -> Result<ReliabilityTester, String> {
    let from: u32 = args.flag("from", 980)?;
    let to: u32 = args.flag("to", 850)?;
    let step: u32 = args.flag("step", 10)?;
    let batch: usize = args.flag("batch", 1)?;
    let words: u64 = args.flag("words", 1024)?;
    let sample: Option<u64> = args.optional("sample")?;
    let kernel: String = args.flag("kernel", "cached".to_owned())?;
    let mode = match kernel.as_str() {
        "cached" => ExecutionMode::CachedMasks,
        "traffic" => ExecutionMode::Traffic,
        other => return Err(format!("unknown kernel: {other} (use cached or traffic)")),
    };

    let config = ReliabilityConfig {
        sweep: VoltageSweep::new(Millivolts(from), Millivolts(to), Millivolts(step))
            .map_err(|e| e.to_string())?,
        batch_size: batch,
        patterns: vec![DataPattern::AllOnes, DataPattern::AllZeros],
        scope: TestScope::EntireHbm,
        words_per_pc: Some(words),
        sample_words: sample,
        mode,
    };
    ReliabilityTester::new(config).map_err(|e| e.to_string())
}

fn trade_off(seed: u64) -> TradeOffAnalysis {
    let p = platform(seed, 1);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    TradeOffAnalysis::new(map, HbmPowerModel::date21())
}

fn fault_map(seed: u64, args: &Args) -> Result<(), String> {
    let p = platform(seed, 1);
    let map = FaultMap::from_predictor(
        p.full_scale_predictor(),
        Millivolts(980),
        Millivolts(810),
        Millivolts(10),
    );
    let json = to_json(&map).map_err(|e| e.to_string())?;
    match args.flags.iter().find(|(n, _)| n == "out") {
        Some((_, path)) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "fault map for seed {seed}: {} PCs x {} voltages -> {path}",
                map.profiles.len(),
                map.voltages.len()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn plan(seed: u64, args: &Args) -> Result<(), String> {
    let capacity_gb: f64 = args.required("capacity-gb")?;
    let tolerance: f64 = args.required("tolerance")?;
    if !(0.0..=1.0).contains(&tolerance) {
        return Err("tolerance must be a fraction in [0, 1]".to_owned());
    }

    let analysis = trade_off(seed);
    let bytes = (capacity_gb * (1u64 << 30) as f64) as u64;
    match analysis.plan(bytes, Ratio(tolerance)) {
        Some(point) => {
            println!("operating point for ≥{capacity_gb} GB at ≤{tolerance} fault rate:");
            println!("  voltage        {}", point.voltage);
            println!(
                "  usable PCs     {} ({} GB)",
                point.usable_pcs.len(),
                point.capacity_bytes >> 30
            );
            println!("  power saving   {:.2}x vs nominal", point.saving_factor);
            println!("  worst PC rate  {:.3e}", point.worst_fault_rate.as_f64());
            Ok(())
        }
        None => Err(format!(
            "no swept voltage provides {capacity_gb} GB within fault rate {tolerance}"
        )),
    }
}
