//! The parallel sweep execution engine.
//!
//! Every measurement loop in this crate boils down to "run one macro program
//! per AXI port and collect per-port statistics". The engine executes that
//! shape either sequentially (the historical per-port loop) or sharded
//! across `std::thread::scope` workers, one disjoint pseudo-channel shard
//! per job. The two modes are bit-identical:
//!
//! - the fault injector is a pure function of `(seed, pc, offset, supply)` —
//!   it holds no RNG state a schedule could perturb;
//! - each shard owns its pseudo channel's array and counters outright, so no
//!   write of one worker is visible to another;
//! - any sampled randomness is keyed per work item via
//!   [`hbm_faults::pc_stream`], never drawn from shared state;
//! - results are reassembled in job order regardless of completion order.
//!
//! `workers` comes from the platform ([`crate::PlatformBuilder::workers`]);
//! the default of 1 keeps the exact sequential code path.

use hbm_device::{DeviceError, PcShard, PortId, Word256, WordOffset};
use hbm_faults::FaultInjector;
use hbm_traffic::{MacroProgram, MemoryPort, PortStats, TrafficGenerator};

use crate::error::ExperimentError;
use crate::platform::Platform;

/// Fault-injecting access to one pseudo-channel shard: the parallel
/// counterpart of [`crate::UndervoltedPort`]. Writes go straight to the
/// shard's array; reads pass through the undervolting fault model at the
/// supply voltage snapshotted when the shard set was created.
#[derive(Debug)]
pub struct ShardPort<'a> {
    shard: PcShard<'a>,
    injector: &'a FaultInjector,
}

impl<'a> ShardPort<'a> {
    pub(crate) fn new(shard: PcShard<'a>, injector: &'a FaultInjector) -> Self {
        ShardPort { shard, injector }
    }

    /// The AXI port this shard models.
    #[must_use]
    pub fn port(&self) -> PortId {
        self.shard.port()
    }
}

impl MemoryPort for ShardPort<'_> {
    fn write(&mut self, offset: WordOffset, word: Word256) -> Result<(), DeviceError> {
        self.shard.write(offset, word)
    }

    fn read(&mut self, offset: WordOffset) -> Result<Word256, DeviceError> {
        let stored = self.shard.read(offset)?;
        Ok(self.injector.observe(
            stored,
            self.shard.port().direct_pc(),
            offset,
            self.shard.supply(),
        ))
    }
}

/// Runs one macro program per port and returns per-port statistics in job
/// order, using the platform's configured worker count.
///
/// With one worker this is exactly the sequential per-port loop over
/// [`Platform::port`]; with more workers the device is split into
/// per-pseudo-channel shards and the jobs run on scoped threads.
///
/// # Errors
///
/// The first device error in job order; a configuration error if a port
/// appears twice in a sharded batch (a port's shard can only be handed to
/// one job).
pub(crate) fn run_jobs(
    platform: &mut Platform,
    jobs: &[(PortId, MacroProgram)],
) -> Result<Vec<(PortId, PortStats)>, ExperimentError> {
    let workers = platform.workers();
    if workers <= 1 {
        let mut results = Vec::with_capacity(jobs.len());
        for (port, program) in jobs {
            let mut tg = TrafficGenerator::new(*port);
            let stats = tg
                .run(program, &mut platform.port(*port))
                .map_err(ExperimentError::from)?;
            results.push((*port, stats));
        }
        return Ok(results);
    }

    let shards = platform.shard_ports()?;
    let mut slots: Vec<Option<ShardPort<'_>>> = shards.into_iter().map(Some).collect();
    let mut sharded = Vec::with_capacity(jobs.len());
    for (port, program) in jobs {
        let access = slots
            .get_mut(usize::from(port.as_u8()))
            .and_then(Option::take)
            .ok_or_else(|| {
                ExperimentError::config(format!(
                    "port {} appears more than once in a sharded batch",
                    port.as_u8()
                ))
            })?;
        sharded.push((*port, program, access));
    }
    hbm_traffic::run_sharded(sharded, workers).map_err(ExperimentError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_traffic::DataPattern;
    use hbm_units::Millivolts;

    fn jobs_for(
        platform: &Platform,
        words: u64,
        pattern: DataPattern,
    ) -> Vec<(PortId, MacroProgram)> {
        (0..platform.geometry().total_pcs())
            .map(|i| {
                (
                    PortId::new(i).unwrap(),
                    MacroProgram::write_then_check(0..words, pattern),
                )
            })
            .collect()
    }

    fn run_at(workers: usize, voltage: Millivolts) -> Vec<(PortId, PortStats)> {
        let mut platform = Platform::builder().seed(7).workers(workers).build();
        platform.set_voltage(voltage).unwrap();
        let jobs = jobs_for(&platform, 128, DataPattern::AllOnes);
        run_jobs(&mut platform, &jobs).unwrap()
    }

    #[test]
    fn sequential_and_parallel_agree_with_faults() {
        let sequential = run_at(1, Millivolts(860));
        assert_eq!(sequential.len(), 32);
        assert!(
            sequential.iter().any(|(_, s)| s.total_flips() > 0),
            "860 mV must show faults"
        );
        for workers in [2, 4, 8] {
            assert_eq!(
                sequential,
                run_at(workers, Millivolts(860)),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn duplicate_port_rejected_in_sharded_mode() {
        let mut platform = Platform::builder().seed(7).workers(4).build();
        let port = PortId::new(3).unwrap();
        let program = MacroProgram::write_then_check(0..4, DataPattern::AllOnes);
        let jobs = vec![(port, program.clone()), (port, program)];
        let err = run_jobs(&mut platform, &jobs).unwrap_err();
        assert!(matches!(err, ExperimentError::Config { .. }));
    }

    #[test]
    fn parallel_mode_updates_device_stats_like_sequential() {
        let total_stats = |workers: usize| {
            let mut platform = Platform::builder().seed(7).workers(workers).build();
            platform.set_voltage(Millivolts(900)).unwrap();
            let jobs = jobs_for(&platform, 64, DataPattern::Checkerboard);
            run_jobs(&mut platform, &jobs).unwrap();
            platform.device().total_stats()
        };
        assert_eq!(total_stats(1), total_stats(8));
    }
}
