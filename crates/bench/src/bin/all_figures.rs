//! Regenerates every table/figure of the paper in one run: a single loop
//! over the unified `DynExperiment` objects.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);

    let mut platform = hbm_bench::platform(seed);
    for (title, experiment) in hbm_bench::figure_experiments(&platform) {
        let report = experiment
            .run_boxed(&mut platform)
            .unwrap_or_else(|e| panic!("{}: {e}", experiment.name()));
        println!("==== {title} ====\n{}", report.to_text());
    }

    let s = hbm_bench::characterization(seed);
    println!("==== Characterization ====");
    println!(
        "onsets: 1->0 {:?}, 0->1 {:?}; polarity ratio {:.2}; stack ratio {:.2}",
        s.onset_1to0, s.onset_0to1, s.polarity_ratio, s.stack_ratio
    );
}
