//! Property-based tests for the device crate's core invariants.

use hbm_device::{
    DecodedAddress, HbmDevice, HbmGeometry, MemoryArray, PcIndex, PortId, Word256, WordOffset,
};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = HbmGeometry> {
    // Organization fixed at the VCU128 shape; capacity scaled by powers of two.
    (0u32..=14).prop_map(|log2| HbmGeometry::vcu128().scaled(1 << log2))
}

fn arb_word() -> impl Strategy<Value = Word256> {
    any::<[u64; 4]>().prop_map(Word256)
}

proptest! {
    /// decode(encode(x)) == x for every in-range word offset.
    #[test]
    fn address_decode_encode_bijective(
        geometry in arb_geometry(),
        raw in any::<u64>(),
    ) {
        let offset = WordOffset(raw % geometry.words_per_pc());
        let decoded = offset.decode(geometry);
        prop_assert_eq!(decoded.encode(geometry), offset);
    }

    /// Every decoded field is within the geometry bounds.
    #[test]
    fn decoded_fields_in_bounds(
        geometry in arb_geometry(),
        raw in any::<u64>(),
    ) {
        let offset = WordOffset(raw % geometry.words_per_pc());
        let DecodedAddress { bank, row, col } = offset.decode(geometry);
        prop_assert!(u32::from(bank.0) < u32::from(geometry.banks_per_pc()));
        prop_assert!(row.0 < geometry.rows_per_bank());
        prop_assert!(col < geometry.words_per_row());
    }

    /// Distinct offsets decode to distinct addresses (injectivity).
    #[test]
    fn distinct_offsets_decode_distinct(
        geometry in arb_geometry(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = WordOffset(a % geometry.words_per_pc());
        let b = WordOffset(b % geometry.words_per_pc());
        prop_assume!(a != b);
        prop_assert_ne!(a.decode(geometry), b.decode(geometry));
    }

    /// An array returns the most recent write, and untouched neighbours stay
    /// zero.
    #[test]
    fn array_read_your_writes(
        writes in prop::collection::vec((0u64..8192, arb_word()), 1..64),
        probe in 0u64..8192,
    ) {
        let mut array = MemoryArray::new(8192);
        let mut expected = std::collections::HashMap::new();
        for (offset, word) in &writes {
            array.write(WordOffset(*offset), *word).unwrap();
            expected.insert(*offset, *word);
        }
        for (offset, word) in &expected {
            prop_assert_eq!(array.read(WordOffset(*offset)).unwrap(), *word);
        }
        if !expected.contains_key(&probe) {
            prop_assert_eq!(array.read(WordOffset(probe)).unwrap(), Word256::ZERO);
        }
    }

    /// Flip classification is conservative: counts sum to the XOR popcount
    /// and invert when expected/observed swap roles.
    #[test]
    fn flip_classification_consistent(expected in arb_word(), observed in arb_word()) {
        let (f10, f01) = observed.flips_from(expected);
        prop_assert_eq!(f10 + f01, observed.diff_bits(expected));
        let (r10, r01) = expected.flips_from(observed);
        prop_assert_eq!((f10, f01), (r01, r10));
    }

    /// Stuck-bit application is idempotent and forces exactly the mask bits.
    #[test]
    fn stuck_bits_idempotent(
        stored in arb_word(),
        stuck0 in arb_word(),
        stuck1 in arb_word(),
    ) {
        let once = stored.with_stuck_bits(stuck0, stuck1);
        let twice = once.with_stuck_bits(stuck0, stuck1);
        prop_assert_eq!(once, twice);
        // Bits in stuck1 always read 1; bits in stuck0-only always read 0.
        prop_assert_eq!(once & stuck1, stuck1);
        prop_assert_eq!(once & (stuck0 & !stuck1), Word256::ZERO);
    }

    /// AXI writes land on exactly one pseudo channel.
    #[test]
    fn axi_writes_isolated(
        port_index in 0u8..32,
        offset in 0u64..1024,
        word in arb_word(),
    ) {
        let geometry = HbmGeometry::vcu128().scaled(1 << 10);
        let mut device = HbmDevice::new(geometry);
        let port = PortId::new(port_index).unwrap();
        device.axi_write(port, WordOffset(offset), word).unwrap();
        for pc in PcIndex::all(geometry) {
            let read = device.read_word(pc, WordOffset(offset)).unwrap();
            if pc.as_u8() == port_index {
                prop_assert_eq!(read, word);
            } else {
                prop_assert_eq!(read, Word256::ZERO);
            }
        }
    }
}
