//! Regenerates every table/figure of the paper in one run, in order.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(hbm_bench::DEFAULT_SEED);

    let (_, fig2) = hbm_bench::fig2(seed).expect("fig2");
    println!("==== Fig. 2: normalized power vs voltage ====\n{fig2}");
    let (_, fig3) = hbm_bench::fig3(seed).expect("fig3");
    println!("==== Fig. 3: normalized a*C_L*f vs voltage ====\n{fig3}");
    let (_, fig4) = hbm_bench::fig4(seed).expect("fig4");
    println!("==== Fig. 4: faulty fraction per stack ====\n{fig4}");
    let (_, fig5) = hbm_bench::fig5(seed).expect("fig5");
    println!("==== Fig. 5: faulty cells per PC ====\n{fig5}");
    let (_, fig6) = hbm_bench::fig6(seed).expect("fig6");
    println!("==== Fig. 6: usable PCs vs tolerable fault rate ====\n{fig6}");
    let metrics = hbm_bench::headlines(seed).expect("headlines");
    println!("==== Headline metrics ====\n{metrics}");
    let s = hbm_bench::characterization(seed);
    println!("\n==== Characterization ====");
    println!(
        "onsets: 1->0 {:?}, 0->1 {:?}; polarity ratio {:.2}; stack ratio {:.2}",
        s.onset_1to0, s.onset_0to1, s.polarity_ratio, s.stack_ratio
    );
}
