//! The voltage landmarks the study reports.

use hbm_units::Millivolts;
use serde::{Deserialize, Serialize};

use crate::error::FaultModelError;

/// The characteristic voltages of the study's HBM stacks.
///
/// | Landmark | Value | Meaning |
/// |---|---|---|
/// | `v_nom` | 1.20 V | nominal (datasheet) supply |
/// | `v_min` | 0.98 V | minimum safe voltage — no faults at or above it |
/// | `v_all_faulty` | 0.84 V | essentially every bit is faulty at or below it |
/// | `v_critical` | 0.81 V | minimum voltage at which the device still responds |
///
/// # Examples
///
/// ```
/// use hbm_faults::VoltageLandmarks;
/// use hbm_units::Millivolts;
///
/// let lm = VoltageLandmarks::date21();
/// assert_eq!(lm.guardband(), Millivolts(220));
/// // The paper rounds 220/1200 ≈ 18.3 % up to "19 %".
/// assert!((lm.guardband_fraction() - 0.1833).abs() < 1e-3);
/// assert!(lm.in_guardband(Millivolts(1000)));
/// assert!(!lm.in_guardband(Millivolts(970)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoltageLandmarks {
    /// Nominal supply voltage (V_nom).
    pub v_nom: Millivolts,
    /// Minimum safe voltage: the bottom of the guardband (V_min).
    pub v_min: Millivolts,
    /// Voltage at/below which essentially all bits are faulty.
    pub v_all_faulty: Millivolts,
    /// Minimum working voltage; the device crashes below it (V_critical).
    pub v_critical: Millivolts,
}

impl VoltageLandmarks {
    /// The landmarks measured by the DATE 2021 study.
    #[must_use]
    pub fn date21() -> Self {
        VoltageLandmarks {
            v_nom: Millivolts(1200),
            v_min: Millivolts(980),
            v_all_faulty: Millivolts(840),
            v_critical: Millivolts(810),
        }
    }

    /// Width of the guardband (V_nom − V_min).
    #[must_use]
    pub fn guardband(&self) -> Millivolts {
        self.v_nom.saturating_sub(self.v_min)
    }

    /// Guardband as a fraction of the nominal voltage (the paper's "19 %").
    #[must_use]
    pub fn guardband_fraction(&self) -> f64 {
        f64::from(self.guardband().as_u32()) / f64::from(self.v_nom.as_u32())
    }

    /// `true` if `v` lies in the fault-free guardband region
    /// (`v_min ≤ v ≤ v_nom`), or above nominal.
    #[must_use]
    pub fn in_guardband(&self, v: Millivolts) -> bool {
        v >= self.v_min
    }

    /// `true` if `v` lies in the unsafe region where faults occur but the
    /// device still responds (`v_critical ≤ v < v_min`).
    #[must_use]
    pub fn in_unsafe_region(&self, v: Millivolts) -> bool {
        v >= self.v_critical && v < self.v_min
    }

    /// `true` if the device crashes at `v` (below `v_critical`).
    #[must_use]
    pub fn crashes_at(&self, v: Millivolts) -> bool {
        v < self.v_critical
    }

    /// Checks the ordering invariant
    /// `v_critical ≤ v_all_faulty ≤ v_min ≤ v_nom`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultModelError::MisorderedLandmarks`] if the invariant
    /// does not hold.
    pub fn try_validate(&self) -> Result<(), FaultModelError> {
        if self.v_critical <= self.v_all_faulty
            && self.v_all_faulty <= self.v_min
            && self.v_min <= self.v_nom
        {
            Ok(())
        } else {
            Err(FaultModelError::MisorderedLandmarks { landmarks: *self })
        }
    }

    /// Validates the ordering invariant
    /// `v_critical ≤ v_all_faulty ≤ v_min ≤ v_nom`.
    ///
    /// # Panics
    ///
    /// Panics if the invariant does not hold.
    pub fn validate(&self) {
        if let Err(err) = self.try_validate() {
            panic!("{err}");
        }
    }
}

impl Default for VoltageLandmarks {
    fn default() -> Self {
        VoltageLandmarks::date21()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date21_values() {
        let lm = VoltageLandmarks::date21();
        assert_eq!(lm.v_nom, Millivolts(1200));
        assert_eq!(lm.v_min, Millivolts(980));
        assert_eq!(lm.v_all_faulty, Millivolts(840));
        assert_eq!(lm.v_critical, Millivolts(810));
        lm.validate();
    }

    #[test]
    fn region_classification() {
        let lm = VoltageLandmarks::date21();
        assert!(lm.in_guardband(Millivolts(1200)));
        assert!(lm.in_guardband(Millivolts(980)));
        assert!(!lm.in_guardband(Millivolts(979)));

        assert!(lm.in_unsafe_region(Millivolts(970)));
        assert!(lm.in_unsafe_region(Millivolts(810)));
        assert!(!lm.in_unsafe_region(Millivolts(980)));
        assert!(!lm.in_unsafe_region(Millivolts(800)));

        assert!(lm.crashes_at(Millivolts(800)));
        assert!(!lm.crashes_at(Millivolts(810)));
    }

    #[test]
    fn guardband_is_19_percent_rounded() {
        let lm = VoltageLandmarks::date21();
        assert_eq!(lm.guardband(), Millivolts(220));
        let pct = lm.guardband_fraction() * 100.0;
        assert_eq!(pct.round() as i32, 18); // 18.33 %, reported as "19 %"
        assert!((18.0..19.5).contains(&pct));
    }

    #[test]
    #[should_panic(expected = "landmark ordering violated")]
    fn bad_ordering_rejected() {
        VoltageLandmarks {
            v_nom: Millivolts(1000),
            v_min: Millivolts(1100),
            v_all_faulty: Millivolts(840),
            v_critical: Millivolts(810),
        }
        .validate();
    }
}
