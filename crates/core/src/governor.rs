//! A closed-loop undervolting governor.
//!
//! The paper's user-level implication (§III-C) is that applications can
//! pick an operating voltage from the fault map. This extension closes the
//! loop at run time instead: the governor steps the supply down while a
//! *canary* probe (a write/read-back pass over a small region of every
//! pseudo channel) stays clean, then backs off one safety margin — the
//! standard canary-based voltage-scaling pattern from the undervolting
//! literature, implemented against this workspace's platform.

use hbm_traffic::{DataPattern, MacroProgram, TrafficGenerator};
use hbm_units::{Millivolts, Ratio};
use serde::{Deserialize, Serialize};

use crate::error::ExperimentError;
use crate::platform::Platform;

/// Configuration of the governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Voltage step per iteration.
    pub step: Millivolts,
    /// Words probed per pseudo channel per canary pass.
    pub canary_words: u64,
    /// Hard floor the governor never crosses (stay above V_critical).
    pub floor: Millivolts,
    /// Safety margin added back on top of the last clean voltage.
    pub margin: Millivolts,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            step: Millivolts(10),
            canary_words: 512,
            floor: Millivolts(840),
            margin: Millivolts(10),
        }
    }
}

/// The governor's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GovernorOutcome {
    /// The operating voltage the governor settled on.
    pub settled: Millivolts,
    /// The lowest voltage whose canary was still clean.
    pub lowest_clean: Millivolts,
    /// The first voltage whose canary tripped, if the descent got that far.
    pub tripped_at: Option<Millivolts>,
    /// Total canary bit flips observed during the descent.
    pub canary_flips: u64,
}

/// Closed-loop undervolting: descend until the canary trips, back off by
/// the margin, and leave the platform at the settled voltage.
///
/// # Examples
///
/// ```
/// use hbm_undervolt::{Platform, UndervoltGovernor};
/// use hbm_units::Millivolts;
///
/// # fn main() -> Result<(), hbm_undervolt::ExperimentError> {
/// let mut platform = Platform::builder().seed(7).build();
/// let outcome = UndervoltGovernor::default().run(&mut platform)?;
/// // Settles safely below nominal but above the crash floor.
/// assert!(outcome.settled < Millivolts(1200));
/// assert!(outcome.settled >= Millivolts(840));
/// assert_eq!(platform.voltage(), outcome.settled);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UndervoltGovernor {
    config: GovernorConfig,
}

impl UndervoltGovernor {
    /// Creates a governor with an explicit configuration.
    #[must_use]
    pub fn new(config: GovernorConfig) -> Self {
        UndervoltGovernor { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> GovernorConfig {
        self.config
    }

    /// Runs the descent from the platform's present voltage. On return the
    /// platform operates at [`GovernorOutcome::settled`].
    ///
    /// # Errors
    ///
    /// Propagates PMBus/device errors from the probes; a canary trip is the
    /// expected terminal condition, not an error.
    pub fn run(&self, platform: &mut Platform) -> Result<GovernorOutcome, ExperimentError> {
        let mut lowest_clean = platform.voltage();
        let mut tripped_at = None;
        let mut canary_flips = 0u64;

        let mut v = platform.voltage();
        while v >= self.config.floor + self.config.step {
            let next = v - self.config.step;
            platform.set_voltage(next)?;
            if platform.is_crashed() {
                // Defensive: floor should prevent this, but recover anyway.
                platform.power_cycle(lowest_clean)?;
                tripped_at = Some(next);
                break;
            }
            let flips = self.canary_pass(platform)?;
            if flips > 0 {
                canary_flips += flips;
                tripped_at = Some(next);
                break;
            }
            lowest_clean = next;
            v = next;
        }

        let settled =
            (lowest_clean + self.config.margin).clamp(self.config.floor, Millivolts(1200));
        platform.set_voltage(settled)?;
        Ok(GovernorOutcome {
            settled,
            lowest_clean,
            tripped_at,
            canary_flips,
        })
    }

    /// One canary pass: both uniform patterns over the canary region of
    /// every enabled port. Returns total observed flips.
    fn canary_pass(&self, platform: &mut Platform) -> Result<u64, ExperimentError> {
        let ids: Vec<_> = platform.device().ports().enabled_ids().collect();
        let mut flips = 0u64;
        for pattern in [DataPattern::AllOnes, DataPattern::AllZeros] {
            let program = MacroProgram::write_then_check(0..self.config.canary_words, pattern);
            for &port in &ids {
                let mut tg = TrafficGenerator::new(port);
                let stats = tg
                    .run(&program, &mut platform.port(port))
                    .map_err(ExperimentError::from)?;
                flips += stats.total_flips();
            }
        }
        Ok(flips)
    }
}

/// Estimated power saving of the governor's outcome at full utilization.
#[must_use]
pub fn outcome_saving(platform: &Platform, outcome: &GovernorOutcome) -> f64 {
    platform.power_model().saving_factor(
        outcome.settled,
        Ratio::ONE,
        platform.predictor().device_rate(outcome.settled),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_units::Ohms;

    fn platform() -> Platform {
        Platform::builder().seed(7).build()
    }

    #[test]
    fn governor_settles_between_onset_and_floor() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        // It must find real savings (well below nominal) …
        assert!(outcome.settled <= Millivolts(1000), "{:?}", outcome);
        // … while staying above the floor.
        assert!(outcome.settled >= Millivolts(840));
        assert_eq!(p.voltage(), outcome.settled);
        assert!(!p.is_crashed());
        // The settled point sits one margin above the lowest clean voltage.
        assert_eq!(outcome.settled, outcome.lowest_clean + Millivolts(10));
    }

    #[test]
    fn settled_point_is_actually_clean() {
        let mut p = platform();
        let governor = UndervoltGovernor::default();
        let outcome = governor.run(&mut p).unwrap();
        // Re-probing at the settled voltage shows no faults.
        let flips = governor.canary_pass(&mut p).unwrap();
        assert_eq!(flips, 0, "settled at {} but canary trips", outcome.settled);
    }

    #[test]
    fn descent_trips_or_reaches_floor() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        match outcome.tripped_at {
            Some(trip) => {
                assert!(outcome.canary_flips > 0);
                assert_eq!(outcome.lowest_clean, trip + Millivolts(10));
            }
            None => assert!(outcome.lowest_clean < Millivolts(850)),
        }
    }

    #[test]
    fn droop_makes_the_governor_conservative() {
        // Under load-line droop the canary sees the sagged voltage, so the
        // governor must settle at an equal or higher set-point.
        let mut ideal = platform();
        let ideal_outcome = UndervoltGovernor::default().run(&mut ideal).unwrap();

        let mut droopy = platform();
        droopy.set_load_line(Ohms(0.008));
        // Load the rail so the droop is visible to the device.
        droopy.measure_power(Ratio::ONE).unwrap();
        let droopy_outcome = UndervoltGovernor::default().run(&mut droopy).unwrap();

        assert!(
            droopy_outcome.settled >= ideal_outcome.settled,
            "droop {droopy_outcome:?} vs ideal {ideal_outcome:?}"
        );
    }

    #[test]
    fn saving_estimate_positive() {
        let mut p = platform();
        let outcome = UndervoltGovernor::default().run(&mut p).unwrap();
        let saving = outcome_saving(&p, &outcome);
        assert!(saving > 1.2, "saving {saving}");
    }
}
